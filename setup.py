"""Shim so `pip install -e .` works on environments without the `wheel`
package (no network): forces the legacy setuptools develop path via
--no-use-pep517."""

from setuptools import setup

setup()
