#!/usr/bin/env python
"""Profile the trace-replay hot path with cProfile.

Replays a scripted IA-style trace through a scheme on the Table II fleet
under cProfile and prints the top-N functions by cumulative time — the
first stop when replay throughput regresses (see ``docs/performance.md``
for the workflow and the current hot-path inventory).

Usage::

    PYTHONPATH=src python tools/profile_replay.py                  # fig3-scale HyRD replay
    PYTHONPATH=src python tools/profile_replay.py --months 3 --top 40
    PYTHONPATH=src python tools/profile_replay.py --scheme racs --sort tottime
    PYTHONPATH=src python tools/profile_replay.py --out replay.pstats  # for snakeviz etc.
    PYTHONPATH=src python tools/profile_replay.py --attribution  # + sim-time phase table
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))


def build_replay(
    scheme_name: str,
    months: int,
    writes_per_month: int,
    seed: int,
    trace: bool = False,
):
    """Construct (scheme, ops, replayer) for one scripted replay.

    ``trace`` attaches a :class:`~repro.obs.trace.RecordingTracer` — used by
    ``--attribution`` (and the attribution test suite), never by the timed
    profiling run.
    """
    from repro.analysis.experiments import run_fig3
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.obs import RecordingTracer
    from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme
    from repro.sim.clock import SimClock
    from repro.workloads.filesizes import MediaLibraryFileSizes
    from repro.workloads.ia_trace import IATraceConfig
    from repro.workloads.trace import TraceReplayer

    config = IATraceConfig(
        months=months,
        writes_per_month=writes_per_month,
        sizes=MediaLibraryFileSizes(scale=0.125),
    )
    ops = run_fig3(seed=seed, config=config).ops
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    builders = {
        "hyrd": HyrdScheme,
        "racs": RacsScheme,
        "duracloud": DuraCloudScheme,
    }
    tracer = RecordingTracer(clock) if trace else None
    scheme = builders[scheme_name](list(providers.values()), clock, tracer=tracer)
    return scheme, ops, TraceReplayer(seed=seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scheme",
        choices=("hyrd", "racs", "duracloud"),
        default="hyrd",
        help="scheme to replay through (default hyrd)",
    )
    parser.add_argument(
        "--months", type=int, default=12, help="IA trace months (default 12)"
    )
    parser.add_argument(
        "--writes-per-month",
        type=int,
        default=12,
        help="writes per month (default 12, the fig3 scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--top", type=int, default=25, help="rows of the profile table (default 25)"
    )
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort key (default cumulative)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also dump raw pstats data to PATH",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="re-run the replay traced (untimed) and print the critical-path "
        "phase table next to the cProfile output",
    )
    args = parser.parse_args(argv)

    scheme, ops, replayer = build_replay(
        args.scheme, args.months, args.writes_per_month, args.seed
    )
    print(
        f"profile-replay: {len(ops)} ops through {args.scheme} "
        f"(months={args.months}, writes/month={args.writes_per_month}, "
        f"seed={args.seed})"
    )

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    replayer.run(scheme, ops)
    profiler.disable()
    wall = time.perf_counter() - t0
    print(f"profile-replay: {wall:.3f}s wall ({len(ops) / wall:.1f} ops/s under profiler)")
    print()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"profile-replay: raw stats written to {args.out}")

    if args.attribution:
        # Separate traced run: cProfile measures host CPU, attribution
        # measures simulated wall-clock — mixing them would have the tracer's
        # overhead pollute the profile.  Same seed, so it is the same run.
        from repro.obs import attribute_trace, render_attribution

        scheme, ops, replayer = build_replay(
            args.scheme, args.months, args.writes_per_month, args.seed, trace=True
        )
        replayer.run(scheme, ops)
        print()
        print(render_attribution(attribute_trace(scheme.tracer.records)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
