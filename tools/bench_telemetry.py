#!/usr/bin/env python
"""Benchmark telemetry: generate and regression-check ``BENCH_<date>.json``.

Runs a curated benchmark subset and emits one schema-versioned JSON file at
the repo root — the measured baseline ROADMAP's "fast as the hardware
allows" north star is pushed against:

- **latency** — per-op latency summaries (count/mean/p50/p95/p99/max, from
  the schemes' own ``op_latency_seconds`` histograms) and the degraded-op
  fraction, for HyRD / DuraCloud / RACS on a clean fleet plus HyRD under the
  canonical fault storm;
- **availability** — the analytic k-of-n model's availability and nines per
  standard placement;
- **codec** — deterministic fragment fingerprints (CRC32 per fragment) for
  every codec on a seeded payload, with the vectorised GF kernel strategies
  cross-checked against each other *and* ``encode_views`` against
  ``encode`` at generation time.  A fingerprint that moves means encode
  output changed — drift-gated like every deterministic value;
- **codec throughput** (informational only) — wall-clock encode/decode MB/s
  for the RAID5 and RS codecs (warm best-of-3, so the encode-plan bind and
  gather-table build are excluded), plus the recorded speedup over the
  pre-kernel RS(2+2) encode rate.  Wall-clock numbers vary with the host,
  so they are recorded but *never* gated — the enforced 10x floor lives in
  ``benchmarks/test_codec_throughput.py``;
- **replay throughput** — the fig3-scale IA replay through HyRD.  Its
  *simulated* outputs (op count, mean access latency, simulated elapsed
  time) are deterministic and gated like every other deterministic value;
  the measured ops/sec and the speedup over the pre-overhaul baseline are
  recorded informationally (host-dependent, never gated);
- **maintenance** — the seeded maintenance drill (scrub / budgeted repair /
  live migration against a ground-truth corruption ledger).  Every recorded
  field is simulated-time arithmetic — detection rate, repair counts and
  bytes, mean time to full redundancy, foreground p95 — so all of it sits
  under ``deterministic`` and is drift-gated;
- **attribution** — the critical-path phase decomposition
  (``repro.obs.attribution``) of the traced fig3-scale replay: attributed
  op count, phase seconds and shares for the fixed taxonomy, with the
  exact-coverage invariant machine-checked at generation time (a gap
  raises instead of recording).  Plus a scripted brownout hedge — the
  storm's seed happens never to hedge — pinning the hedge-waste
  accounting: ``hedge_wait`` on the critical path, wasted loser-leg wire
  seconds off it.  All simulated-time arithmetic, all drift-gated;
- **read scheduling** — the Zipf-skewed striped-read experiment from
  ``benchmarks/test_read_scheduling.py`` at telemetry scale: simulated
  ops/s with the :class:`~repro.core.scheduling.FragmentScheduler`
  attached vs static fragment selection against a saturated + browned-out
  fleet, the resulting speedup, the scheduler's parity-pick count, and
  the subset-choice histogram (which provider subsets served the
  workload).  All simulated-time arithmetic, so all of it is drift-gated —
  a routing change that shifts the histogram or erodes the speedup fails
  ``--check``.  Generation also asserts scheduled strictly beats static
  (the hard 1.3x floor lives in the benchmark suite);
- **service plane** — the multi-tenant drill from
  ``benchmarks/test_service_plane.py`` at telemetry scale: closed-loop
  aggregate ops/s at 1 / 32 / 512 tenants (same per-tenant stream shape,
  metadata cache sized to the working set so the series measures tenancy
  overhead), plus one open-loop 10:1-skew overload run recording the
  shed fraction and Jain's fairness index over admitted throughput.
  Every value is simulated-time arithmetic from one seeded drill, so the
  whole facet is drift-gated; generation asserts the same floors the
  benchmark gates enforce (512-tenant scale ratio >= 0.8, fairness
  >= 0.9).

Everything under ``deterministic`` is simulated-time arithmetic from seeded
runs: regenerating with the same seed on the same code reproduces it bit for
bit, so any drift is a real behaviour change.  ``--check`` regenerates the
deterministic section and fails (exit 1) when any value moved by more than
``--tolerance`` (default 10%) against the committed baseline.

Usage::

    PYTHONPATH=src python tools/bench_telemetry.py                # write BENCH_<today>.json
    PYTHONPATH=src python tools/bench_telemetry.py --check        # CI regression gate
    PYTHONPATH=src python tools/bench_telemetry.py --schema-check # validate committed file only
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import math
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

SCHEMA = "repro-bench-telemetry/7"

#: fig3-scale replay throughput measured at the pre-overhaul commit — kept
#: in the telemetry file so the recorded speedup stays anchored to the same
#: constant ``benchmarks/test_replay_throughput.py`` asserts against
PRE_OVERHAUL_REPLAY_OPS_PER_SEC = 317.9
#: RS(2+2) encode MB/s at the pre-GF-kernel commit (recorded by the schema-3
#: baseline) — the same constant ``benchmarks/test_codec_throughput.py``
#: gates its 10x floor against
PRE_KERNEL_RS_K2M2_ENCODE_MB_S = 140.78
DEFAULT_TOLERANCE = 0.10
#: absolute slack under which relative drift is ignored (guards ~0 baselines)
ABS_EPSILON = 1e-9

KB, MB = 1024, 1024 * 1024


# ----------------------------------------------------------------- collection
def _scheme_metrics(scheme) -> dict:
    """Latency summaries by op + degraded fraction from a finished scheme."""
    from repro.metrics.registry import Histogram

    ops: dict[str, dict] = {}
    for m in scheme.registry.all_metrics():
        if isinstance(m, Histogram) and m.name == "op_latency_seconds":
            op = dict(m.labels).get("op", "?")
            s = m.summary()
            ops[op] = {
                "count": int(s["count"]),
                "mean": s["mean"],
                "p50": s["p50"],
                "p95": s["p95"],
                "p99": s["p99"],
                "max": s["max"],
            }
    split = scheme.registry.breakdown("ops_total", "op", "degraded")
    degraded = sum(v for (_, flag), v in split.items() if flag == "true")
    total = sum(split.values())
    return {
        "ops": dict(sorted(ops.items())),
        "degraded_fraction": degraded / total if total else 0.0,
    }


def _clean_workload(seed: int):
    from repro.sim.rng import make_rng
    from repro.workloads.filesizes import LogUniformFileSizes
    from repro.workloads.postmark import PostMarkConfig, generate_postmark

    return generate_postmark(
        PostMarkConfig(
            file_pool=12,
            transactions=80,
            sizes=LogUniformFileSizes(lo=64 * KB, hi=4 * MB),
        ),
        make_rng(seed, "bench-telemetry"),
    )


def run_clean_scenario(seed: int) -> dict:
    """HyRD and the two headline baselines on a healthy Table II fleet."""
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.config import HyRDConfig
    from repro.schemes import DuraCloudScheme, HyrdScheme, RacsScheme
    from repro.sim.clock import SimClock
    from repro.workloads.trace import TraceReplayer

    out: dict[str, dict] = {}
    builders = {
        "hyrd": lambda fleet, clock: HyrdScheme(
            list(fleet.values()), clock, config=HyRDConfig(size_threshold=256 * KB)
        ),
        "duracloud": lambda fleet, clock: DuraCloudScheme(
            list(fleet.values()), clock, seed=seed
        ),
        "racs": lambda fleet, clock: RacsScheme(
            list(fleet.values()), clock, seed=seed
        ),
    }
    for name, build in builders.items():
        clock = SimClock()
        fleet = make_table2_cloud_of_clouds(clock)
        scheme = build(fleet, clock)
        TraceReplayer(seed=seed).run(scheme, _clean_workload(seed))
        out[name] = _scheme_metrics(scheme)
    return out


def run_storm_scenario(seed: int) -> dict:
    """HyRD through the canonical fault storm (same run as ``repro report``)."""
    from repro.obs.report import run_fault_storm_report

    report, _ = run_fault_storm_report(seed=seed, trace=False)
    from repro.metrics.registry import Histogram

    ops: dict[str, dict] = {}
    for m in report.registry.all_metrics():
        if isinstance(m, Histogram) and m.name == "op_latency_seconds":
            op = dict(m.labels).get("op", "?")
            s = m.summary()
            ops[op] = {
                "count": int(s["count"]),
                "mean": s["mean"],
                "p50": s["p50"],
                "p95": s["p95"],
                "p99": s["p99"],
                "max": s["max"],
            }
    split = report.registry.breakdown("ops_total", "op", "degraded")
    degraded = sum(v for (_, flag), v in split.items() if flag == "true")
    total = sum(split.values())
    return {
        "hyrd": {
            "ops": dict(sorted(ops.items())),
            "degraded_fraction": degraded / total if total else 0.0,
        }
    }


def run_availability() -> dict:
    """Analytic availability + nines for every standard placement."""
    from repro.analysis.availability import analytic_report, nines

    report = analytic_report()
    return {
        name: {"availability": avail, "nines": nines(avail)}
        for name, avail in sorted(report.items())
    }


#: codecs fingerprinted and timed by the codec facets — label -> factory args
CODEC_MATRIX = (
    ("raid5_k3", "raid5", {"k": 3}),
    ("rs_k2_m2", "rs", {"k": 2, "m": 2}),
    ("rs_k3_m2", "rs", {"k": 3, "m": 2}),
    ("fmsr_4_2", "fmsr", {"n": 4}),
)

#: GF kernel strategies cross-checked by the deterministic codec facet
KERNEL_STRATEGIES_CHECKED = ("packed", "table", "nibble", "scalar")


def run_codec_facet(seed: int) -> dict:
    """Deterministic per-fragment CRC32 fingerprints for every codec.

    Generation asserts the cross-implementation contracts outright — every
    GF kernel strategy produces the same bytes, and ``encode_views`` /
    ``encode`` agree — then records one CRC32 per fragment.  The committed
    values gate encode-output drift: CRC32s are integers, so any byte
    change trips the 10% compare by orders of magnitude.
    """
    import zlib

    from repro.erasure.codec import get_codec
    from repro.erasure.gfkernel import set_strategy
    from repro.sim.rng import make_rng

    # Odd size on purpose: exercises tail-column handling and padding.
    payload = make_rng(seed, "bench-codec-facet").integers(
        0, 256, size=1 * MB + 3, dtype="uint8"
    ).tobytes()
    out: dict[str, dict] = {}
    for label, name, kwargs in CODEC_MATRIX:
        codec = get_codec(name, **kwargs)
        reference = [bytes(f) for f in codec.encode(payload)]
        views = [bytes(f) for f in codec.encode_views(payload)]
        if views != reference:
            raise AssertionError(f"{label}: encode_views != encode")
        try:
            for strategy in KERNEL_STRATEGIES_CHECKED:
                set_strategy(strategy)
                got = [bytes(f) for f in codec.encode(payload)]
                if got != reference:
                    raise AssertionError(
                        f"{label}: kernel strategy {strategy!r} diverged"
                    )
        finally:
            set_strategy(None)
        out[label] = {
            "fragment_bytes": len(reference[0]),
            "fragments_crc32": {
                str(i): zlib.crc32(f) for i, f in enumerate(reference)
            },
        }
    return out


def run_codec_throughput(seed: int) -> dict:
    """Wall-clock encode/decode MB/s — informational, host-dependent.

    Warm best-of-3 per codec: the first call binds the encode plan and
    builds its gather tables, which is one-off cost the replay data plane
    never sees again.  The RS(2+2) entry also records its speedup over the
    pre-kernel rate (the gated floor lives in the benchmark suite).
    """
    from repro.erasure.codec import get_codec
    from repro.sim.rng import make_rng

    payload = make_rng(seed, "bench-codec").integers(
        0, 256, size=4 * MB, dtype="uint8"
    ).tobytes()
    size_mb = len(payload) / MB
    out: dict[str, dict] = {}
    for label, name, kwargs in CODEC_MATRIX:
        codec = get_codec(name, **kwargs)
        encode_best = views_best = decode_best = float("inf")
        fragments = codec.encode(payload)
        subset = {i: fragments[i] for i in range(codec.k)}
        for _ in range(3):
            t0 = time.perf_counter()
            codec.encode(payload)
            encode_best = min(encode_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            codec.encode_views(payload)
            views_best = min(views_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            codec.decode(subset, len(payload))
            decode_best = min(decode_best, time.perf_counter() - t0)
        entry = {
            "encode_mb_s": round(size_mb / max(encode_best, 1e-9), 2),
            "encode_views_mb_s": round(size_mb / max(views_best, 1e-9), 2),
            "decode_mb_s": round(size_mb / max(decode_best, 1e-9), 2),
        }
        if label == "rs_k2_m2":
            # Speedup anchored to the zero-copy path the scheme write plane
            # actually calls — the same method the gated benchmark times.
            entry["pre_kernel_encode_mb_s"] = PRE_KERNEL_RS_K2M2_ENCODE_MB_S
            entry["encode_speedup"] = round(
                entry["encode_views_mb_s"] / PRE_KERNEL_RS_K2M2_ENCODE_MB_S, 2
            )
        out[label] = entry
    return out


def run_replay_throughput(seed: int) -> tuple[dict, dict]:
    """The fig3-scale replay: (deterministic facets, wall-clock facets).

    The replay runs as warmup + best-of-3 measured trials with
    ``gc.collect()`` between, and the simulated outputs are asserted
    identical across every run — the same
    faster-wall-clock/identical-simulation contract the throughput
    benchmark enforces.
    """
    import gc

    import numpy as np

    from repro.analysis.experiments import run_fig3
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.schemes import HyrdScheme
    from repro.sim.clock import SimClock
    from repro.workloads.trace import TraceReplayer

    ops = run_fig3(seed=seed).ops

    def once() -> tuple[float, float, float]:
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        scheme = HyrdScheme(list(providers.values()), clock)
        t0 = time.perf_counter()
        collector = TraceReplayer(seed=seed).run(scheme, ops)
        wall = time.perf_counter() - t0
        samples = [
            r.elapsed for r in collector.reports if r.op not in ("heal", "promote")
        ]
        return wall, float(np.mean(samples)), clock.now

    walls: list[float] = []
    simulated: set[tuple[float, float]] = set()
    for _ in range(4):  # warmup + 3 measured
        wall, mean_lat, sim_elapsed = once()
        walls.append(wall)
        simulated.add((mean_lat, sim_elapsed))
        gc.collect()
    if len(simulated) != 1:
        raise AssertionError("replay simulated results drifted between trials")
    (mean_lat, sim_elapsed), = simulated
    ops_per_sec = len(ops) / min(walls[1:])
    deterministic = {
        "fig3_replay": {
            "trace_ops": len(ops),
            "mean_access_latency_s": mean_lat,
            "simulated_elapsed_s": sim_elapsed,
        }
    }
    informational = {
        "fig3_replay": {
            "ops_per_sec": round(ops_per_sec, 1),
            "pre_overhaul_ops_per_sec": PRE_OVERHAUL_REPLAY_OPS_PER_SEC,
            "speedup": round(ops_per_sec / PRE_OVERHAUL_REPLAY_OPS_PER_SEC, 2),
        }
    }
    return deterministic, informational


#: deterministic numeric fields every maintenance facet must carry — shared
#: between collection and schema_check so the two cannot drift apart
MAINTENANCE_FIELDS = (
    "injected",
    "detected",
    "detection_rate",
    "scrub_cycles",
    "scrub_bytes_verified",
    "repairs_completed",
    "repair_bytes",
    "repair_throttled",
    "mttr_mean_s",
    "migrations_completed",
    "migration_bytes",
    "residual_findings",
    "foreground_p95_s",
    "foreground_mean_s",
    "sim_time_s",
)


def run_maintenance(seed: int) -> dict:
    """The default maintenance drill's simulated outputs — all deterministic.

    Booleans (``read_back_ok``, ``decommission_evacuated``) are asserted here
    rather than recorded: ``numeric_leaves`` skips bools, so committing them
    would be dead weight, and a drill that fails either invariant should fail
    loudly at generation time, not drift quietly past the gate.
    """
    from repro.maintenance.drill import run_maintenance_drill

    summary = run_maintenance_drill(seed=seed)["summary"]
    if not (summary["read_back_ok"] and summary["decommission_evacuated"]):
        raise AssertionError(f"maintenance drill invariants failed: {summary}")
    return {"drill": {field: summary[field] for field in MAINTENANCE_FIELDS}}


#: numeric fields the scripted-hedge attribution facet must carry
HEDGE_FACET_FIELDS = ("hedge_wait_s", "hedge_wasted_s", "read_latency_s")

#: numeric fields the read-scheduling facet must carry — shared between
#: collection and schema_check so the two cannot drift apart
READ_SCHEDULING_FIELDS = (
    "reads",
    "scheduled_ops_per_sim_s",
    "static_ops_per_sim_s",
    "speedup",
    "parity_fragments",
    "rotations",
    "distinct_subsets",
)


def run_read_scheduling_facet(seed: int) -> dict:
    """Scheduled vs static striped reads under skew — all simulated-time.

    A reduced-scale copy of the ``benchmarks/test_read_scheduling.py``
    scenario: Zipf-skewed reads of striped files against a fleet whose two
    systematic fragment holders are saturated and browned out, run once
    with the scheduler + load observatory attached and once static.  Both
    throughputs are simulated ops/s (sim-clock arithmetic, bit-for-bit
    reproducible), and the subset-choice histogram records exactly which
    provider subsets served the workload — the routing behaviour itself is
    what the drift gate freezes.
    """
    import numpy as np

    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.config import HyRDConfig
    from repro.core.scheduling import FragmentScheduler
    from repro.faults import FaultProfile, LatencyBrownout
    from repro.obs import ProviderLoadObservatory
    from repro.schemes import HyrdScheme
    from repro.sim.clock import SimClock
    from repro.sim.rng import make_rng

    files, reads = 6, 60

    def once(schedule: bool):
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        # Promotion off: a promoted full copy would route around the
        # stripe for scheduler and static alike.
        scheme = HyrdScheme(
            list(providers.values()),
            clock,
            config=HyRDConfig(hot_file_threshold=0),
        )
        if schedule:
            scheme.attach_observatory(ProviderLoadObservatory())
            scheme.attach_scheduler(FragmentScheduler())
        rng = make_rng(seed, "bench-read-sched")
        payloads = {}
        for i in range(files):
            data = rng.integers(0, 256, 2 * MB, dtype="uint8").tobytes()
            scheme.put(f"/s/f{i}", data)
            payloads[i] = data
        placements = dict(
            (idx, prov) for prov, idx in scheme.namespace.get("/s/f0").placements
        )
        horizon = clock.now + 1e9
        providers[placements[0]].faults = FaultProfile(
            [LatencyBrownout(clock.now, horizon, rtt_factor=10.0, bw_factor=0.05)]
        ).bind(placements[0])
        providers[placements[1]].faults = FaultProfile(
            [LatencyBrownout(clock.now, horizon, rtt_factor=2.0, bw_factor=0.5)]
        ).bind(placements[1])
        weights = np.array([1.0 / (i + 1) ** 1.2 for i in range(files)])
        sequence = rng.choice(files, size=reads, p=weights / weights.sum())
        t0 = clock.now
        histogram: dict[str, int] = {}
        for j in sequence:
            data, report = scheme.get(f"/s/f{j}")
            if data != payloads[j]:
                raise AssertionError("scheduled read returned wrong bytes")
            key = "+".join(sorted(report.providers))
            histogram[key] = histogram.get(key, 0) + 1
        return reads / (clock.now - t0), scheme, histogram

    scheduled, scheme, histogram = once(True)
    static, _, _ = once(False)
    if scheduled <= static:
        raise AssertionError(
            f"scheduled {scheduled:.3f} ops/s did not beat static {static:.3f}"
        )
    registry = scheme.registry
    return {
        "skewed_load": {
            "reads": reads,
            "scheduled_ops_per_sim_s": scheduled,
            "static_ops_per_sim_s": static,
            "speedup": scheduled / static,
            "parity_fragments": int(
                registry.counter_value("sched_parity_fragments_total")
            ),
            "rotations": int(registry.counter_value("sched_rotations_total")),
            "distinct_subsets": len(histogram),
            "subset_histogram": dict(sorted(histogram.items())),
        }
    }


#: numeric fields the service-plane closed-loop scaling facet must carry
SERVICE_SCALING_FIELDS = (
    "ops_per_s_1",
    "ops_per_s_32",
    "ops_per_s_512",
    "scale_ratio_512",
)

#: numeric fields the service-plane skewed-overload facet must carry
SERVICE_OVERLOAD_FIELDS = (
    "submitted",
    "admitted",
    "shed_fraction",
    "fairness_index",
    "quota_deferrals",
)


def run_service_plane_facet(seed: int) -> dict:
    """Multi-tenant service plane at telemetry scale — all simulated-time.

    Two seeded drills through :func:`repro.service.run_service_drill`:

    - **closed-loop scaling** — aggregate admitted ops/s at 1 / 32 / 512
      tenants, every tenant running the same 8-op stream shape, with the
      client metadata cache sized to the 512-directory working set so the
      series measures tenancy overhead (DRR rotation, quota checks, pump
      chains) rather than cache thrash;
    - **skewed overload** — 32 open-loop tenants at 3x measured capacity
      with a 10:1 geometric rate skew, bounded queues, and per-tenant
      ops/s quotas; records submitted/admitted counts, the shed fraction,
      and Jain's index over per-tenant admitted counts.

    Generation asserts the same floors the benchmark gates enforce so a
    regression can never be committed as a baseline.
    """
    from repro.core.config import HyRDConfig
    from repro.schemes import HyrdScheme
    from repro.service import run_service_drill

    def factory(providers, clock):
        return HyrdScheme(
            providers,
            clock,
            config=HyRDConfig(seed=seed, metadata_cache_capacity=1024),
        )

    rates: dict[int, float] = {}
    for tenants in (1, 32, 512):
        report = run_service_drill(
            seed=seed,
            tenants=tenants,
            mode="closed",
            ops_per_tenant=8,
            scheme_factory=factory,
        )
        if report["shed_total"]:
            raise AssertionError(
                f"closed-loop drill at {tenants} tenants shed "
                f"{report['shed_total']} requests"
            )
        rates[tenants] = report["aggregate_ops_per_s"]
    scale_ratio = rates[512] / rates[1]
    if scale_ratio < 0.8:
        raise AssertionError(
            f"512-tenant scale ratio {scale_ratio:.3f} fell below the 0.8 floor"
        )

    skewed = run_service_drill(
        seed=seed,
        tenants=32,
        mode="open",
        skew=10.0,
        offered_load=3.0,
        queue_limit=8,
        ops_quota_factor=2.0,
    )
    if skewed["fairness_index"] < 0.9:
        raise AssertionError(
            f"fairness index {skewed['fairness_index']:.4f} under skew "
            "fell below the 0.9 floor"
        )
    return {
        "closed_scaling": {
            "ops_per_s_1": rates[1],
            "ops_per_s_32": rates[32],
            "ops_per_s_512": rates[512],
            "scale_ratio_512": scale_ratio,
        },
        "skewed_overload": {
            "submitted": skewed["submitted_total"],
            "admitted": skewed["admitted_total"],
            "shed_fraction": skewed["shed_fraction"],
            "fairness_index": skewed["fairness_index"],
            "quota_deferrals": skewed["quota_deferrals"],
        },
    }


def run_attribution_facet(seed: int) -> dict:
    """Critical-path phase decomposition — all simulated-time, all gated.

    Two runs:

    - the traced fig3-scale replay (same trace as ``replay_throughput``),
      attributed op by op.  ``attribute_trace`` machine-checks the
      exact-coverage invariant — any op whose phases fail to tile its
      wall-clock raises ``CoverageError`` at generation time, so a broken
      decomposition can never be committed as a baseline;
    - a scripted brownout hedge (put a replicated small file, brown out
      the read primary, read it back) pinning hedge accounting: the
      storm and replay seeds happen never to hedge, so without this the
      ``hedge_wait``/waste books would be zero everywhere and silently
      ungated.
    """
    from repro.analysis.experiments import run_fig3
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.config import HyRDConfig
    from repro.core.resilience import ResilienceConfig
    from repro.faults import FaultProfile, LatencyBrownout
    from repro.obs import PHASES, RecordingTracer, attribute_trace
    from repro.schemes import HyrdScheme
    from repro.sim.clock import SimClock
    from repro.workloads.trace import TraceReplayer

    ops = run_fig3(seed=seed).ops
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    tracer = RecordingTracer(clock)
    scheme = HyrdScheme(list(providers.values()), clock, tracer=tracer)
    TraceReplayer(seed=seed).run(scheme, ops)
    report = attribute_trace(tracer.records)  # raises CoverageError on a gap
    fig3 = {
        "ops_attributed": len(report.ops),
        "phase_seconds": report.totals(),
        "phase_shares": report.shares(),
    }

    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    tracer = RecordingTracer(clock)
    scheme = HyrdScheme(
        list(fleet.values()),
        clock,
        config=HyRDConfig(resilience=ResilienceConfig(hedge_reads=True)),
        tracer=tracer,
    )
    scheme.put("/bench/hedge", bytes(64 * KB))
    fleet["aliyun"].faults = FaultProfile(
        [LatencyBrownout(clock.now, clock.now + 1e6, rtt_factor=10.0, bw_factor=0.05)]
    ).bind("aliyun")
    scheme.get("/bench/hedge")
    hedged = [o for o in attribute_trace(tracer.records).ops if o.hedged]
    if len(hedged) != 1:
        raise AssertionError(
            f"scripted hedge run hedged {len(hedged)} times, expected exactly 1"
        )
    (op,) = hedged
    if op.phases["hedge_wait"] <= 0.0 or not op.hedge_wasted:
        raise AssertionError("scripted hedge produced no hedge_wait/waste")
    assert set(fig3["phase_seconds"]) == set(PHASES)
    return {
        "fig3_replay": fig3,
        "scripted_hedge": {
            "hedge_wait_s": op.phases["hedge_wait"],
            "hedge_wasted_s": sum(op.hedge_wasted.values()),
            "read_latency_s": op.duration,
        },
    }


def build_payload(seed: int, date: str) -> dict:
    replay_det, replay_info = run_replay_throughput(seed)
    return {
        "schema": SCHEMA,
        "date": date,
        "seed": seed,
        "deterministic": {
            "latency": {
                "clean": run_clean_scenario(seed),
                "fault_storm": run_storm_scenario(seed),
            },
            "availability": run_availability(),
            "codec": run_codec_facet(seed),
            "replay_throughput": replay_det,
            "maintenance": run_maintenance(seed),
            "attribution": run_attribution_facet(seed),
            "read_scheduling": run_read_scheduling_facet(seed),
            "service_plane": run_service_plane_facet(seed),
        },
        "informational": {
            "codec_throughput": run_codec_throughput(seed),
            "replay_throughput": replay_info,
        },
    }


# ------------------------------------------------------------------- checking
def find_baseline(root: Path = ROOT) -> Path | None:
    """The committed baseline: the lexically newest ``BENCH_*.json``."""
    candidates = sorted(root.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def numeric_leaves(obj, prefix: str = "") -> list[tuple[str, float]]:
    """Flatten nested dicts to ``(dotted.path, value)`` for every number."""
    out: list[tuple[str, float]] = []
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        return [(prefix, float(obj))]
    if isinstance(obj, dict):
        for k in sorted(obj):
            sub_prefix = f"{prefix}.{k}" if prefix else str(k)
            out.extend(numeric_leaves(obj[k], sub_prefix))
    return out


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Regression report: one line per deterministic value that drifted.

    Values missing on either side are violations too — a vanished op or
    placement is a behaviour change, not a pass.
    """
    old = dict(numeric_leaves(baseline.get("deterministic", {})))
    new = dict(numeric_leaves(fresh.get("deterministic", {})))
    problems: list[str] = []
    for path in sorted(set(old) | set(new)):
        if path not in old:
            problems.append(f"NEW    {path} = {new[path]:.6g} (not in baseline)")
            continue
        if path not in new:
            problems.append(f"GONE   {path} (baseline {old[path]:.6g})")
            continue
        a, b = old[path], new[path]
        if math.isclose(a, b, rel_tol=tolerance, abs_tol=ABS_EPSILON):
            continue
        rel = abs(b - a) / max(abs(a), ABS_EPSILON)
        problems.append(
            f"DRIFT  {path}: baseline {a:.6g} -> fresh {b:.6g} "
            f"({rel:+.1%} vs {tolerance:.0%} tolerance)"
        )
    return problems


def schema_check(payload: dict, path: Path) -> list[str]:
    """Structural validation of one BENCH file (no benchmarks run)."""
    errors: list[str] = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            errors.append(f"{path.name}: {msg}")

    need(payload.get("schema") == SCHEMA, f"schema must be {SCHEMA!r}")
    need(isinstance(payload.get("date"), str), "date must be a string")
    need(isinstance(payload.get("seed"), int), "seed must be an integer")
    det = payload.get("deterministic")
    need(isinstance(det, dict), "deterministic section missing")
    if isinstance(det, dict):
        latency = det.get("latency")
        need(isinstance(latency, dict) and latency, "latency section missing")
        for scenario, schemes in (latency or {}).items():
            need(isinstance(schemes, dict) and schemes,
                 f"latency.{scenario} must be a non-empty object")
            for scheme, metrics in (schemes or {}).items():
                ops = metrics.get("ops") if isinstance(metrics, dict) else None
                need(isinstance(ops, dict) and ops,
                     f"latency.{scenario}.{scheme}.ops missing")
                for op, summary in (ops or {}).items():
                    for field in ("count", "mean", "p50", "p95", "p99", "max"):
                        need(
                            isinstance(summary, dict)
                            and isinstance(summary.get(field), (int, float)),
                            f"latency.{scenario}.{scheme}.ops.{op}.{field} missing",
                        )
                need(
                    isinstance(metrics, dict)
                    and isinstance(metrics.get("degraded_fraction"), (int, float)),
                    f"latency.{scenario}.{scheme}.degraded_fraction missing",
                )
        avail = det.get("availability")
        need(isinstance(avail, dict) and avail, "availability section missing")
        for name, entry in (avail or {}).items():
            need(
                isinstance(entry, dict)
                and isinstance(entry.get("availability"), (int, float))
                and isinstance(entry.get("nines"), (int, float)),
                f"availability.{name} must carry availability and nines",
            )
        codec = det.get("codec")
        need(isinstance(codec, dict) and codec, "codec section missing")
        for label, _, _ in CODEC_MATRIX:
            entry = (codec or {}).get(label)
            need(isinstance(entry, dict), f"codec.{label} missing")
            if isinstance(entry, dict):
                need(
                    isinstance(entry.get("fragment_bytes"), int),
                    f"codec.{label}.fragment_bytes missing",
                )
                crcs = entry.get("fragments_crc32")
                need(
                    isinstance(crcs, dict)
                    and crcs
                    and all(isinstance(v, int) for v in crcs.values()),
                    f"codec.{label}.fragments_crc32 must map fragments to ints",
                )
        replay = det.get("replay_throughput")
        need(isinstance(replay, dict) and replay,
             "replay_throughput section missing")
        for name, entry in (replay or {}).items():
            for field in ("trace_ops", "mean_access_latency_s", "simulated_elapsed_s"):
                need(
                    isinstance(entry, dict)
                    and isinstance(entry.get(field), (int, float)),
                    f"replay_throughput.{name}.{field} missing",
                )
        maint = det.get("maintenance")
        need(isinstance(maint, dict) and maint, "maintenance section missing")
        for name, entry in (maint or {}).items():
            for field in MAINTENANCE_FIELDS:
                need(
                    isinstance(entry, dict)
                    and isinstance(entry.get(field), (int, float))
                    and not isinstance(entry.get(field), bool),
                    f"maintenance.{name}.{field} missing",
                )
        from repro.obs import PHASES

        attribution = det.get("attribution")
        need(isinstance(attribution, dict) and attribution,
             "attribution section missing")
        fig3 = (attribution or {}).get("fig3_replay")
        need(isinstance(fig3, dict), "attribution.fig3_replay missing")
        if isinstance(fig3, dict):
            need(
                isinstance(fig3.get("ops_attributed"), int)
                and fig3.get("ops_attributed", 0) > 0,
                "attribution.fig3_replay.ops_attributed must be a positive int",
            )
            for section in ("phase_seconds", "phase_shares"):
                cell = fig3.get(section)
                need(
                    isinstance(cell, dict)
                    and sorted(cell) == sorted(PHASES)
                    and all(
                        isinstance(v, (int, float)) and v >= 0.0
                        for v in cell.values()
                    ),
                    f"attribution.fig3_replay.{section} must map every "
                    "phase to a non-negative number",
                )
            shares = fig3.get("phase_shares")
            if isinstance(shares, dict) and shares:
                need(
                    abs(sum(shares.values()) - 1.0) < 1e-6,
                    "attribution.fig3_replay.phase_shares must sum to 1 "
                    "(the exact-coverage invariant)",
                )
        hedge = (attribution or {}).get("scripted_hedge")
        need(isinstance(hedge, dict), "attribution.scripted_hedge missing")
        for field in HEDGE_FACET_FIELDS:
            need(
                isinstance(hedge, dict)
                and isinstance(hedge.get(field), (int, float))
                and hedge.get(field, 0.0) > 0.0,
                f"attribution.scripted_hedge.{field} must be positive",
            )
        sched = det.get("read_scheduling")
        need(isinstance(sched, dict) and sched, "read_scheduling section missing")
        skewed = (sched or {}).get("skewed_load")
        need(isinstance(skewed, dict), "read_scheduling.skewed_load missing")
        if isinstance(skewed, dict):
            for field in READ_SCHEDULING_FIELDS:
                need(
                    isinstance(skewed.get(field), (int, float))
                    and not isinstance(skewed.get(field), bool),
                    f"read_scheduling.skewed_load.{field} missing",
                )
            need(
                skewed.get("speedup", 0.0) > 1.0,
                "read_scheduling.skewed_load.speedup must exceed 1",
            )
            hist = skewed.get("subset_histogram")
            need(
                isinstance(hist, dict)
                and hist
                and all(isinstance(v, int) for v in hist.values()),
                "read_scheduling.skewed_load.subset_histogram must map "
                "provider subsets to int counts",
            )
            if isinstance(hist, dict) and all(
                isinstance(v, int) for v in hist.values()
            ):
                need(
                    sum(hist.values()) == skewed.get("reads"),
                    "read_scheduling.skewed_load.subset_histogram must "
                    "account for every read",
                )
        service = det.get("service_plane")
        need(isinstance(service, dict) and service,
             "service_plane section missing")
        scaling = (service or {}).get("closed_scaling")
        need(isinstance(scaling, dict), "service_plane.closed_scaling missing")
        if isinstance(scaling, dict):
            for field in SERVICE_SCALING_FIELDS:
                need(
                    isinstance(scaling.get(field), (int, float))
                    and not isinstance(scaling.get(field), bool)
                    and scaling.get(field, 0.0) > 0.0,
                    f"service_plane.closed_scaling.{field} must be positive",
                )
            need(
                scaling.get("scale_ratio_512", 0.0) >= 0.8,
                "service_plane.closed_scaling.scale_ratio_512 must be >= 0.8",
            )
        overload = (service or {}).get("skewed_overload")
        need(isinstance(overload, dict), "service_plane.skewed_overload missing")
        if isinstance(overload, dict):
            for field in SERVICE_OVERLOAD_FIELDS:
                need(
                    isinstance(overload.get(field), (int, float))
                    and not isinstance(overload.get(field), bool),
                    f"service_plane.skewed_overload.{field} missing",
                )
            need(
                0.9 <= overload.get("fairness_index", 0.0) <= 1.0,
                "service_plane.skewed_overload.fairness_index must sit in "
                "[0.9, 1] (the fairness gate's floor)",
            )
            need(
                0.0 <= overload.get("shed_fraction", -1.0) < 1.0,
                "service_plane.skewed_overload.shed_fraction must sit in [0, 1)",
            )
    info = payload.get("informational")
    need(isinstance(info, dict), "informational section missing")
    if isinstance(info, dict):
        codec_info = info.get("codec_throughput")
        need(isinstance(codec_info, dict) and codec_info,
             "informational.codec_throughput section missing")
        for label, _, _ in CODEC_MATRIX:
            entry = (codec_info or {}).get(label)
            for field in ("encode_mb_s", "encode_views_mb_s", "decode_mb_s"):
                need(
                    isinstance(entry, dict)
                    and isinstance(entry.get(field), (int, float)),
                    f"informational.codec_throughput.{label}.{field} missing",
                )
        rs = (codec_info or {}).get("rs_k2_m2")
        for field in ("pre_kernel_encode_mb_s", "encode_speedup"):
            need(
                isinstance(rs, dict)
                and isinstance(rs.get(field), (int, float)),
                f"informational.codec_throughput.rs_k2_m2.{field} missing",
            )
        replay_info = info.get("replay_throughput")
        need(isinstance(replay_info, dict) and replay_info,
             "informational.replay_throughput section missing")
        for name, entry in (replay_info or {}).items():
            for field in ("ops_per_sec", "pre_overhaul_ops_per_sec", "speedup"):
                need(
                    isinstance(entry, dict)
                    and isinstance(entry.get(field), (int, float)),
                    f"informational.replay_throughput.{name}.{field} missing",
                )
    return errors


# ----------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--date",
        default=None,
        help="date stamp for the output filename (default: today, ISO)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="explicit output path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate and diff against the committed BENCH_*.json baseline",
    )
    parser.add_argument(
        "--schema-check",
        action="store_true",
        help="validate the committed baseline's structure without running",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drift for --check (default 0.10)",
    )
    args = parser.parse_args(argv)

    if args.schema_check:
        baseline_path = find_baseline()
        if baseline_path is None:
            print("bench-telemetry: no BENCH_*.json baseline found", file=sys.stderr)
            return 1
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        errors = schema_check(payload, baseline_path)
        for e in errors:
            print(f"bench-telemetry: {e}", file=sys.stderr)
        if not errors:
            print(f"bench-telemetry: {baseline_path.name} schema OK")
        return 1 if errors else 0

    if args.check:
        baseline_path = find_baseline()
        if baseline_path is None:
            print("bench-telemetry: no BENCH_*.json baseline found", file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        errors = schema_check(baseline, baseline_path)
        if errors:
            for e in errors:
                print(f"bench-telemetry: {e}", file=sys.stderr)
            return 1
        seed = int(baseline.get("seed", args.seed))
        fresh = build_payload(seed, baseline.get("date", "check"))
        problems = compare(baseline, fresh, args.tolerance)
        if problems:
            print(
                f"bench-telemetry: {len(problems)} regression(s) vs "
                f"{baseline_path.name}:",
                file=sys.stderr,
            )
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(
            f"bench-telemetry: OK — deterministic section matches "
            f"{baseline_path.name} within {args.tolerance:.0%}"
        )
        return 0

    date = args.date or _dt.date.today().isoformat()
    payload = build_payload(args.seed, date)
    out = Path(args.out) if args.out else ROOT / f"BENCH_{date}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"bench-telemetry: wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
