#!/usr/bin/env python
"""Check intra-repository markdown links — no network, stdlib only.

Scans the repo's markdown files for inline links and images
(``[text](target)``), skips external targets (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#fragment``), and verifies every remaining
target resolves to an existing file or directory relative to the file
containing the link.  Fragments on local targets are checked against the
target file's headings (GitHub-style slugs).

Usage::

    python tools/check_markdown_links.py [ROOT]

Exits 0 when every local link resolves, 1 otherwise (one line per broken
link: ``file:line: broken link -> target``).  Used by the docs CI job and
``tests/test_docs_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# links are rare in this repo and intentionally out of scope.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: Directories never scanned (vendored/related material is not ours to fix).
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", "related"}


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"[^\w\s-]", "", text.lower())
    # GitHub turns each space into a dash individually, so "a & b" (after
    # punctuation removal leaves two spaces) slugs to "a--b".
    return re.sub(r"\s", "-", text)


def _headings(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_code = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = _HEADING_RE.match(line)
        if m:
            slugs.add(_slugify(m.group(1)))
    return slugs


def _iter_links(path: Path):
    in_code = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(md: Path, root: Path) -> list[str]:
    """All broken local links in one markdown file, as report lines."""
    problems: list[str] = []
    for lineno, target in _iter_links(md):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (md.parent / path_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            problems.append(
                f"{md.relative_to(root)}:{lineno}: link escapes the repo -> {target}"
            )
            continue
        if not resolved.exists():
            problems.append(
                f"{md.relative_to(root)}:{lineno}: broken link -> {target}"
            )
            continue
        if fragment and resolved.is_file() and resolved.suffix == ".md":
            if _slugify(fragment) not in _headings(resolved):
                problems.append(
                    f"{md.relative_to(root)}:{lineno}: missing anchor -> {target}"
                )
    return problems


def check_tree(root: Path) -> list[str]:
    """Broken-link report lines for every markdown file under ``root``."""
    problems: list[str] = []
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(root).parts):
            continue
        problems.extend(check_file(md, root))
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems = check_tree(root)
    for line in problems:
        print(line)
    if problems:
        print(f"{len(problems)} broken markdown link(s)", file=sys.stderr)
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
