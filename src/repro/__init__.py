"""repro — a full reproduction of HyRD (IPDPS 2015).

HyRD is a client-side hybrid redundant data distribution layer for a
Cloud-of-Clouds: small files and file-system metadata are *replicated* on
performance-oriented cloud providers, while large files are *erasure-coded*
across cost-oriented providers.

The package is organised as:

- :mod:`repro.sim`       -- simulation kernel (clock, events, bandwidth sharing)
- :mod:`repro.erasure`   -- Galois-field erasure codes (RS, RAID5, FMSR)
- :mod:`repro.cloud`     -- simulated cloud storage providers + GCS-API
- :mod:`repro.fs`        -- client-side namespace and metadata grouping
- :mod:`repro.schemes`   -- HyRD and all baselines (RACS, DuraCloud, DepSky, NCCloud)
- :mod:`repro.core`      -- the HyRD client itself (monitor/evaluator/dispatcher/recovery)
- :mod:`repro.workloads` -- PostMark and Internet-Archive trace generators
- :mod:`repro.cost`      -- pricing meters and trace-driven cost simulation
- :mod:`repro.metrics`   -- latency statistics
- :mod:`repro.analysis`  -- per-table/figure experiment runners
"""

from typing import Any

__version__ = "1.0.0"

__all__ = ["HyRDClient", "HyRDConfig", "__version__"]


def __getattr__(name: str) -> Any:
    # Lazy re-exports keep `import repro.erasure` usable without dragging in
    # the whole client stack (and avoid import cycles during bootstrap).
    if name == "HyRDClient":
        from repro.core.hyrd import HyRDClient

        return HyRDClient
    if name == "HyRDConfig":
        from repro.core.config import HyRDConfig

        return HyRDConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
