"""Cost accounting and the trace-driven cost simulation (Figure 4)."""

from repro.cost.accounting import BillLine, bill_for_month, monthly_bills, scheme_bills
from repro.cost.simulator import CostRunResult, CostSimulator

__all__ = [
    "BillLine",
    "CostRunResult",
    "CostSimulator",
    "bill_for_month",
    "monthly_bills",
    "scheme_bills",
]
