"""Trace-driven cost simulation (the engine behind Figure 4).

Like the paper ("similar to RACS, we used a trace-driven simulation to
understand the costs associated with hosting large digital libraries in the
cloud"), the simulator starts every scheme from empty storage, replays the
12-month Internet Archive trace month by month — actually executing every
put/get against the simulated providers, so redundancy bytes, degraded
traffic and transaction counts are *measured*, not modelled — and reads the
bills off the usage meters at month granularity.

Scheme instances are built fresh per run by a factory, so the seven Figure 4
configurations (four single clouds, DuraCloud, RACS, HyRD) never share
provider state.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds
from repro.cost.accounting import BillLine, scheme_bills
from repro.schemes.base import Scheme
from repro.sim.clock import SECONDS_PER_MONTH, SimClock
from repro.workloads.ia_trace import IATrace
from repro.workloads.trace import TraceReplayer

__all__ = ["CostRunResult", "CostSimulator"]

SchemeFactory = Callable[[dict[str, SimulatedProvider], SimClock], Scheme]


@dataclass(frozen=True)
class CostRunResult:
    """Per-scheme output of one cost simulation."""

    scheme_name: str
    monthly: list[BillLine]
    per_provider: dict[str, list[BillLine]]
    scale_factor: float

    @property
    def monthly_totals(self) -> list[float]:
        return [line.total * self.scale_factor for line in self.monthly]

    @property
    def cumulative_totals(self) -> list[float]:
        out: list[float] = []
        acc = 0.0
        for line in self.monthly:
            acc += line.total * self.scale_factor
            out.append(acc)
        return out

    @property
    def grand_total(self) -> float:
        return self.cumulative_totals[-1] if self.monthly else 0.0


class CostSimulator:
    """Runs schemes over an IA trace and collects their bills."""

    def __init__(
        self,
        trace: IATrace,
        link: ClientLink | None = None,
        seed: int = 0,
        verify: bool = False,
    ) -> None:
        self.trace = trace
        self.link = link if link is not None else ClientLink()
        self.seed = seed
        self.verify = verify
        self._by_month: dict[int, list] = {}
        for op in trace.ops:
            self._by_month.setdefault(op.month, []).append(op)

    def run(self, name: str, factory: SchemeFactory) -> CostRunResult:
        """Execute the full trace under a freshly built scheme."""
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        scheme = factory(providers, clock)
        replayer = TraceReplayer(seed=self.seed, verify=self.verify)

        months = self.trace.config.months
        for month in range(months):
            # Jump to the month's start; ops then advance the clock by their
            # own latency, which is negligible against the month's span.
            start = month * SECONDS_PER_MONTH
            if clock.now < start:
                clock.advance_to(start)
            replayer.run(scheme, self._by_month.get(month, []))
        # Close the books: accrue storage up to the end of the horizon.
        end = months * SECONDS_PER_MONTH
        if clock.now < end:
            clock.advance_to(end)
        for p in providers.values():
            p.meter.accrue(clock.now)

        billed_providers = [scheme.provider(n) for n in scheme.provider_names]
        totals, per_provider = scheme_bills(billed_providers, months)
        return CostRunResult(
            scheme_name=name,
            monthly=totals,
            per_provider=per_provider,
            scale_factor=self.trace.config.scale_factor,
        )
