"""Turning raw usage meters into dollar bills.

One :class:`BillLine` per (provider, month) with the four Table II cost
components; helpers aggregate lines across providers into the per-scheme
monthly/cumulative series that Figure 4 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.metering import UsageMeter
from repro.cloud.pricing import PricingPlan
from repro.cloud.provider import SimulatedProvider

__all__ = ["BillLine", "bill_for_month", "monthly_bills", "scheme_bills"]


@dataclass(frozen=True)
class BillLine:
    """One month's bill decomposition (US dollars)."""

    storage: float
    data_in: float
    data_out: float
    transactions: float

    @property
    def total(self) -> float:
        return self.storage + self.data_in + self.data_out + self.transactions

    def __add__(self, other: "BillLine") -> "BillLine":
        return BillLine(
            storage=self.storage + other.storage,
            data_in=self.data_in + other.data_in,
            data_out=self.data_out + other.data_out,
            transactions=self.transactions + other.transactions,
        )

    @classmethod
    def zero(cls) -> "BillLine":
        return cls(0.0, 0.0, 0.0, 0.0)


def bill_for_month(meter: UsageMeter, plan: PricingPlan, month: int) -> BillLine:
    """Bill one provider-month from its metered usage."""
    usage = meter.month_usage(month)
    return BillLine(
        storage=plan.storage_cost(usage.gb_months),
        data_in=plan.data_in_cost(usage.bytes_in),
        data_out=plan.data_out_cost(usage.bytes_out),
        transactions=plan.tier1_cost(usage.tier1_ops) + plan.tier2_cost(usage.tier2_ops),
    )


def monthly_bills(
    provider: SimulatedProvider, months: int
) -> list[BillLine]:
    """Bills for months ``0..months-1`` of one provider."""
    return [bill_for_month(provider.meter, provider.pricing, m) for m in range(months)]


def scheme_bills(
    providers: list[SimulatedProvider], months: int
) -> tuple[list[BillLine], dict[str, list[BillLine]]]:
    """Aggregate bills across a scheme's providers.

    Returns ``(per_month_totals, per_provider_lines)``.
    """
    per_provider = {p.name: monthly_bills(p, months) for p in providers}
    totals = []
    for m in range(months):
        line = BillLine.zero()
        for lines in per_provider.values():
            line = line + lines[m]
        totals.append(line)
    return totals, per_provider
