"""Client-side data deduplication — the paper's first future-work item.

§VI: *"we will apply data deduplication in the HyRD module to eliminate the
redundant data and reduce the total data transferred over the network, thus
further improving the performance and cost efficiency [21]."*

The layer is scheme-agnostic: :class:`DedupLayer` wraps any
:class:`~repro.schemes.base.Scheme` (HyRD included), splits incoming files
into content-defined chunks, uploads only chunks whose fingerprint has not
been stored before, and writes a small *recipe* object in the chunk's place.

- :mod:`repro.dedup.chunking` -- fixed and content-defined chunkers
- :mod:`repro.dedup.index`    -- fingerprint index with reference counting
- :mod:`repro.dedup.layer`    -- the transparent scheme wrapper
"""

from repro.dedup.chunking import Chunk, ContentDefinedChunker, FixedSizeChunker
from repro.dedup.index import FingerprintIndex
from repro.dedup.layer import DedupLayer, DedupStats

__all__ = [
    "Chunk",
    "ContentDefinedChunker",
    "DedupLayer",
    "DedupStats",
    "FingerprintIndex",
    "FixedSizeChunker",
]
