"""Fingerprint index with reference counting.

Maps chunk fingerprints to their size and reference count; the
:class:`~repro.dedup.layer.DedupLayer` consults it to decide which chunks
actually travel over the network, and drops chunk objects from the clouds
when the last referencing file is removed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FingerprintIndex", "IndexEntry"]


@dataclass
class IndexEntry:
    size: int
    refcount: int


class FingerprintIndex:
    """fingerprint -> (size, refcount)."""

    def __init__(self) -> None:
        self._entries: dict[str, IndexEntry] = {}

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def reference(self, fingerprint: str, size: int) -> bool:
        """Add one reference; returns True when the chunk is *new*."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self._entries[fingerprint] = IndexEntry(size=size, refcount=1)
            return True
        if entry.size != size:
            raise ValueError(
                f"fingerprint collision: {fingerprint[:12]}... seen with sizes "
                f"{entry.size} and {size}"
            )
        entry.refcount += 1
        return False

    def release(self, fingerprint: str) -> bool:
        """Drop one reference; returns True when the chunk became garbage."""
        try:
            entry = self._entries[fingerprint]
        except KeyError:
            raise KeyError(f"unknown fingerprint {fingerprint[:12]}...") from None
        entry.refcount -= 1
        if entry.refcount <= 0:
            del self._entries[fingerprint]
            return True
        return False

    def refcount(self, fingerprint: str) -> int:
        entry = self._entries.get(fingerprint)
        return entry.refcount if entry else 0

    def unique_bytes(self) -> int:
        """Bytes stored after deduplication."""
        return sum(e.size for e in self._entries.values())

    def logical_bytes(self) -> int:
        """Bytes the clients believe they stored (sum over references)."""
        return sum(e.size * e.refcount for e in self._entries.values())

    def dedup_ratio(self) -> float:
        """logical / unique; 1.0 means no duplication found."""
        unique = self.unique_bytes()
        return self.logical_bytes() / unique if unique else 1.0
