"""The deduplication shim over any redundancy scheme.

Files are chunked client-side; a chunk travels to the Cloud-of-Clouds only
the *first* time its fingerprint is seen.  The file itself becomes a small
*recipe* object (the ordered fingerprint list), stored through the same
scheme — so recipes enjoy HyRD's metadata-grade replication automatically,
chunks land wherever the scheme's dispatcher puts objects of their size,
and every redundancy/outage property of the underlying scheme is preserved.

§VI of the paper flags exactly this design ("data deduplication requires
powerful computing resources and extra memory space while HyRD is located
in the client side"): the CPU cost here is the vectorised chunker plus one
SHA-256 per chunk, and the memory cost is the fingerprint index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.dedup.chunking import Chunk, ContentDefinedChunker
from repro.dedup.index import FingerprintIndex
from repro.fs.namespace import normalize_path
from repro.schemes.base import Scheme

__all__ = ["DedupLayer", "DedupStats"]

_CHUNK_DIR = "/.dedup/chunks"


@dataclass
class DedupStats:
    """Traffic accounting for the life of the layer."""

    logical_bytes: int = 0  # what callers wrote
    transferred_bytes: int = 0  # chunk payloads that actually went out
    recipe_bytes: int = 0  # recipe objects (bookkeeping overhead)
    chunks_seen: int = 0
    chunks_uploaded: int = 0

    @property
    def chunks_deduped(self) -> int:
        return self.chunks_seen - self.chunks_uploaded

    @property
    def traffic_saved_fraction(self) -> float:
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.transferred_bytes / self.logical_bytes


class DedupLayer:
    """put/get/update/remove with transparent deduplication."""

    def __init__(self, scheme: Scheme, chunker: ContentDefinedChunker | None = None) -> None:
        self.scheme = scheme
        self.chunker = chunker if chunker is not None else ContentDefinedChunker()
        self.index = FingerprintIndex()
        self.stats = DedupStats()
        self._recipes: dict[str, list[tuple[str, int]]] = {}

    # ---------------------------------------------------------------- paths
    @staticmethod
    def _chunk_path(fingerprint: str) -> str:
        # Two-level fan-out keeps metadata groups small, like git objects.
        return f"{_CHUNK_DIR}/{fingerprint[:2]}/{fingerprint}"

    @staticmethod
    def _encode_recipe(chunks: list[Chunk]) -> bytes:
        return json.dumps(
            [[c.fingerprint, c.length] for c in chunks], separators=(",", ":")
        ).encode()

    @staticmethod
    def _decode_recipe(blob: bytes) -> list[tuple[str, int]]:
        return [(fp, size) for fp, size in json.loads(blob.decode())]

    # ------------------------------------------------------------------ ops
    def put(self, path: str, data: bytes) -> DedupStats:
        """Store ``path``; uploads only never-before-seen chunks."""
        path = normalize_path(path)
        chunks = self.chunker.split(data)
        if path in self._recipes:
            self._release_recipe(path)

        uploaded = 0
        transferred = 0
        entries: list[tuple[str, int]] = []
        for chunk in chunks:
            fp = chunk.fingerprint
            entries.append((fp, chunk.length))
            is_new = self.index.reference(fp, chunk.length)
            if is_new:
                self.scheme.put(self._chunk_path(fp), chunk.data)
                uploaded += 1
                transferred += chunk.length
        recipe = self._encode_recipe(chunks)
        self.scheme.put(path, recipe)
        self._recipes[path] = entries

        self.stats.logical_bytes += len(data)
        self.stats.transferred_bytes += transferred
        self.stats.recipe_bytes += len(recipe)
        self.stats.chunks_seen += len(chunks)
        self.stats.chunks_uploaded += uploaded
        return self.stats

    def get(self, path: str) -> bytes:
        """Reassemble ``path`` from its recipe, verifying every fingerprint."""
        path = normalize_path(path)
        recipe_blob, _ = self.scheme.get(path)
        entries = self._decode_recipe(recipe_blob)
        parts: list[bytes] = []
        for fp, size in entries:
            data, _ = self.scheme.get(self._chunk_path(fp))
            chunk = Chunk(offset=0, data=data)
            if chunk.fingerprint != fp or len(data) != size:
                raise ValueError(
                    f"chunk integrity failure for {path!r}: {fp[:12]}..."
                )
            parts.append(data)
        return b"".join(parts)

    def update(self, path: str, offset: int, patch: bytes) -> DedupStats:
        """Read-modify-write; unchanged chunks cost nothing to re-store."""
        old = self.get(path)
        new_size = max(len(old), offset + len(patch))
        buf = bytearray(new_size)
        buf[: len(old)] = old
        buf[offset : offset + len(patch)] = patch
        return self.put(path, bytes(buf))

    def remove(self, path: str) -> None:
        """Delete ``path``; garbage-collect chunks it solely referenced."""
        path = normalize_path(path)
        if path not in self._recipes:
            raise FileNotFoundError(path)
        self._release_recipe(path)
        del self._recipes[path]
        self.scheme.remove(path)

    def _release_recipe(self, path: str) -> None:
        for fp, _size in self._recipes[path]:
            if self.index.release(fp):
                self.scheme.remove(self._chunk_path(fp))

    # ------------------------------------------------------------- recovery
    def recover(self) -> int:
        """Rebuild the dedup state after a client loss.

        Recovers the underlying scheme's namespace from the cloud metadata
        groups, then re-reads every recipe object to reconstruct the
        fingerprint index (sizes + reference counts).  Returns the number of
        recovered files.  Chunk payloads are *not* fetched — only recipes.
        """
        self.scheme.recover_namespace()
        self._recipes.clear()
        self.index = FingerprintIndex()
        for path in self.scheme.namespace.paths():
            if path.startswith(_CHUNK_DIR):
                continue
            blob, _ = self.scheme.get(path)
            entries = self._decode_recipe(blob)
            for fp, size in entries:
                self.index.reference(fp, size)
            self._recipes[path] = entries
        return len(self._recipes)

    # -------------------------------------------------------------- queries
    def paths(self) -> list[str]:
        return sorted(self._recipes)

    def dedup_ratio(self) -> float:
        return self.index.dedup_ratio()
