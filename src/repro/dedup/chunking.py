"""Chunking strategies for deduplication.

Two chunkers:

- :class:`FixedSizeChunker` — split every ``size`` bytes. Fast, but a single
  inserted byte shifts every later boundary and destroys downstream
  duplicate detection.
- :class:`ContentDefinedChunker` — boundaries where a *rolling window
  signature* of the content hits a mask, so boundaries travel with the data
  (the property backup dedup relies on). The signature is a windowed sum of
  a random byte-substitution (gear) table, computed for the whole buffer
  with one cumulative sum — fully vectorised, no per-byte Python loop, per
  the repo's HPC guides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng

__all__ = ["Chunk", "FixedSizeChunker", "ContentDefinedChunker"]


@dataclass(frozen=True)
class Chunk:
    """One chunk of a file."""

    offset: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def fingerprint(self) -> str:
        """Content address (SHA-256 hex)."""
        return hashlib.sha256(self.data).hexdigest()


def _to_chunks(data: bytes, boundaries: list[int]) -> list[Chunk]:
    chunks = []
    prev = 0
    for b in boundaries:
        chunks.append(Chunk(offset=prev, data=data[prev:b]))
        prev = b
    if prev < len(data) or not chunks:
        chunks.append(Chunk(offset=prev, data=data[prev:]))
    return [c for c in chunks if c.data or len(data) == 0]


class FixedSizeChunker:
    """Split at fixed offsets."""

    def __init__(self, size: int = 64 * 1024) -> None:
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        self.size = size

    def split(self, data: bytes) -> list[Chunk]:
        boundaries = list(range(self.size, len(data), self.size))
        return _to_chunks(data, boundaries)


class ContentDefinedChunker:
    """Windowed-signature content-defined chunking.

    A boundary is declared after position ``i`` when the signature
    ``S[i] = sum(gear[data[i-W+1 .. i]])`` satisfies ``S[i] & mask == magic``,
    subject to ``min_size``/``max_size`` clamps.  ``mask`` has
    ``log2(avg_size)`` bits, giving chunks of roughly ``avg_size`` bytes.

    The signature depends only on the surrounding ``W`` bytes, so inserting
    or deleting data early in a file leaves every later boundary — and hence
    every later chunk fingerprint — unchanged.  That shift resistance is the
    entire point of CDC.
    """

    def __init__(
        self,
        avg_size: int = 64 * 1024,
        min_size: int | None = None,
        max_size: int | None = None,
        window: int = 48,
        seed: int = 0,
    ) -> None:
        if avg_size < 64:
            raise ValueError(f"avg_size must be >= 64, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not (0 < self.min_size <= avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min <= avg <= max, got {self.min_size}/{avg_size}/{self.max_size}"
            )
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.window = window
        bits = max(int(round(np.log2(avg_size))), 1)
        self._mask = np.uint64((1 << bits) - 1)
        self._magic = np.uint64((1 << bits) - 1)  # all-ones: unbiased pattern
        self._gear = make_rng(seed, "cdc-gear").integers(
            0, 2**32, size=256, dtype=np.uint64
        )

    def _signatures(self, data: np.ndarray) -> np.ndarray:
        """S[i] = sum of gear values over the window ending at i (vectorised)."""
        g = self._gear[data]
        cum = np.cumsum(g, dtype=np.uint64)
        sig = cum.copy()
        w = self.window
        if len(data) > w:
            sig[w:] = cum[w:] - cum[:-w]
        return sig

    def split(self, data: bytes) -> list[Chunk]:
        n = len(data)
        if n == 0:
            return [Chunk(offset=0, data=b"")]
        arr = np.frombuffer(data, dtype=np.uint8)
        sig = self._signatures(arr)
        hits = np.flatnonzero((sig & self._mask) == self._magic)

        boundaries: list[int] = []
        prev = 0
        for hit in hits:
            cut = int(hit) + 1  # boundary *after* the matching position
            if cut - prev < self.min_size:
                continue
            while cut - prev > self.max_size:  # enforce max by forced cuts
                prev += self.max_size
                boundaries.append(prev)
            if cut - prev >= self.min_size and cut < n:
                boundaries.append(cut)
                prev = cut
        while n - prev > self.max_size:
            prev += self.max_size
            boundaries.append(prev)
        return _to_chunks(data, boundaries)
