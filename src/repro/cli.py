"""Command-line front end: regenerate any paper experiment from the shell.

Examples::

    python -m repro fig5
    python -m repro fig6 --seed 3
    python -m repro fig4
    python -m repro table1
    python -m repro availability
    python -m repro lockin
    python -m repro threshold
    python -m repro maintain --repair-rate 2
    python -m repro serve --tenants 32 --mode open --skew 10
    python -m repro report --trace-out /tmp/storm.jsonl
    python -m repro report --from-trace /tmp/storm.jsonl
    python -m repro watch --cadence 30 --ts-out /tmp/storm-ts.jsonl
    python -m repro watch --from /tmp/storm-ts.jsonl
    python -m repro explain --top 10 --trace-out /tmp/storm.jsonl
    python -m repro explain --trace /tmp/storm.jsonl
    python -m repro chaos --episodes 8 --check-determinism
    python -m repro chaos --schemes hyrd,racs --json-out /tmp/chaos.json
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import render_table

__all__ = ["main", "build_parser"]

KB, MB = 1024, 1024 * 1024


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_table1

    rows = run_table1(seed=args.seed)
    return render_table(
        ["Scheme", "Redundancy", "Recovery (measured)", "Latency (s)", "Cost ($)"],
        rows,
        title="Table I — scheme comparison (measured)",
        floatfmt=".4f",
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_table2

    return render_table(
        ["Vendor", "Storage $/GB-mo", "Out $/GB", "3Ps $/10K", "Get $/10K", "Category"],
        run_table2(),
        title="Table II — price plans (China region, Sept 2014)",
        floatfmt=".4f",
    )


def _cmd_fig3(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_fig3

    trace = run_fig3(seed=args.seed)
    rows = [
        [f"m{s.month:02d}", s.bytes_written / MB, s.bytes_read / MB, s.write_requests, s.read_requests]
        for s in trace.stats
    ]
    return render_table(
        ["Month", "Written MB", "Read MB", "Writes", "Reads"],
        rows,
        title=(
            f"Figure 3 — IA trace (bytes r:w = {trace.total_read_to_write_bytes:.2f}, "
            f"requests r:w = {trace.total_read_to_write_requests:.2f})"
        ),
        floatfmt=".1f",
    )


def _cmd_fig4(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_fig4

    fig4 = run_fig4(seed=args.seed)
    schemes = list(fig4.results)
    months = len(next(iter(fig4.results.values())).monthly)
    rows = [
        [f"m{m:02d}"] + [fig4.results[s].cumulative_totals[m] for s in schemes]
        for m in range(months)
    ]
    headline = (
        f"HyRD saves {fig4.savings_vs('hyrd', 'duracloud'):.1%} vs DuraCloud "
        f"and {fig4.savings_vs('hyrd', 'racs'):.1%} vs RACS"
    )
    return render_table(
        ["Month"] + schemes,
        rows,
        title=f"Figure 4(b) — cumulative cost ($)\n{headline}",
        floatfmt=".4f",
    )


def _cmd_fig5(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_fig5

    res = run_fig5(seed=args.seed, repeats=7)
    providers = list(res.read)

    def label(size: int) -> str:
        return f"{size // MB}MB" if size >= MB else f"{size // KB}KB"

    rows = [
        [label(s)]
        + [res.read[p][i] for p in providers]
        + [res.write[p][i] for p in providers]
        for i, s in enumerate(res.sizes)
    ]
    return render_table(
        ["Size"] + [f"R {p}" for p in providers] + [f"W {p}" for p in providers],
        rows,
        title="Figure 5 — read/write latency vs request size (s)",
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    from repro.analysis.experiments import run_fig6

    fig6 = run_fig6(seed=args.seed, extended=args.extended)
    rows = [
        [name, fig6.normal[name], fig6.outage.get(name, float("nan"))]
        for name in fig6.normal
    ]
    headline = (
        f"normal: HyRD {fig6.improvement('hyrd', 'duracloud'):.1%} below DuraCloud, "
        f"{fig6.improvement('hyrd', 'racs'):.1%} below RACS"
    )
    return render_table(
        ["Scheme", "Normal (s)", "Outage (s)"],
        rows,
        title=f"Figure 6 — mean access latency\n{headline}",
    )


def _cmd_threshold(args: argparse.Namespace) -> str:
    from repro.analysis.ablations import run_threshold_sweep

    points = run_threshold_sweep(seed=args.seed)
    rows = [
        [p.threshold, p.mean_latency, p.space_overhead, p.small_fraction_bytes]
        for p in points
    ]
    return render_table(
        ["Threshold (B)", "Latency (s)", "Space", "Small-bytes frac"],
        rows,
        title="Ablation — file-size threshold",
    )


def _cmd_replication(args: argparse.Namespace) -> str:
    from repro.analysis.ablations import run_replication_sweep

    points = run_replication_sweep(seed=args.seed)
    rows = [
        [p.level, p.mean_latency, p.space_overhead, p.survives_outages]
        for p in points
    ]
    return render_table(
        ["Level", "Latency (s)", "Space", "Outages survived"],
        rows,
        title="Ablation — replication level",
    )


def _cmd_codec(args: argparse.Namespace) -> str:
    from repro.analysis.ablations import run_codec_ablation

    result = run_codec_ablation(seed=args.seed)
    rows = [
        [name, m["mean_latency"], m["space_overhead"], int(m["fault_tolerance"])]
        for name, m in result.items()
    ]
    return render_table(
        ["Codec", "Latency (s)", "Space", "Outages tolerated"],
        rows,
        title="Ablation — large-file erasure code",
    )


def _cmd_degraded(args: argparse.Namespace) -> str:
    from repro.analysis.ablations import run_degraded_read_comparison

    result = run_degraded_read_comparison(seed=args.seed)
    rows = [
        [name, m["normal_latency"], m["degraded_latency"], m["inflation"], m["degraded_fanout"]]
        for name, m in result.items()
    ]
    return render_table(
        ["Scheme", "Normal (s)", "Degraded (s)", "Inflation", "Fanout"],
        rows,
        title="Degraded reads — Azure offline, pure read workload",
    )


def _cmd_whatif(args: argparse.Namespace) -> str:
    from repro.analysis.whatif import run_price_sensitivity

    points = run_price_sensitivity(seed=args.seed)
    rows = [
        [
            f"x{p.multiplier:g}",
            p.storage_price,
            p.hyrd_cost,
            p.racs_cost,
            f"{p.hyrd_advantage:+.1%}",
            "yes" if p.provider_in_hyrd_cost_set else "no",
        ]
        for p in points
    ]
    return render_table(
        ["Aliyun x", "$/GB-mo", "HyRD $", "RACS $", "Advantage", "Cost-oriented?"],
        rows,
        title="Price-drift sensitivity",
        floatfmt=".4f",
    )


def _cmd_availability(args: argparse.Namespace) -> str:
    from repro.analysis.availability import analytic_report, monte_carlo_report, nines

    analytic = analytic_report()
    mc = monte_carlo_report(seed=args.seed)
    rows = [
        [name, analytic[name], nines(analytic[name]), mc.get(name, float("nan"))]
        for name in sorted(analytic)
    ]
    return render_table(
        ["Scheme", "Analytic", "Nines", "Monte-Carlo"],
        rows,
        title="Storage availability (MTBF 60 d, MTTR 12 h per provider)",
        floatfmt=".6f",
    )


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.obs import RunReport, read_jsonl, run_fault_storm_report

    if args.from_trace:
        return RunReport.from_trace(read_jsonl(args.from_trace)).render()
    report, tracer = run_fault_storm_report(seed=args.seed)
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
    return report.render()


def _cmd_watch(args: argparse.Namespace) -> str:
    from repro.obs import (
        MetricTimeSeries,
        ProviderLoadObservatory,
        SloConfig,
        SloTracker,
        TimeSeriesSampler,
    )
    from repro.obs.dashboard import render_dashboard, render_frame
    from repro.obs.report import run_fault_storm_report

    color = not args.no_color
    if args.from_ts:
        ts = MetricTimeSeries.read_jsonl(args.from_ts)
        return render_dashboard(ts, color=color)
    # Live mode: the canonical fault storm with an SLO tracker and the load
    # observatory attached and the sampler repainting on every snapshot —
    # the observatory's provider_load_* gauges feed the load panel.
    live = sys.stdout.isatty()

    def repaint(sampler: TimeSeriesSampler) -> None:
        if live:
            print(render_frame(sampler, color=color), flush=True)

    slo = SloTracker(SloConfig())
    sampler = TimeSeriesSampler(
        cadence=args.cadence, slo=slo, on_sample=repaint
    )
    run_fault_storm_report(
        seed=args.seed,
        trace=False,
        slo=slo,
        sampler=sampler,
        observatory=ProviderLoadObservatory(),
    )
    if args.ts_out:
        sampler.ts.write_jsonl(args.ts_out)
    return render_dashboard(sampler.ts, color=color)


def _cmd_explain(args: argparse.Namespace) -> str:
    from repro.obs import (
        ProviderLoadObservatory,
        attribute_trace,
        read_jsonl,
        render_attribution,
        run_fault_storm_report,
    )

    if args.trace:
        # Offline: attribute a saved JSON-lines trace.  No observatory — the
        # live load gauges only exist during a run; the analyzer still
        # derives per-provider busy/critical/wasted seconds from the spans.
        return render_attribution(
            attribute_trace(read_jsonl(args.trace)), top=args.top
        )
    observatory = ProviderLoadObservatory()
    _, tracer = run_fault_storm_report(seed=args.seed, observatory=observatory)
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
    return render_attribution(
        attribute_trace(tracer.records), top=args.top, observatory=observatory
    )


def _cmd_maintain(args: argparse.Namespace) -> str:
    from repro.maintenance.drill import run_maintenance_drill

    out = run_maintenance_drill(
        seed=args.seed,
        repair_rate_bytes_per_s=(
            args.repair_rate * MB if args.repair_rate > 0 else None
        ),
    )
    s = out["summary"]
    rows = [
        ["Damage injected (sites)", s["injected"]],
        ["Damage detected by scrub", s["detected"]],
        ["Detection rate", f"{s['detection_rate']:.0%}"],
        ["Scrub cycles", s["scrub_cycles"]],
        ["Bytes digest-verified", f"{s['scrub_bytes_verified'] / MB:.1f} MB"],
        ["Repairs completed", s["repairs_completed"]],
        ["Repair traffic", f"{s['repair_bytes'] / MB:.1f} MB"],
        ["Budget throttle events", s["repair_throttled"]],
        ["Mean time to full redundancy", f"{s['mttr_mean_s']:.1f} s"],
        ["Live migrations (decommission)", s["migrations_completed"]],
        ["Migration traffic", f"{s['migration_bytes'] / MB:.1f} MB"],
        ["Residual findings after repair", s["residual_findings"]],
        ["Provider fully evacuated", "yes" if s["decommission_evacuated"] else "NO"],
        ["All bytes read back intact", "yes" if s["read_back_ok"] else "NO"],
        ["Foreground p95 latency", f"{s['foreground_p95_s']:.3f} s"],
        ["Simulated time", f"{s['sim_time_s']:.0f} s"],
    ]
    return render_table(
        ["Maintenance drill", "Value"],
        rows,
        title=(
            "Maintenance plane — scrub / budgeted repair / live migration "
            f"(seed {args.seed})"
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.service import run_service_drill

    report = run_service_drill(
        seed=args.seed,
        tenants=args.tenants,
        frontends=args.frontends,
        mode=args.mode,
        skew=args.skew,
        queue_limit=args.queue_limit,
        offered_load=args.offered_load,
        ops_quota_factor=args.ops_quota,
    )
    rows = [
        ["Mode / tenants / frontends",
         f"{report['mode']} / {report['tenants']} / {report['frontends']}"],
        ["Requests submitted", report["submitted_total"]],
        ["Requests admitted", report["admitted_total"]],
        ["Requests shed", f"{report['shed_total']} ({report['shed_fraction']:.1%})"],
        ["Aggregate throughput", f"{report['aggregate_ops_per_s']:.2f} ops/s"],
        ["Jain fairness (admitted)", f"{report['fairness_index']:.4f}"],
        ["DRR rounds", report["drr_rounds"]],
        ["Ops/s quota deferrals", report["quota_deferrals"]],
        ["Frontend failures", report["frontend_failures"]],
        ["Read availability", f"{report['slo']['read_availability']:.4%}"],
        ["Simulated time", f"{report['sim_elapsed']:.1f} s"],
    ]
    if report["capacity_ops_per_s"] is not None:
        rows.insert(
            5, ["Measured capacity", f"{report['capacity_ops_per_s']:.2f} ops/s"]
        )
    for reason, n in sorted(report["shed_by_reason"].items()):
        rows.append([f"  shed: {reason}", n])
    return render_table(
        ["Service plane drill", "Value"],
        rows,
        title=(
            f"Multi-tenant service plane — {report['tenants']} tenants, "
            f"skew {report['skew']:g}:1 (seed {report['seed']})"
        ),
    )


def _cmd_lockin(args: argparse.Namespace) -> str:
    from repro.analysis.lockin import switching_cost_report

    rows = [
        [sc.scheme, sc.departed, sc.egress_cost, ", ".join(sc.read_from)]
        for sc in switching_cost_report()
    ]
    return render_table(
        ["Scheme", "Departing", "Exit $/GB", "Re-seed read from"],
        rows,
        title="Vendor lock-in — cost of abandoning one provider (§II-A)",
        floatfmt=".4f",
    )


def _cmd_chaos(args: argparse.Namespace) -> str:
    import json

    from repro.chaos import INVARIANTS, run_campaign

    schemes = tuple(s for s in args.schemes.split(",") if s) if args.schemes else None
    report = run_campaign(
        schemes=schemes,
        episodes=args.episodes,
        base_seed=args.seed,
        check_determinism=args.check_determinism,
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, sort_keys=True, indent=2)
            fh.write("\n")
    by_scheme: dict[str, dict] = {}
    for ep in report["episodes"]:
        row = by_scheme.setdefault(
            ep["scheme"],
            {"episodes": 0, "crashes": 0, "degraded": 0, "violations": 0},
        )
        row["episodes"] += 1
        row["crashes"] += len(ep["crashes"]["fired"])
        row["degraded"] += ep["workload"]["degraded_reads"]
        row["violations"] += sum(
            len(ep["invariants"][name]["violations"]) for name in INVARIANTS
        )
    rows = [
        [name, row["episodes"], row["crashes"], row["degraded"], row["violations"],
         "ok" if row["violations"] == 0 else "VIOLATED"]
        for name, row in by_scheme.items()
    ]
    table = render_table(
        ["Scheme", "Episodes", "Crashes", "Degraded reads", "Violations", "Verdict"],
        rows,
        title=(
            f"Chaos campaign — {report['totals']['episodes']} episodes, "
            f"base seed {args.seed}"
        ),
    )
    footer = []
    if args.check_determinism:
        drift = report["determinism_drift"]
        footer.append(
            "determinism: drift in "
            + ", ".join(f"{d['scheme']}@{d['seed']}" for d in drift)
            if drift
            else "determinism: byte-identical re-runs"
        )
    footer.append(
        "campaign OK" if report["ok"] else "campaign FAILED — see violations above"
    )
    return table + "\n" + "\n".join(footer)


_COMMANDS = {
    "chaos": _cmd_chaos,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "threshold": _cmd_threshold,
    "replication": _cmd_replication,
    "codec": _cmd_codec,
    "degraded": _cmd_degraded,
    "whatif": _cmd_whatif,
    "availability": _cmd_availability,
    "lockin": _cmd_lockin,
    "maintain": _cmd_maintain,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "watch": _cmd_watch,
    "explain": _cmd_explain,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate HyRD (IPDPS'15) experiments on the simulated Cloud-of-Clouds.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="experiment to run")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--extended",
        action="store_true",
        help="fig6: include the DepSky and NCCloud baselines",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="report/explain: also write the run's JSON-lines trace to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="explain: attribute a previously saved JSON-lines trace "
        "instead of running the fault storm",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=5,
        help="explain: rows in the slow-op digest (default 5)",
    )
    parser.add_argument(
        "--from-trace",
        metavar="PATH",
        help="report: re-render a previously saved JSON-lines trace "
        "instead of running the fault storm",
    )
    parser.add_argument(
        "--from",
        dest="from_ts",
        metavar="PATH",
        help="watch: render the dashboard from a saved time-series file "
        "instead of running live",
    )
    parser.add_argument(
        "--ts-out",
        metavar="PATH",
        help="watch: export the run's metric time series as JSON-lines",
    )
    parser.add_argument(
        "--cadence",
        type=float,
        default=60.0,
        help="watch: sampling cadence in simulated seconds (default 60)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=8,
        help="serve: tenant population (default 8)",
    )
    parser.add_argument(
        "--frontends",
        type=int,
        default=2,
        help="serve: frontend service nodes (default 2)",
    )
    parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="serve: closed loop (one outstanding per tenant) or open loop "
        "(scheduled arrivals that exercise shedding; default closed)",
    )
    parser.add_argument(
        "--skew",
        type=float,
        default=1.0,
        help="serve: heaviest:lightest offered-load ratio, open mode (default 1)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="serve: per-tenant admission queue bound (default 16)",
    )
    parser.add_argument(
        "--offered-load",
        type=float,
        default=3.0,
        help="serve: open-mode arrivals as a multiple of measured capacity "
        "(default 3)",
    )
    parser.add_argument(
        "--ops-quota",
        type=float,
        default=None,
        help="serve: per-tenant ops/s quota as a multiple of the fair share "
        "of capacity, open mode (default: unlimited)",
    )
    parser.add_argument(
        "--repair-rate",
        type=float,
        default=4.0,
        help="maintain: repair/migration budget in MB per simulated second "
        "(0 = unthrottled, default 4)",
    )
    parser.add_argument(
        "--no-color",
        action="store_true",
        help="watch: disable ANSI colors in the dashboard",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        default=8,
        help="chaos: episodes per scheme (default 8)",
    )
    parser.add_argument(
        "--schemes",
        metavar="A,B,...",
        help="chaos: comma-separated scheme subset (default: all)",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="chaos: re-run each scheme's first episode and fail on any "
        "byte-level report drift",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="chaos: also write the full campaign report as JSON to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
