"""Shard framing: split a byte payload into k equal shards and back.

Codecs operate on an (k, shard_len) uint8 matrix.  The original length is
*not* embedded in the shards — schemes already persist file size in their
metadata (as the paper's prototype does), so framing stays minimal and the
decode path takes the size explicitly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "shard_length",
    "split_shards",
    "split_views",
    "join_shards",
    "join_fragments",
]


def shard_length(size: int, k: int) -> int:
    """Length of each shard for a ``size``-byte payload split k ways.

    Zero-byte payloads still produce zero-length shards (k of them), so that
    empty files round-trip through every codec.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    return -(-size // k)  # ceil division


def split_shards(data: bytes, k: int) -> np.ndarray:
    """Split ``data`` into a (k, L) uint8 matrix, zero-padding the tail."""
    ln = shard_length(len(data), k)
    buf = np.zeros(k * ln, dtype=np.uint8)
    if data:
        buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    return buf.reshape(k, ln)


def split_views(data, k: int) -> list[np.ndarray]:
    """Split ``data`` into k shard rows, zero-copy where possible.

    Byte-identical to :func:`split_shards` row-by-row, but every shard that
    needs no zero padding is a *view* into ``data`` (which must therefore be
    an immutable buffer — bytes or a frozen-by-convention memoryview).  Only
    the padded tail shard is copied.  The returned views pin ``data`` alive,
    which is exactly what the zero-copy write path wants: stored fragments
    and their source payload share one allocation.
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    size = arr.size
    ln = shard_length(size, k)
    if ln == 0:
        return [arr[:0] for _ in range(k)]
    whole = size // ln  # rows that need no padding
    head = arr[: whole * ln].reshape(whole, ln)
    rows = [head[i] for i in range(whole)]
    if whole < k:
        tail = np.zeros(ln, dtype=np.uint8)
        rem = size - whole * ln
        if rem:
            tail[:rem] = arr[whole * ln :]
        rows.append(tail)
        rows.extend(np.zeros(ln, dtype=np.uint8) for _ in range(k - whole - 1))
    return rows


def join_fragments(fragments, frag_len: int, size: int) -> bytes:
    """Concatenate ordered data fragments and strip the padding — one copy.

    The systematic-decode fast path: when all k data fragments survive, the
    payload is just their concatenation truncated to ``size``.  ``fragments``
    is an iterable of bytes-like buffers (bytes, memoryview, uint8 ndarray),
    each ``frag_len`` long; the final fragment is sliced so ``b"".join``
    allocates exactly ``size`` bytes instead of join-then-truncate.
    """
    if size == 0:
        return b""
    parts = []
    pos = 0
    for frag in fragments:
        take = min(frag_len, size - pos)
        parts.append(frag if take == frag_len else memoryview(frag)[:take])
        pos += take
        if pos >= size:
            break
    if pos != size:
        raise ValueError(f"declared size {size} exceeds fragment capacity {pos}")
    return b"".join(parts)


def join_shards(shards: np.ndarray, size: int) -> bytes:
    """Inverse of :func:`split_shards`: flatten and strip the padding."""
    shards = np.asarray(shards, dtype=np.uint8)
    if shards.ndim != 2:
        raise ValueError(f"expected a 2-D shard matrix, got shape {shards.shape}")
    flat = shards.reshape(-1)
    if size > flat.shape[0]:
        raise ValueError(
            f"declared size {size} exceeds shard capacity {flat.shape[0]}"
        )
    return flat[:size].tobytes()
