"""Shard framing: split a byte payload into k equal shards and back.

Codecs operate on an (k, shard_len) uint8 matrix.  The original length is
*not* embedded in the shards — schemes already persist file size in their
metadata (as the paper's prototype does), so framing stays minimal and the
decode path takes the size explicitly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_length", "split_shards", "join_shards"]


def shard_length(size: int, k: int) -> int:
    """Length of each shard for a ``size``-byte payload split k ways.

    Zero-byte payloads still produce zero-length shards (k of them), so that
    empty files round-trip through every codec.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    return -(-size // k)  # ceil division


def split_shards(data: bytes, k: int) -> np.ndarray:
    """Split ``data`` into a (k, L) uint8 matrix, zero-padding the tail."""
    ln = shard_length(len(data), k)
    buf = np.zeros(k * ln, dtype=np.uint8)
    if data:
        buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    return buf.reshape(k, ln)


def join_shards(shards: np.ndarray, size: int) -> bytes:
    """Inverse of :func:`split_shards`: flatten and strip the padding."""
    shards = np.asarray(shards, dtype=np.uint8)
    if shards.ndim != 2:
        raise ValueError(f"expected a 2-D shard matrix, got shape {shards.shape}")
    flat = shards.reshape(-1)
    if size > flat.shape[0]:
        raise ValueError(
            f"declared size {size} exceeds shard capacity {flat.shape[0]}"
        )
    return flat[:size].tobytes()
