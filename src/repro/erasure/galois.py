"""GF(2^8) arithmetic, vectorised with NumPy.

The field is GF(256) with the AES/Rijndael-compatible primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11d) and generator 2 — the same construction
used by jerasure/ISA-L, so fragment bytes produced here match standard RS
implementations bit-for-bit.

Scalar-times-vector products are a single fancy index into a precomputed
256x256 multiplication table; per the repo's HPC guides we never loop over
bytes in Python.  This module is the *scalar reference oracle*: correct and
simple, but its 2-D gathers walk the 64 KiB table cache-hostilely.  The
data-plane hot paths use :mod:`repro.erasure.gfkernel`, whose strategies are
all held bit-identical to :func:`gf_matmul` by the property suite — see
``docs/codecs.md``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EXP",
    "LOG",
    "MUL_TABLE",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_inverse_matrix",
    "gf_matmul",
    "gf_matvec_bytes",
    "gf_mul",
    "gf_pow",
    "vandermonde",
    "systematic_vandermonde",
]

_PRIM_POLY = 0x11D
_ORDER = 255


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)  # doubled so exp[log a + log b] never wraps
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIM_POLY
    exp[_ORDER : 2 * _ORDER] = exp[:_ORDER]
    exp[2 * _ORDER :] = exp[: 512 - 2 * _ORDER]

    # Full multiplication table: MUL_TABLE[a, b] = a * b in GF(256).
    a = np.arange(256)
    la = log[a][:, None]
    lb = log[a][None, :]
    mul = exp[(la + lb) % _ORDER].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


EXP, LOG, MUL_TABLE = _build_tables()


def gf_add(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Addition (= subtraction) in GF(2^8) is XOR."""
    return a ^ b


def gf_mul(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Element-wise product; accepts scalars or uint8 arrays (broadcasting)."""
    return MUL_TABLE[a, b]


def gf_inv(a: np.ndarray | int) -> np.ndarray | int:
    """Multiplicative inverse; raises on zero."""
    if np.any(np.asarray(a) == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP[_ORDER - LOG[a]]


def gf_div(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """a / b in GF(256); raises on division by zero."""
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, n: int) -> int:
    """a**n in GF(256) (n may be any integer, including negative)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    return int(EXP[(LOG[a] * n) % _ORDER])


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256) — the scalar reference implementation.

    Shapes follow NumPy's ``@``: (r, c) x (c, m) -> (r, m).  The inner loop
    runs over the *small* shared dimension c (the code's k), so multiplying a
    generator matrix by megabyte-wide shard matrices stays vectorised.

    This is the correctness oracle; hot paths call
    :func:`repro.erasure.gfkernel.gf_matmul_fast`, which is bit-identical
    but gathers from contiguous per-coefficient tables instead of the
    cache-hostile 2-D ``np.ix_`` walk here.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes for GF matmul: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        # out ^= outer-product a[:, j] * b[j, :] via the mul table.
        out ^= MUL_TABLE[np.ix_(a[:, j], b[j, :])]
    return out


def gf_matvec_bytes(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """Combine shard rows with coefficients: ``sum_i coeffs[i] * shards[i]``.

    ``coeffs`` is a length-r uint8 vector, ``shards`` an (r, L) uint8 matrix;
    returns a length-L uint8 vector.  This is the repair/decode hot path.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    shards = np.asarray(shards, dtype=np.uint8)
    if coeffs.ndim != 1 or shards.ndim != 2 or coeffs.shape[0] != shards.shape[0]:
        raise ValueError(
            f"incompatible shapes for GF matvec: {coeffs.shape} x {shards.shape}"
        )
    out = np.zeros(shards.shape[1], dtype=np.uint8)
    for i in range(coeffs.shape[0]):
        c = int(coeffs[i])
        if c:
            out ^= MUL_TABLE[c][shards[i]]
    return out


def gf_inverse_matrix(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises ``np.linalg.LinAlgError`` when the matrix is singular (which is how
    MDS-property checks detect a bad fragment subset).
    """
    m = np.asarray(m, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    n = m.shape[0]
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise np.linalg.LinAlgError("matrix is singular over GF(256)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = MUL_TABLE[inv_p][aug[col]]
        for row in range(n):
            if row != col and aug[row, col] != 0:
                aug[row] ^= MUL_TABLE[int(aug[row, col])][aug[col]]
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = i**j over GF(256).

    Any ``cols`` distinct rows are linearly independent for rows <= 255,
    which is what makes it a valid RS generator seed.
    """
    if rows > 255:
        raise ValueError(f"at most 255 rows supported in GF(256), got {rows}")
    v = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            v[i, j] = gf_pow(i + 1, j)  # use 1..rows so no zero row
    return v


def systematic_vandermonde(n: int, k: int) -> np.ndarray:
    """An (n, k) systematic MDS generator matrix: top k rows are the identity.

    Built by taking an (n, k) Vandermonde matrix and right-multiplying by the
    inverse of its top kxk block; column operations preserve the
    any-k-rows-invertible property.
    """
    if not (0 < k <= n <= 255):
        raise ValueError(f"need 0 < k <= n <= 255, got n={n}, k={k}")
    v = vandermonde(n, k)
    top_inv = gf_inverse_matrix(v[:k, :k])
    g = gf_matmul(v, top_inv)
    # By construction the top block is exactly I.
    assert np.array_equal(g[:k], np.eye(k, dtype=np.uint8))
    return g
