"""Functional minimum-storage regenerating (FMSR) codes, as used by NCCloud.

NCCloud (Hu et al., FAST'12 — baseline [16] in the paper) stores data with an
FMSR(n, k) code: a file is split into ``k*(n-k)`` *native* chunks and encoded
into ``n*(n-k)`` *coded* chunks (random linear combinations over GF(2^8));
node ``i`` stores chunks ``i*(n-k) .. (i+1)*(n-k)-1``.  The code is MDS in
the node sense: any ``k`` nodes' chunks reconstruct the file.

The point of FMSR is cheap *functional* repair: a replacement node downloads
only **one** chunk from each of the ``n-1`` survivors (each survivor sends a
random combination of its own chunks) instead of re-decoding the whole file —
``(n-1)/(k*(n-k))`` of the conventional repair traffic.  The repaired node
stores *different* chunks than the lost one, so the encoding-coefficient
matrix (ECM) evolves; after each candidate repair we re-verify the MDS
property and re-draw coefficients if it would be violated (NCCloud's
two-phase check).

A codec instance is immutable: :meth:`repair` returns the repaired fragment
*plus a new codec* carrying the updated ECM, which callers persist as
per-object metadata exactly like NCCloud does.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import combinations

import numpy as np

from repro.erasure.codec import ErasureCodec
from repro.erasure.galois import gf_inverse_matrix, gf_matmul
from repro.erasure.gfkernel import gf_matmul_fast
from repro.erasure.striping import join_shards, shard_length, split_shards
from repro.sim.rng import make_rng

__all__ = ["FMSRCode"]

_MAX_DRAWS = 200


class FMSRCode(ErasureCodec):
    """FMSR(n, k) with ``n - k = 2`` by default (NCCloud's double-fault setting)."""

    def __init__(
        self,
        n: int = 4,
        k: int | None = None,
        seed: int = 0,
        ecm: np.ndarray | None = None,
    ) -> None:
        if k is None:
            k = n - 2
        if not (0 < k < n):
            raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
        self._n = n
        self._k = k
        self._r = n - k  # chunks per node
        self._native = k * self._r  # native chunks per object
        self._seed = seed
        if ecm is not None:
            ecm = np.asarray(ecm, dtype=np.uint8)
            if ecm.shape != (n * self._r, self._native):
                raise ValueError(
                    f"ECM shape {ecm.shape} != {(n * self._r, self._native)}"
                )
            if not self._is_mds(ecm):
                raise ValueError("supplied ECM violates the MDS property")
            self._ecm = ecm.copy()
        else:
            self._ecm = self._draw_mds_ecm(make_rng(seed, "fmsr-ecm", n, k))

    # ------------------------------------------------------------------ props
    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    @property
    def chunks_per_node(self) -> int:
        return self._r

    @property
    def ecm(self) -> np.ndarray:
        """Read-only view of the (n*(n-k), k*(n-k)) encoding-coefficient matrix."""
        m = self._ecm.view()
        m.flags.writeable = False
        return m

    @property
    def repair_traffic_ratio(self) -> float:
        """Repair download vs conventional decode-based repair (< 1 is the win)."""
        return (self._n - 1) / (self._k * self._r)

    # ------------------------------------------------------------------ MDS
    def _node_rows(self, node: int) -> slice:
        return slice(node * self._r, (node + 1) * self._r)

    def _is_mds(self, ecm: np.ndarray) -> bool:
        """Every k-subset of nodes must yield an invertible square system."""
        for nodes in combinations(range(self._n), self._k):
            rows = np.vstack([ecm[self._node_rows(i)] for i in nodes])
            try:
                gf_inverse_matrix(rows)
            except np.linalg.LinAlgError:
                return False
        return True

    def _draw_mds_ecm(self, rng: np.random.Generator) -> np.ndarray:
        for _ in range(_MAX_DRAWS):
            ecm = rng.integers(0, 256, size=(self._n * self._r, self._native), dtype=np.uint8)
            if self._is_mds(ecm):
                return ecm
        raise RuntimeError(  # pragma: no cover - probability ~0
            f"failed to draw an MDS ECM for FMSR({self._n},{self._k}) in {_MAX_DRAWS} tries"
        )

    # ------------------------------------------------------------------ codec
    def fragment_size(self, size: int) -> int:
        """Bytes per node fragment: ``(n-k)`` coded chunks of shard length."""
        return self._r * shard_length(size, self._native)

    def _encode_coded(self, data: bytes) -> np.ndarray:
        """The full (n*r, L) coded-chunk matrix ``ECM @ native`` (kernel-backed)."""
        native = split_shards(data, self._native)  # (k*r, L)
        return gf_matmul_fast(self._ecm, native)  # (n*r, L)

    def encode(self, data: bytes) -> list[bytes]:
        """``n`` node fragments, each the concatenation of its r coded chunks."""
        coded = self._encode_coded(data)
        return [
            coded[self._node_rows(i)].tobytes() for i in range(self._n)
        ]

    def encode_views(self, data: bytes) -> list[bytes | memoryview]:
        """Zero-copy encode: node fragments are flat views into the coded matrix.

        FMSR fragments are linear combinations of every native chunk, so —
        unlike the systematic codes — no fragment can alias ``data``; the
        win is skipping the per-node ``tobytes`` copies of :meth:`encode`.
        Each view is 1-D (``len`` counts bytes) over the node's contiguous
        row block of the freshly encoded matrix.
        """
        coded = self._encode_coded(data)
        return [
            memoryview(coded[self._node_rows(i)].reshape(-1))
            for i in range(self._n)
        ]

    def _fragment_chunks(self, frag: bytes, chunk_len: int, node: int) -> np.ndarray:
        expected = self._r * chunk_len
        if len(frag) != expected:
            raise ValueError(
                f"node {node} fragment has length {len(frag)}, expected {expected}"
            )
        return np.frombuffer(frag, dtype=np.uint8).reshape(self._r, chunk_len)

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        nodes = tuple(sorted(fragments))[: self._k]
        chunk_len = shard_length(size, self._native)
        if chunk_len == 0:
            return b""
        rows = np.vstack([self._ecm[self._node_rows(i)] for i in nodes])
        chunks = np.vstack(
            [self._fragment_chunks(fragments[i], chunk_len, i) for i in nodes]
        )
        inv = gf_inverse_matrix(rows)
        native = gf_matmul_fast(inv, chunks)
        return join_shards(native, size)

    # ------------------------------------------------------------------ repair
    def repair(
        self,
        fragments: Mapping[int, bytes],
        failed: int,
        size: int,
        seed: int | None = None,
    ) -> tuple[bytes, "FMSRCode"]:
        """Functional repair of node ``failed``.

        ``fragments`` must hold all ``n - 1`` survivors.  Returns the new
        fragment for the replacement node and the successor codec whose ECM
        reflects it.  Downloads modelled by callers: one chunk per survivor.
        """
        if not (0 <= failed < self._n):
            raise ValueError(f"failed node {failed} out of range [0, {self._n})")
        survivors = [i for i in range(self._n) if i != failed]
        missing = [i for i in survivors if i not in fragments]
        if missing:
            raise ValueError(f"FMSR repair needs all survivors; missing {missing}")
        chunk_len = shard_length(size, self._native)
        rng = make_rng(self._seed if seed is None else seed, "fmsr-repair", failed)

        sur_chunks = {
            i: self._fragment_chunks(fragments[i], chunk_len, i) for i in survivors
        }
        for _ in range(_MAX_DRAWS):
            # Phase 1: each survivor sends one random combination of its chunks.
            sent_rows = np.zeros((self._n - 1, self._native), dtype=np.uint8)
            sent_chunks = np.zeros((self._n - 1, chunk_len), dtype=np.uint8)
            for j, i in enumerate(survivors):
                alpha = rng.integers(0, 256, size=(1, self._r), dtype=np.uint8)
                sent_rows[j] = gf_matmul(alpha, self._ecm[self._node_rows(i)])[0]
                if chunk_len:
                    sent_chunks[j] = gf_matmul_fast(alpha, sur_chunks[i])[0]
            # Phase 2: the replacement combines them into r new chunks.
            beta = rng.integers(0, 256, size=(self._r, self._n - 1), dtype=np.uint8)
            new_rows = gf_matmul(beta, sent_rows)  # (r, k*r)
            candidate = self._ecm.copy()
            candidate[self._node_rows(failed)] = new_rows
            if not self._is_mds(candidate):
                continue
            new_chunks = (
                gf_matmul_fast(beta, sent_chunks)
                if chunk_len
                else np.zeros((self._r, 0), dtype=np.uint8)
            )
            successor = FMSRCode(self._n, self._k, seed=self._seed, ecm=candidate)
            return new_chunks.tobytes(), successor
        raise RuntimeError(  # pragma: no cover - probability ~0
            f"FMSR repair failed to find MDS-preserving coefficients in {_MAX_DRAWS} tries"
        )
