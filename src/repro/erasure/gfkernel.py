"""Vectorised GF(2^8) encode kernels — the parity-generation hot path.

Parity generation is a constant-matrix product over GF(256): every output
row is ``XOR_j coeff[i, j] * shard[j]`` for a small, fixed coefficient
matrix and megabyte-wide shard rows.  The scalar reference
(:func:`repro.erasure.galois.gf_matmul`) evaluates it as one 2-D fancy
gather per shard column — a cache-hostile random walk over the 64 KiB
product table that topped out around 140 MB/s for RS(2+2).  This module
replaces that walk with contiguous table lookups shaped for NumPy's
``take`` and keeps every byte bit-identical to the scalar oracle.

Kernel strategies (``REPRO_GF_KERNEL`` environment variable, or
:func:`set_strategy` / the ``strategy=`` argument):

``packed`` (chosen by ``auto``, the default)
    Adjacent input bytes are paired through a natural little-endian
    ``uint16`` view (no index construction), and each gathered entry is a
    ``uint32`` packing the products for *two* output rows — one ``take``
    therefore performs four GF multiplies.  Tables are 64 Ki entries
    (256 KiB) per coefficient pair, LRU-cached, and execution is tiled so
    accumulators stay cache-resident.  On top of that the planner folds
    input columns pairwise: whenever two coefficient columns are equal or
    differ by exactly ``1`` in every row (which is *always* true for the
    two data columns of a systematic Vandermonde code with ``k = 2``),
    both shards are combined with a single XOR pass and one gather covers
    them both.
``table``
    One contiguous 256-entry row lookup per (row, column) coefficient,
    XOR-accumulated — the classic log-free LUT kernel.  Slower than
    ``packed`` but needs only the shared 64 KiB product table.
``nibble``
    Split high/low-nibble tables (two 256x16 byte tables, 8 KiB total)
    in the ISA-L/PSHUFB style: ``c*x = LO[c][x & 15] ^ HI[c][x >> 4]``.
    The tables always stay cache-resident, but NumPy pays two gathers
    plus the nibble extraction per coefficient, so this is a fallback
    for cache-starved hosts, not the default.
``scalar``
    Defers to :func:`~repro.erasure.galois.gf_matmul` — the reference
    oracle the property suite checks every other strategy against.

See ``docs/codecs.md`` for the full decision tree and the measured
numbers behind it.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.erasure.galois import MUL_TABLE, gf_matmul

__all__ = [
    "KERNEL_STRATEGIES",
    "EncodePlan",
    "active_strategy",
    "set_strategy",
    "plan_for",
    "encode_parity",
    "gf_matmul_fast",
    "xor_rows",
]

#: accepted strategy names; ``auto`` resolves to the fastest implemented
#: kernel (currently ``packed``)
KERNEL_STRATEGIES = ("auto", "packed", "table", "nibble", "scalar")

_ENV_VAR = "REPRO_GF_KERNEL"
#: uint16 elements per tile — 128 KiB of index bytes, so index tile,
#: two uint32 accumulators (512 KiB) and a couple of 256 KiB tables fit a
#: 2 MiB L2 together
_TILE = 1 << 16
#: below this many bytes per shard the NumPy call overhead exceeds the
#: gather win and the scalar oracle is used directly
_SMALL_CUTOFF = 2048
_PAIR16_MAX = 128  # cached uint16 pair tables, 128 KiB each
_PACKED32_MAX = 64  # cached uint32 packed tables, 256 KiB each
_PLAN_MAX = 256


def _resolve(strategy: str | None) -> str:
    name = strategy if strategy is not None else _DEFAULT[0]
    if name not in KERNEL_STRATEGIES:
        raise ValueError(
            f"unknown GF kernel strategy {name!r}; choose from {KERNEL_STRATEGIES}"
        )
    return "packed" if name == "auto" else name


def active_strategy() -> str:
    """The strategy new plans resolve to right now (``auto`` resolved)."""
    return _resolve(None)


def set_strategy(name: str | None) -> None:
    """Set the process-wide default strategy (``None`` restores ``auto``).

    Bound plans are dropped so the next encode re-plans; cached product
    tables survive (they are strategy-independent data).
    """
    _DEFAULT[0] = name if name is not None else os.environ.get(_ENV_VAR, "auto")
    _resolve(None)  # validate eagerly
    _PLANS.clear()


_DEFAULT = [os.environ.get(_ENV_VAR, "auto")]


# ------------------------------------------------------------------- tables
_PAIR16: OrderedDict[int, np.ndarray] = OrderedDict()
_PACKED32: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
_NIBBLE: list[tuple[np.ndarray, np.ndarray] | None] = [None]


def _pair16(c: int) -> np.ndarray:
    """64 Ki-entry uint16 table: products of ``c`` for a byte *pair*.

    Indexed by the little-endian ``uint16`` view of bytes ``[lo, hi]``
    (``lo | hi << 8``); the entry is ``c*lo | (c*hi) << 8`` — the LE
    ``uint16`` view of the two product bytes.
    """
    cached = _PAIR16.get(c)
    if cached is None:
        row = MUL_TABLE[c].astype(np.uint16)
        cached = (row[np.newaxis, :] | (row[:, np.newaxis] << 8)).reshape(-1)
        _PAIR16[c] = cached
        if len(_PAIR16) > _PAIR16_MAX:
            _PAIR16.popitem(last=False)
    else:
        _PAIR16.move_to_end(c)
    return cached


def _packed32(c0: int, c1: int) -> np.ndarray:
    """uint32 pair table packing two output rows: low half ``c0``, high ``c1``."""
    key = (c0, c1)
    cached = _PACKED32.get(key)
    if cached is None:
        cached = _pair16(c0).astype(np.uint32) | (
            _pair16(c1).astype(np.uint32) << 16
        )
        _PACKED32[key] = cached
        if len(_PACKED32) > _PACKED32_MAX:
            _PACKED32.popitem(last=False)
    else:
        _PACKED32.move_to_end(key)
    return cached


def _nibble_tables() -> tuple[np.ndarray, np.ndarray]:
    """(LO, HI) split tables: ``c*x = LO[c][x & 15] ^ HI[c][x >> 4]``."""
    if _NIBBLE[0] is None:
        lo = np.ascontiguousarray(MUL_TABLE[:, :16])
        hi = np.ascontiguousarray(MUL_TABLE[:, 0:256:16])
        _NIBBLE[0] = (lo, hi)
    return _NIBBLE[0]


# ---------------------------------------------------------------- workspace
class _Workspace:
    """Per-process scratch reused across every kernel execution.

    One tile's worth of each accumulator dtype plus on-demand index
    buffers for folded columns; reuse avoids re-faulting megabytes of
    fresh pages on every encode call.
    """

    def __init__(self) -> None:
        self.acc32 = np.empty(_TILE, dtype=np.uint32)
        self.tmp32 = np.empty(_TILE, dtype=np.uint32)
        self.acc16 = np.empty(_TILE, dtype=np.uint16)
        self.tmp16 = np.empty(_TILE, dtype=np.uint16)
        self.tmp8 = np.empty(2 * _TILE, dtype=np.uint8)
        self._idx: list[np.ndarray] = []

    def idx16(self, i: int) -> np.ndarray:
        while len(self._idx) <= i:
            self._idx.append(np.empty(_TILE, dtype=np.uint16))
        return self._idx[i]


_WS = _Workspace()


# --------------------------------------------------------------------- plan
class _Term:
    """One gather term of the packed schedule.

    ``col`` is the shard column whose (possibly folded) bytes are the
    gather index; ``fold_col`` is the partner column folded into the index
    by XOR (or ``None``); ``fold_extra`` marks the difference-one fold,
    where the partner shard must additionally be XORed into *every*
    output row; ``coeffs`` is the per-output-row coefficient vector.
    """

    __slots__ = ("col", "fold_col", "fold_extra", "coeffs")

    def __init__(
        self, col: int, fold_col: int | None, fold_extra: bool, coeffs: np.ndarray
    ) -> None:
        self.col = col
        self.fold_col = fold_col
        self.fold_extra = fold_extra
        self.coeffs = coeffs


def _fold_schedule(coeff: np.ndarray) -> list[_Term]:
    """Greedy pairwise column folding.

    Two shard columns fold into one gather when their coefficient columns
    XOR to the same constant ``d`` in every output row and ``d`` is 0
    (identical columns: ``c*s1 ^ c*s2 = c*(s1 ^ s2)``) or 1
    (``c*s1 ^ (c^1)*s2 = c*(s1 ^ s2) ^ s2``).  Systematic Vandermonde
    generators with ``k = 2`` always satisfy the ``d = 1`` case, which is
    what makes the RS(2+m) write path one gather per output-row pair.
    """
    m, k = coeff.shape
    terms: list[_Term] = []
    used = [False] * k
    for j1 in range(k):
        if used[j1]:
            continue
        used[j1] = True
        fold: tuple[int, int] | None = None
        for j2 in range(j1 + 1, k):
            if used[j2]:
                continue
            diff = coeff[:, j1] ^ coeff[:, j2]
            d = int(diff[0])
            if d <= 1 and np.all(diff == d):
                fold = (j2, d)
                used[j2] = True
                break
        if fold is None:
            terms.append(_Term(j1, None, False, coeff[:, j1].copy()))
        else:
            j2, d = fold
            terms.append(_Term(j1, j2, d == 1, coeff[:, j1].copy()))
    return terms


class EncodePlan:
    """A coefficient matrix bound to one kernel strategy.

    Binding analyses the matrix once (column folding, row pairing) so a
    replay write burst pays the planning cost a single time; plans are
    cached by matrix bytes (:func:`plan_for`), and the packed gather
    tables live in their own LRU shared across plans.  ``execute`` is
    byte-identical to ``gf_matmul(coeff, shards)`` for every strategy —
    the hypothesis suite in ``tests/test_gfkernel.py`` holds each one to
    the scalar oracle.
    """

    def __init__(self, coeff: np.ndarray, strategy: str | None = None) -> None:
        coeff = np.asarray(coeff, dtype=np.uint8)
        if coeff.ndim != 2:
            raise ValueError(f"coefficient matrix must be 2-D, got {coeff.shape}")
        self.coeff = coeff
        self.strategy = _resolve(strategy)
        self.m, self.k = coeff.shape
        self._terms = _fold_schedule(coeff) if self.strategy == "packed" else []
        self._pairs = [(r, r + 1) for r in range(0, self.m - 1, 2)]
        self._odd = self.m - 1 if self.m % 2 else None

    # ------------------------------------------------------------- dispatch
    def execute(
        self,
        rows: Sequence[np.ndarray],
        length: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Parity rows for ``rows`` (k 1-D uint8 arrays of >= ``length``).

        Returns an ``(m, length)`` C-contiguous uint8 matrix (``out`` may
        supply it); every fragment byte matches the scalar oracle exactly.
        """
        if len(rows) != self.k:
            raise ValueError(f"plan expects {self.k} shard rows, got {len(rows)}")
        if out is None:
            out = np.empty((self.m, length), dtype=np.uint8)
        elif out.shape != (self.m, length) or out.dtype != np.uint8:
            raise ValueError(
                f"out must be uint8 {(self.m, length)}, got {out.dtype} {out.shape}"
            )
        if length == 0 or self.m == 0:
            return out
        if self.strategy == "scalar" or length < _SMALL_CUTOFF:
            stacked = np.vstack([np.asarray(r[:length], dtype=np.uint8) for r in rows])
            out[:] = gf_matmul(self.coeff, stacked)
            return out
        if self.strategy == "packed":
            self._run_packed(rows, length, out)
        elif self.strategy == "table":
            self._run_table(rows, length, out)
        else:
            self._run_nibble(rows, length, out)
        return out

    __call__ = execute

    # --------------------------------------------------------------- packed
    def _run_packed(
        self, rows: Sequence[np.ndarray], length: int, out: np.ndarray
    ) -> None:
        even = length & ~1
        half = even >> 1
        row16 = [r[:even].view(np.uint16) for r in rows]
        out16 = [out[i, :even].view(np.uint16) for i in range(self.m)]
        ws = _WS
        for s in range(0, half, _TILE):
            e = min(s + _TILE, half)
            w = e - s
            idx_tiles: list[np.ndarray] = []
            for i, t in enumerate(self._terms):
                if t.fold_col is None:
                    idx_tiles.append(row16[t.col][s:e])
                else:
                    buf = ws.idx16(i)[:w]
                    np.bitwise_xor(
                        row16[t.col][s:e], row16[t.fold_col][s:e], out=buf
                    )
                    idx_tiles.append(buf)
            for r0, r1 in self._pairs:
                acc = ws.acc32[:w]
                first = True
                for t, idx in zip(self._terms, idx_tiles):
                    c0 = int(t.coeffs[r0])
                    c1 = int(t.coeffs[r1])
                    if c0 == 0 and c1 == 0:
                        continue
                    table = _packed32(c0, c1)
                    if first:
                        np.take(table, idx, out=acc, mode="clip")
                        first = False
                    else:
                        tmp = ws.tmp32[:w]
                        np.take(table, idx, out=tmp, mode="clip")
                        np.bitwise_xor(acc, tmp, out=acc)
                if first:
                    out16[r0][s:e] = 0
                    out16[r1][s:e] = 0
                else:
                    # truncating casts split the packed halves: low uint16 is
                    # row r0's product pair, high uint16 is row r1's
                    np.copyto(out16[r0][s:e], acc, casting="unsafe")
                    acc >>= 16
                    np.copyto(out16[r1][s:e], acc, casting="unsafe")
            if self._odd is not None:
                r = self._odd
                acc = ws.acc16[:w]
                first = True
                for t, idx in zip(self._terms, idx_tiles):
                    c = int(t.coeffs[r])
                    if c == 0:
                        continue
                    table = _pair16(c)
                    if first:
                        np.take(table, idx, out=acc, mode="clip")
                        first = False
                    else:
                        tmp = ws.tmp16[:w]
                        np.take(table, idx, out=tmp, mode="clip")
                        np.bitwise_xor(acc, tmp, out=acc)
                if first:
                    out16[r][s:e] = 0
                else:
                    out16[r][s:e] = acc
            for t, idx in zip(self._terms, idx_tiles):
                if t.fold_extra:
                    extra = row16[t.fold_col][s:e]
                    for i in range(self.m):
                        np.bitwise_xor(out16[i][s:e], extra, out=out16[i][s:e])
        if even < length:
            tail = np.array([[int(r[length - 1])] for r in rows], dtype=np.uint8)
            out[:, even:] = gf_matmul(self.coeff, tail)

    # ---------------------------------------------------------------- table
    def _run_table(
        self, rows: Sequence[np.ndarray], length: int, out: np.ndarray
    ) -> None:
        ws = _WS
        tile = 2 * _TILE
        for s in range(0, length, tile):
            e = min(s + tile, length)
            w = e - s
            for i in range(self.m):
                acc = out[i, s:e]
                first = True
                for j in range(self.k):
                    c = int(self.coeff[i, j])
                    if c == 0:
                        continue
                    src = rows[j][s:e]
                    if first:
                        if c == 1:
                            np.copyto(acc, src)
                        else:
                            np.take(MUL_TABLE[c], src, out=acc, mode="clip")
                        first = False
                    elif c == 1:
                        np.bitwise_xor(acc, src, out=acc)
                    else:
                        tmp = ws.tmp8[:w]
                        np.take(MUL_TABLE[c], src, out=tmp, mode="clip")
                        np.bitwise_xor(acc, tmp, out=acc)
                if first:
                    acc[:] = 0

    # --------------------------------------------------------------- nibble
    def _run_nibble(
        self, rows: Sequence[np.ndarray], length: int, out: np.ndarray
    ) -> None:
        lo_t, hi_t = _nibble_tables()
        ws = _WS
        tile = 2 * _TILE
        for s in range(0, length, tile):
            e = min(s + tile, length)
            w = e - s
            los: list[np.ndarray | None] = [None] * self.k
            his: list[np.ndarray | None] = [None] * self.k
            out[:, s:e] = 0
            for i in range(self.m):
                acc = out[i, s:e]
                for j in range(self.k):
                    c = int(self.coeff[i, j])
                    if c == 0:
                        continue
                    src = rows[j][s:e]
                    if c == 1:
                        np.bitwise_xor(acc, src, out=acc)
                        continue
                    if los[j] is None:
                        # nibble split computed lazily, once per shard tile
                        los[j] = np.bitwise_and(src, 15)
                        his[j] = np.right_shift(src, 4)
                    tmp = ws.tmp8[:w]
                    np.take(lo_t[c], los[j], out=tmp, mode="clip")
                    np.bitwise_xor(acc, tmp, out=acc)
                    np.take(hi_t[c], his[j], out=tmp, mode="clip")
                    np.bitwise_xor(acc, tmp, out=acc)


# ------------------------------------------------------------------- caches
_PLANS: OrderedDict[tuple[str, tuple[int, int], bytes], EncodePlan] = OrderedDict()


def plan_for(coeff: np.ndarray, strategy: str | None = None) -> EncodePlan:
    """The cached :class:`EncodePlan` for ``coeff`` under ``strategy``.

    Keyed by matrix bytes and resolved strategy, LRU-bounded: a replayer
    driving thousands of writes through one codec binds the matrix once
    and reuses the plan for the whole burst.
    """
    coeff = np.asarray(coeff, dtype=np.uint8)
    key = (_resolve(strategy), coeff.shape, coeff.tobytes())
    plan = _PLANS.get(key)
    if plan is None:
        plan = EncodePlan(coeff, strategy)
        _PLANS[key] = plan
        if len(_PLANS) > _PLAN_MAX:
            _PLANS.popitem(last=False)
    else:
        _PLANS.move_to_end(key)
    return plan


def encode_parity(
    coeff: np.ndarray,
    rows: Sequence[np.ndarray],
    length: int,
    strategy: str | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Parity rows ``coeff @ rows`` over GF(256) via the cached plan."""
    return plan_for(coeff, strategy).execute(rows, length, out)


def gf_matmul_fast(
    a: np.ndarray, b: np.ndarray, strategy: str | None = None
) -> np.ndarray:
    """Drop-in for :func:`~repro.erasure.galois.gf_matmul`, kernel-backed.

    Same shape contract — ``(r, c) x (c, L) -> (r, L)`` — and bit-identical
    output; small products fall back to the scalar oracle where the call
    overhead would dominate.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes for GF matmul: {a.shape} x {b.shape}")
    return plan_for(a, strategy).execute(list(b), b.shape[1])


def xor_rows(
    rows: Sequence, length: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Tiled XOR-reduce of bytes-like rows (the RAID5 parity primitive).

    ``rows`` may be uint8 arrays or any bytes-like buffers of at least
    ``length`` bytes; returns a fresh (or supplied) uint8 array of
    ``length``.  Tiling keeps the accumulator cache-resident when folding
    many fragments.
    """
    if out is None:
        out = np.empty(length, dtype=np.uint8)
    arrs = [
        r if isinstance(r, np.ndarray) else np.frombuffer(r, dtype=np.uint8)
        for r in rows
    ]
    if not arrs:
        out[:length] = 0
        return out
    tile = 4 * _TILE
    for s in range(0, length, tile):
        e = min(s + tile, length)
        acc = out[s:e]
        np.copyto(acc, arrs[0][s:e])
        for arr in arrs[1:]:
            np.bitwise_xor(acc, arr[s:e], out=acc)
    return out
