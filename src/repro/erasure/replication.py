"""Replication expressed as an (n, 1) erasure code.

DuraCloud (n = 2), DepSky (n = 4), and HyRD's small-file/metadata path
(n = replication level) all use this codec, so every scheme in the repo
shares one fragment-placement code path.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.erasure.codec import ErasureCodec

__all__ = ["ReplicationCode"]


class ReplicationCode(ErasureCodec):
    """n identical copies; any single copy reconstructs the payload."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"replica count must be > 0, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return 1

    def encode(self, data: bytes) -> list[bytes]:
        return [data] * self._n

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        idx = min(fragments)
        data = fragments[idx]
        if len(data) != size:
            raise ValueError(
                f"replica {idx} has length {len(data)}, expected {size}"
            )
        return data

    def reconstruct_fragment(
        self, fragments: Mapping[int, bytes], index: int, size: int
    ) -> bytes:
        if not (0 <= index < self._n):
            raise ValueError(f"fragment index {index} out of range [0, {self._n})")
        return self.decode(fragments, size)

    def fragment_size(self, size: int) -> int:
        return size
