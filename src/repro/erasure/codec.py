"""Common erasure-codec interface and a small registry.

Every redundancy scheme in the repo (RAID5 for HyRD/RACS, RS for rate
ablations, FMSR for NCCloud, plain replication for DuraCloud/DepSky) is an
:class:`ErasureCodec`: ``encode`` produces ``n`` fragments of which any ``k``
reconstruct the payload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

__all__ = ["ErasureCodec", "register_codec", "get_codec", "available_codecs"]


class ErasureCodec(ABC):
    """An (n, k) erasure code over byte payloads."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Total number of fragments produced by :meth:`encode`."""

    @property
    @abstractmethod
    def k(self) -> int:
        """Minimum number of fragments required by :meth:`decode`."""

    @property
    def storage_overhead(self) -> float:
        """Stored-bytes / payload-bytes ratio (1/code-rate), e.g. 1.25 for RAID5 4+1."""
        return self.n / self.k

    @property
    def fault_tolerance(self) -> int:
        """How many simultaneous fragment losses are survivable."""
        return self.n - self.k

    @abstractmethod
    def encode(self, data: bytes) -> list[bytes]:
        """Encode ``data`` into exactly ``n`` fragments (index = position)."""

    def encode_views(self, data: bytes) -> list[bytes | memoryview]:
        """Encode ``data`` into ``n`` fragments, allowing zero-copy views.

        Same fragment *contents* as :meth:`encode`, but a codec may return
        ``memoryview`` slices into an internal encode buffer instead of
        materialising each fragment as ``bytes``.  Callers must treat the
        returned buffers as frozen (the simulated stores keep them as-is;
        see ``docs/performance.md``).  The default just delegates to
        :meth:`encode`.
        """
        return list(self.encode(data))

    def encode_views_batch(
        self, payloads: Sequence[bytes]
    ) -> list[list[bytes | memoryview]]:
        """Encode a burst of payloads; fragment list per payload, in order.

        Contents are byte-identical to calling :meth:`encode_views` per
        payload — the contract batching must never change.  Codecs whose
        encode has per-call fixed costs worth amortising (matrix binding,
        kernel tile ramp-up) override this to run one batched parity pass
        over the whole burst; ``ReedSolomonCode`` does.  The default is the
        straightforward loop.
        """
        return [self.encode_views(p) for p in payloads]

    @abstractmethod
    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        """Reconstruct the original ``size``-byte payload.

        ``fragments`` maps fragment index -> fragment bytes (any bytes-like
        buffer is accepted) and must contain at least ``k`` entries; raises
        ``ValueError`` otherwise.
        """

    def reconstruct_fragment(self, fragments: Mapping[int, bytes], index: int, size: int) -> bytes:
        """Rebuild one lost fragment from survivors.

        The generic implementation decodes then re-encodes; codecs with a
        cheaper repair path (FMSR) override this.
        """
        data = self.decode(fragments, size)
        return self.encode(data)[index]

    def fragment_size(self, size: int) -> int:
        """Bytes stored per fragment for a ``size``-byte payload."""
        from repro.erasure.striping import shard_length

        return shard_length(size, self.k)

    def _check_enough(self, fragments: Mapping[int, bytes]) -> None:
        if len(fragments) < self.k:
            raise ValueError(
                f"{type(self).__name__} needs >= {self.k} fragments, got {len(fragments)}"
            )
        bad = [i for i in fragments if not (0 <= i < self.n)]
        if bad:
            raise ValueError(f"fragment indices out of range [0, {self.n}): {bad}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, k={self.k})"


_REGISTRY: dict[str, Callable[..., ErasureCodec]] = {}


def register_codec(name: str, factory: Callable[..., ErasureCodec]) -> None:
    """Register a codec factory under ``name`` (lower-case)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"codec {name!r} already registered")
    _REGISTRY[key] = factory


def get_codec(name: str, **kwargs: object) -> ErasureCodec:
    """Instantiate a registered codec, e.g. ``get_codec('raid5', k=3)``."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_codecs() -> list[str]:
    """Names accepted by :func:`get_codec`."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    # Imported lazily to avoid circular imports at module load.
    from repro.erasure.fmsr import FMSRCode
    from repro.erasure.raid5 import Raid5Code
    from repro.erasure.reed_solomon import ReedSolomonCode
    from repro.erasure.replication import ReplicationCode

    register_codec("raid5", Raid5Code)
    register_codec("rs", ReedSolomonCode)
    register_codec("fmsr", FMSRCode)
    register_codec("replication", ReplicationCode)


_register_builtins()
