"""Systematic Reed-Solomon over GF(2^8).

The generator matrix is an (n, k) systematic Vandermonde derivative
(:func:`repro.erasure.galois.systematic_vandermonde`): the first k fragments
are the raw data shards, the remaining m = n - k are parity.  Any k fragments
reconstruct the payload by inverting the corresponding kxk sub-matrix.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.erasure.codec import ErasureCodec
from repro.erasure.galois import gf_inverse_matrix, gf_matmul, systematic_vandermonde
from repro.erasure.striping import join_shards, split_shards

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode(ErasureCodec):
    """RS(k, m): k data fragments + m parity fragments, MDS."""

    def __init__(self, k: int, m: int) -> None:
        if k <= 0 or m < 0:
            raise ValueError(f"need k > 0 and m >= 0, got k={k}, m={m}")
        if k + m > 255:
            raise ValueError(f"n = k + m must be <= 255 in GF(256), got {k + m}")
        self._k = k
        self._n = k + m
        self._gen = systematic_vandermonde(self._n, self._k)
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    @property
    def generator_matrix(self) -> np.ndarray:
        """A read-only view of the (n, k) generator matrix."""
        g = self._gen.view()
        g.flags.writeable = False
        return g

    def encode(self, data: bytes) -> list[bytes]:
        shards = split_shards(data, self._k)  # (k, L)
        fragments = gf_matmul(self._gen, shards)  # (n, L)
        return [fragments[i].tobytes() for i in range(self._n)]

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """Inverse of the generator rows for ``indices`` (cached per subset)."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            sub = self._gen[list(indices), :]
            cached = gf_inverse_matrix(sub)
            self._decode_cache[indices] = cached
        return cached

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        rows = []
        for i in indices:
            frag = fragments[i]
            if len(frag) != frag_len:
                raise ValueError(
                    f"fragment {i} has length {len(frag)}, expected {frag_len}"
                )
            rows.append(np.frombuffer(frag, dtype=np.uint8))
        stacked = np.vstack(rows) if frag_len else np.zeros((self._k, 0), np.uint8)
        inv = self._decode_matrix(indices)
        shards = gf_matmul(inv, stacked)
        return join_shards(shards, size)

    def reconstruct_fragment(
        self, fragments: Mapping[int, bytes], index: int, size: int
    ) -> bytes:
        """Rebuild fragment ``index`` without re-encoding the whole object."""
        self._check_enough(fragments)
        if not (0 <= index < self._n):
            raise ValueError(f"fragment index {index} out of range [0, {self._n})")
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        if frag_len == 0:
            return b""
        stacked = np.vstack(
            [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        )
        inv = self._decode_matrix(indices)
        # row(index of G) @ inv gives the combination of the available
        # fragments that equals the lost one.
        coeffs = gf_matmul(self._gen[index : index + 1, :], inv)  # (1, k)
        return gf_matmul(coeffs, stacked)[0].tobytes()
