"""Systematic Reed-Solomon over GF(2^8).

The generator matrix is an (n, k) systematic Vandermonde derivative
(:func:`repro.erasure.galois.systematic_vandermonde`): the first k fragments
are the raw data shards, the remaining m = n - k are parity.  Any k fragments
reconstruct the payload by inverting the corresponding kxk sub-matrix.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping

import numpy as np

from repro.erasure.codec import ErasureCodec
from repro.erasure.galois import gf_inverse_matrix, gf_matmul, systematic_vandermonde
from repro.erasure.striping import join_fragments, join_shards, split_shards

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode(ErasureCodec):
    """RS(k, m): k data fragments + m parity fragments, MDS."""

    #: max cached decode matrices; degraded-read sweeps touch arbitrary index
    #: subsets, so the cache is LRU-bounded instead of growing without limit
    _DECODE_CACHE_MAX = 64

    def __init__(self, k: int, m: int) -> None:
        if k <= 0 or m < 0:
            raise ValueError(f"need k > 0 and m >= 0, got k={k}, m={m}")
        if k + m > 255:
            raise ValueError(f"n = k + m must be <= 255 in GF(256), got {k + m}")
        self._k = k
        self._n = k + m
        self._gen = systematic_vandermonde(self._n, self._k)
        #: parity rows of the generator, pre-bound so the hot encode path
        #: multiplies only the m non-identity rows (the top k are systematic)
        self._parity_rows = self._gen[self._k :]
        self._decode_cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()

    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    @property
    def generator_matrix(self) -> np.ndarray:
        """A read-only view of the (n, k) generator matrix."""
        g = self._gen.view()
        g.flags.writeable = False
        return g

    def _encode_shards(self, data: bytes) -> tuple[np.ndarray, np.ndarray]:
        """(data shards, parity shards) — parity-only matmul, systematic top."""
        shards = split_shards(data, self._k)  # (k, L)
        if self._n > self._k:
            parity = gf_matmul(self._parity_rows, shards)  # (m, L)
        else:
            parity = np.empty((0, shards.shape[1]), dtype=np.uint8)
        return shards, parity

    def encode(self, data: bytes) -> list[bytes]:
        shards, parity = self._encode_shards(data)
        return [shards[i].tobytes() for i in range(self._k)] + [
            parity[j].tobytes() for j in range(self._n - self._k)
        ]

    def encode_views(self, data: bytes) -> list[bytes | memoryview]:
        """Zero-copy encode: fragments are views into the encode buffers."""
        shards, parity = self._encode_shards(data)
        views: list[bytes | memoryview] = [memoryview(shards[i]) for i in range(self._k)]
        views.extend(memoryview(parity[j]) for j in range(self._n - self._k))
        return views

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """Inverse of the generator rows for ``indices`` (LRU-cached per subset)."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            sub = self._gen[list(indices), :]
            cached = gf_inverse_matrix(sub)
            self._decode_cache[indices] = cached
            if len(self._decode_cache) > self._DECODE_CACHE_MAX:
                self._decode_cache.popitem(last=False)
        else:
            self._decode_cache.move_to_end(indices)
        return cached

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        for i in indices:
            if len(fragments[i]) != frag_len:
                raise ValueError(
                    f"fragment {i} has length {len(fragments[i])}, expected {frag_len}"
                )
        if frag_len == 0:
            return b""
        if indices == tuple(range(self._k)):
            # Systematic fast path: the first k fragments are the data shards.
            return join_fragments((fragments[i] for i in indices), frag_len, size)
        stacked = np.vstack(
            [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        )
        inv = self._decode_matrix(indices)
        shards = gf_matmul(inv, stacked)
        return join_shards(shards, size)

    def reconstruct_fragment(
        self, fragments: Mapping[int, bytes], index: int, size: int
    ) -> bytes:
        """Rebuild fragment ``index`` without re-encoding the whole object."""
        self._check_enough(fragments)
        if not (0 <= index < self._n):
            raise ValueError(f"fragment index {index} out of range [0, {self._n})")
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        if frag_len == 0:
            return b""
        stacked = np.vstack(
            [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        )
        inv = self._decode_matrix(indices)
        # row(index of G) @ inv gives the combination of the available
        # fragments that equals the lost one.
        coeffs = gf_matmul(self._gen[index : index + 1, :], inv)  # (1, k)
        return gf_matmul(coeffs, stacked)[0].tobytes()
