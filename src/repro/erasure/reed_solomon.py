"""Systematic Reed-Solomon over GF(2^8).

The generator matrix is an (n, k) systematic Vandermonde derivative
(:func:`repro.erasure.galois.systematic_vandermonde`): the first k fragments
are the raw data shards, the remaining m = n - k are parity.  Any k fragments
reconstruct the payload by inverting the corresponding kxk sub-matrix.

Parity generation and degraded decode run through the vectorised kernels in
:mod:`repro.erasure.gfkernel` (strategy selectable via ``REPRO_GF_KERNEL``);
output stays bit-identical to the scalar ``gf_matmul`` oracle.  See
``docs/codecs.md`` for the derivation and kernel decision tree.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from repro.erasure.codec import ErasureCodec
from repro.erasure.galois import gf_inverse_matrix, systematic_vandermonde
from repro.erasure.gfkernel import gf_matmul_fast, plan_for
from repro.erasure.striping import (
    join_fragments,
    join_shards,
    shard_length,
    split_shards,
    split_views,
)

__all__ = ["ReedSolomonCode"]

#: payloads above this are encoded individually by ``encode_views_batch`` —
#: they already saturate the kernel on their own, and concatenating them
#: into one shard matrix would just burn memory bandwidth on the copy
_BATCH_MAX_PAYLOAD = 256 * 1024


class ReedSolomonCode(ErasureCodec):
    """RS(k, m): k data fragments + m parity fragments, MDS."""

    #: max cached decode matrices; degraded-read sweeps touch arbitrary index
    #: subsets, so the cache is LRU-bounded instead of growing without limit
    _DECODE_CACHE_MAX = 64

    def __init__(self, k: int, m: int) -> None:
        if k <= 0 or m < 0:
            raise ValueError(f"need k > 0 and m >= 0, got k={k}, m={m}")
        if k + m > 255:
            raise ValueError(f"n = k + m must be <= 255 in GF(256), got {k + m}")
        self._k = k
        self._n = k + m
        self._gen = systematic_vandermonde(self._n, self._k)
        #: parity rows of the generator, pre-bound so the hot encode path
        #: multiplies only the m non-identity rows (the top k are systematic)
        self._parity_rows = self._gen[self._k :]
        self._decode_cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()

    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    @property
    def generator_matrix(self) -> np.ndarray:
        """A read-only view of the (n, k) generator matrix."""
        g = self._gen.view()
        g.flags.writeable = False
        return g

    def _parity_for(self, rows: Sequence[np.ndarray], length: int) -> np.ndarray:
        """(m, length) parity matrix for k shard rows, via the bound kernel plan.

        The plan is cached on the generator's parity-row bytes
        (:func:`repro.erasure.gfkernel.plan_for`), so a write burst through
        one codec binds the matrix once and re-uses the analysed schedule —
        column folding included — for every stripe.
        """
        if self._n == self._k:
            return np.empty((0, length), dtype=np.uint8)
        return plan_for(self._parity_rows).execute(rows, length)

    def _encode_shards(self, data: bytes) -> tuple[np.ndarray, np.ndarray]:
        """(data shards, parity shards) — parity-only product, systematic top."""
        shards = split_shards(data, self._k)  # (k, L)
        parity = self._parity_for(list(shards), shards.shape[1])  # (m, L)
        return shards, parity

    def encode(self, data: bytes) -> list[bytes]:
        """``n`` materialised fragments: k data shards then m parity shards."""
        shards, parity = self._encode_shards(data)
        return [shards[i].tobytes() for i in range(self._k)] + [
            parity[j].tobytes() for j in range(self._n - self._k)
        ]

    def encode_views(self, data: bytes) -> list[bytes | memoryview]:
        """Zero-copy encode: unpadded data fragments are views into ``data``
        itself (:func:`~repro.erasure.striping.split_views`); only padded tail
        shards and the parity rows are fresh buffers."""
        rows = split_views(data, self._k)
        length = rows[0].shape[0] if rows else 0
        parity = self._parity_for(rows, length)
        views: list[bytes | memoryview] = [memoryview(r) for r in rows]
        views.extend(memoryview(parity[j]) for j in range(self._n - self._k))
        return views

    def encode_views_batch(
        self, payloads: Sequence[bytes]
    ) -> list[list[bytes | memoryview]]:
        """Encode a write burst with one batched parity pass.

        Small stripes are concatenated column-wise into a single shard
        matrix so the kernel runs once over the whole burst instead of
        paying per-call fixed costs per stripe; each stripe's parity is then
        sliced back out (contiguous rows of the shared buffer).  Fragments
        are byte-identical to per-payload :meth:`encode_views`.  Payloads
        larger than ``_BATCH_MAX_PAYLOAD`` — or degenerate bursts — fall
        back to individual encodes.
        """
        small = [
            i
            for i, p in enumerate(payloads)
            if 0 < len(p) <= _BATCH_MAX_PAYLOAD
        ]
        if self._n == self._k or len(small) < 2:
            return [self.encode_views(p) for p in payloads]
        lengths = [shard_length(len(payloads[i]), self._k) for i in small]
        offsets = [0]
        for ln in lengths:
            offsets.append(offsets[-1] + ln)
        total = offsets[-1]
        mat = np.zeros((self._k, total), dtype=np.uint8)
        for pos, i in enumerate(small):
            mat[:, offsets[pos] : offsets[pos + 1]] = split_shards(
                payloads[i], self._k
            )
        parity = self._parity_for(list(mat), total)  # (m, total)
        out: list[list[bytes | memoryview] | None] = [None] * len(payloads)
        for pos, i in enumerate(small):
            rows = split_views(payloads[i], self._k)
            views: list[bytes | memoryview] = [memoryview(r) for r in rows]
            views.extend(
                memoryview(parity[j, offsets[pos] : offsets[pos + 1]])
                for j in range(self._n - self._k)
            )
            out[i] = views
        for i, p in enumerate(payloads):
            if out[i] is None:
                out[i] = self.encode_views(p)
        return out  # type: ignore[return-value]

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """Inverse of the generator rows for ``indices`` (LRU-cached per subset)."""
        cached = self._decode_cache.get(indices)
        if cached is None:
            sub = self._gen[list(indices), :]
            cached = gf_inverse_matrix(sub)
            self._decode_cache[indices] = cached
            if len(self._decode_cache) > self._DECODE_CACHE_MAX:
                self._decode_cache.popitem(last=False)
        else:
            self._decode_cache.move_to_end(indices)
        return cached

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        for i in indices:
            if len(fragments[i]) != frag_len:
                raise ValueError(
                    f"fragment {i} has length {len(fragments[i])}, expected {frag_len}"
                )
        if frag_len == 0:
            return b""
        if indices == tuple(range(self._k)):
            # Systematic fast path: the first k fragments are the data shards.
            return join_fragments((fragments[i] for i in indices), frag_len, size)
        stacked = np.vstack(
            [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        )
        inv = self._decode_matrix(indices)
        shards = gf_matmul_fast(inv, stacked)
        return join_shards(shards, size)

    def reconstruct_fragment(
        self, fragments: Mapping[int, bytes], index: int, size: int
    ) -> bytes:
        """Rebuild fragment ``index`` without re-encoding the whole object."""
        self._check_enough(fragments)
        if not (0 <= index < self._n):
            raise ValueError(f"fragment index {index} out of range [0, {self._n})")
        indices = tuple(sorted(fragments))[: self._k]
        frag_len = self.fragment_size(size)
        if frag_len == 0:
            return b""
        stacked = np.vstack(
            [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        )
        inv = self._decode_matrix(indices)
        # row(index of G) @ inv gives the combination of the available
        # fragments that equals the lost one.
        coeffs = gf_matmul_fast(self._gen[index : index + 1, :], inv)  # (1, k)
        return gf_matmul_fast(coeffs, stacked)[0].tobytes()
