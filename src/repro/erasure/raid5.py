"""RAID5-style single-parity code — the paper's erasure case study.

HyRD and RACS both stripe large files as RAID5 over the four providers
(k = 3 data + 1 XOR parity in the default Cloud-of-Clouds).  A single lost
fragment — one provider outage — is recovered by XOR-ing the survivors.

This is exactly RS(k, 1) mathematically, but implemented directly with XOR
so the hot encode/repair path is one tiled XOR fold
(:func:`repro.erasure.gfkernel.xor_rows`) — no GF tables at all.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.erasure.codec import ErasureCodec
from repro.erasure.gfkernel import xor_rows
from repro.erasure.striping import join_fragments, split_shards, split_views

__all__ = ["Raid5Code"]


class Raid5Code(ErasureCodec):
    """k data fragments + 1 XOR parity fragment; tolerates one erasure."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self._k = k

    @property
    def n(self) -> int:
        return self._k + 1

    @property
    def k(self) -> int:
        return self._k

    @property
    def parity_index(self) -> int:
        """Fragment index holding the XOR parity (always the last one)."""
        return self._k

    def encode(self, data: bytes) -> list[bytes]:
        """k data fragments plus their XOR parity, all materialised as bytes."""
        shards = split_shards(data, self._k)  # (k, L)
        parity = xor_rows(list(shards), shards.shape[1])
        return [shards[i].tobytes() for i in range(self._k)] + [parity.tobytes()]

    def encode_views(self, data: bytes) -> list[bytes | memoryview]:
        """Zero-copy encode: unpadded data fragments are views into ``data``
        itself (only the padded tail shard and the parity are fresh buffers);
        parity is a tiled XOR fold (:func:`repro.erasure.gfkernel.xor_rows`)."""
        rows = split_views(data, self._k)
        length = rows[0].shape[0] if rows else 0
        parity = xor_rows(rows, length)
        views: list[bytes | memoryview] = [memoryview(r) for r in rows]
        views.append(memoryview(parity))
        return views

    def decode(self, fragments: Mapping[int, bytes], size: int) -> bytes:
        self._check_enough(fragments)
        frag_len = self.fragment_size(size)
        for i, frag in fragments.items():
            if len(frag) != frag_len:
                raise ValueError(
                    f"fragment {i} has length {len(frag)}, expected {frag_len}"
                )
        if frag_len == 0:
            return b""
        missing_data = [i for i in range(self._k) if i not in fragments]
        if len(missing_data) > 1:
            raise ValueError(
                f"RAID5 tolerates one erasure; data fragments {missing_data} missing"
            )
        if not missing_data:
            # Systematic fast path: all data fragments survive, the payload
            # is their concatenation — no XOR, no intermediate shard matrix.
            return join_fragments(
                (fragments[i] for i in range(self._k)), frag_len, size
            )
        lost = missing_data[0]
        if self.parity_index not in fragments:
            raise ValueError(
                f"cannot rebuild data fragment {lost}: parity missing too"
            )
        acc = xor_rows(
            [fragments[i] for i in fragments if i != lost], frag_len
        )
        rows = [acc if i == lost else fragments[i] for i in range(self._k)]
        return join_fragments(rows, frag_len, size)

    def reconstruct_fragment(
        self, fragments: Mapping[int, bytes], index: int, size: int
    ) -> bytes:
        """Rebuild any one fragment (data or parity) as the XOR of the other k."""
        if not (0 <= index <= self._k):
            raise ValueError(f"fragment index {index} out of range [0, {self.n})")
        others = [i for i in range(self.n) if i != index]
        missing = [i for i in others if i not in fragments]
        if missing:
            raise ValueError(f"RAID5 repair needs all other fragments; missing {missing}")
        frag_len = self.fragment_size(size)
        if frag_len == 0:
            return b""
        for i in others:
            if len(fragments[i]) != frag_len:
                raise ValueError(
                    f"fragment {i} has length {len(fragments[i])}, expected {frag_len}"
                )
        return xor_rows([fragments[i] for i in others], frag_len).tobytes()
