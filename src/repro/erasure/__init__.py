"""Erasure-coding substrate built from scratch on NumPy.

Everything a Cloud-of-Clouds redundancy scheme needs:

- :mod:`repro.erasure.galois`       -- GF(2^8) arithmetic and linear algebra
                                       (the scalar reference oracle)
- :mod:`repro.erasure.gfkernel`     -- vectorised encode kernels + plan cache
                                       (``REPRO_GF_KERNEL`` selects a strategy)
- :mod:`repro.erasure.striping`     -- shard framing (split/join with padding)
- :mod:`repro.erasure.reed_solomon` -- systematic RS(k, m) over GF(2^8)
- :mod:`repro.erasure.raid5`        -- XOR parity (the paper's case study)
- :mod:`repro.erasure.fmsr`         -- functional MSR regenerating codes (NCCloud)
- :mod:`repro.erasure.codec`        -- common interface + registry

See ``docs/codecs.md`` for the field construction, generator derivations,
and the kernel decision tree.
"""

from repro.erasure.codec import ErasureCodec, available_codecs, get_codec
from repro.erasure.fmsr import FMSRCode
from repro.erasure.gfkernel import (
    KERNEL_STRATEGIES,
    active_strategy,
    gf_matmul_fast,
    set_strategy,
)
from repro.erasure.raid5 import Raid5Code
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.replication import ReplicationCode

__all__ = [
    "ErasureCodec",
    "FMSRCode",
    "KERNEL_STRATEGIES",
    "Raid5Code",
    "ReedSolomonCode",
    "ReplicationCode",
    "active_strategy",
    "available_codecs",
    "get_codec",
    "gf_matmul_fast",
    "set_strategy",
]
