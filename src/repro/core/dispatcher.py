"""Request Dispatcher — placement policy (paper §III-B and Figure 2).

*"Based on the data type information (file system metadata, small file, or
large file), the Request Dispatcher module decides which redundancy scheme
should be used for the incoming data, and distributes the data to the
corresponding cloud storage providers."*

Policy reproduced here:

- metadata & small files -> replicated (level = ``replication_level``) on the
  fastest *performance-oriented* providers;
- large files -> erasure-coded (RAID5 by default) across the
  *cost-oriented* providers; when there are too few cost-oriented providers
  for the stripe, the fastest remaining providers fill in;
- frequently-read large files may additionally be *promoted*: one extra full
  copy on the fastest performance-oriented provider (Figure 2's overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import HyRDConfig
from repro.core.evaluator import CostPerformanceEvaluator
from repro.core.monitor import FileClass
from repro.erasure.codec import ErasureCodec, get_codec
from repro.fs.namespace import FileEntry

__all__ = ["DispatchDecision", "PlacementPolicyError", "RequestDispatcher"]


class PlacementPolicyError(ValueError):
    """The configured placement policy cannot be satisfied by the fleet."""


@dataclass(frozen=True)
class DispatchDecision:
    """Where and how one object should be stored."""

    klass: FileClass
    codec: ErasureCodec | None  # None = replication
    providers: tuple[str, ...]  # placement order = fragment index order

    @property
    def redundancy(self) -> str:
        return "replication" if self.codec is None else "erasure"


class RequestDispatcher:
    """Turns (class, size) into concrete placements."""

    def __init__(
        self,
        config: HyRDConfig,
        evaluator: CostPerformanceEvaluator,
        metrics=None,
    ) -> None:
        self.config = config
        self.evaluator = evaluator
        #: optional MetricsRegistry; decisions feed
        #: ``dispatch_decisions_total{redundancy}``
        self.metrics = metrics
        self._codec_cache: ErasureCodec | None = None
        self._usable_guard: Callable[[str], bool] | None = None

    def set_usable_guard(self, guard: Callable[[str], bool] | None) -> None:
        """Install a client-side usability predicate (circuit-breaker feed).

        The guard only influences *preference order* on replication paths:
        guard-passing providers sort first in :meth:`replica_targets` and
        :meth:`promotion_target`.  It never changes set membership — an
        outaged provider must still receive its placement slot so mutations
        land in the write log, and the erasure stripe's membership is pinned
        by the cached codec sizing.
        """
        self._usable_guard = guard

    def _prefer_usable(self, names: list[str]) -> list[str]:
        """Stable-sort guard-passing providers ahead of tripped ones."""
        if self._usable_guard is None:
            return names
        guard = self._usable_guard
        return sorted(names, key=lambda n: 0 if guard(n) else 1)

    def refresh(self) -> None:
        """Drop cached placement state after a re-evaluation or exclusion.

        The erasure codec is sized to the current erasure target set, so it
        must be rebuilt whenever that set can change.
        """
        self._codec_cache = None

    # ----------------------------------------------- feature/region policy
    def _region_of(self, name: str) -> str:
        return self.evaluator.providers[name].features.region

    def _feature_eligible(self, names: list[str]) -> list[str]:
        """Drop providers missing any required feature (§VI policy)."""
        required = self.config.required_features
        if not required:
            return list(names)
        eligible = []
        for name in names:
            features = self.evaluator.providers[name].features
            if all(features.has(f) for f in required):
                eligible.append(name)
        return eligible

    def _enforce_regions(
        self, chosen: list[str], pool: list[str], count: int
    ) -> list[str]:
        """Ensure ``chosen`` (length ``count``) spans enough distinct regions.

        Greedy repair: swap lowest-priority members for pool candidates from
        unrepresented regions.  ``pool`` is priority-ordered and contains
        ``chosen`` as a prefix.
        """
        want = min(self.config.min_distinct_regions, count)
        if want <= 1:
            return chosen[:count]
        result = chosen[:count]
        regions = {self._region_of(n) for n in result}
        if len(regions) >= want:
            return result
        for candidate in pool:
            if len(regions) >= want:
                break
            region = self._region_of(candidate)
            if candidate in result or region in regions:
                continue
            # Evict the last member whose region is duplicated.
            for i in range(len(result) - 1, -1, -1):
                victim_region = self._region_of(result[i])
                if sum(1 for n in result if self._region_of(n) == victim_region) > 1:
                    result[i] = candidate
                    regions = {self._region_of(n) for n in result}
                    break
        if len({self._region_of(n) for n in result}) < want:
            raise PlacementPolicyError(
                f"cannot span {want} distinct regions with providers {pool}"
            )
        return result

    # ------------------------------------------------------------- targets
    def replica_targets(self) -> list[str]:
        """Fastest performance-oriented providers for replication."""
        r = self.config.replication_level
        perf = self._feature_eligible(self.evaluator.performance_oriented())
        if len(perf) < r:
            # Too few performance-oriented providers: extend with the next
            # fastest ones so the replication level is always honoured.
            for name in self._feature_eligible(self.evaluator.ranked_by_speed()):
                if name not in perf:
                    perf.append(name)
                if len(perf) >= r:
                    break
        if len(perf) < r:
            raise PlacementPolicyError(
                f"only {len(perf)} providers satisfy {self.config.required_features}, "
                f"replication level {r} unreachable"
            )
        # The region-repair pool is every eligible provider, priority
        # ordered: performance-oriented first, then the remaining fleet.
        pool = list(perf)
        for name in self._feature_eligible(self.evaluator.ranked_by_speed()):
            if name not in pool:
                pool.append(name)
        chosen = self._enforce_regions(perf[:r], pool, r)
        # Preference-order only: a breaker-tripped provider keeps its slot
        # (its writes must land in the write log) but loses its priority.
        return self._prefer_usable(chosen)

    def erasure_targets(self) -> list[str]:
        """Cost-oriented providers for the large-file stripe.

        Ordering encodes the paper's read-cost optimisation ("by reading
        data from the cost-oriented cloud storage providers, HyRD's cloud
        cost due to the data out operations is also reduced"): *data*
        fragments (the first k slots, which normal reads fetch) go to the
        providers with the cheapest data-out price, leaving the expensive-
        egress provider holding parity that only degraded reads touch.
        """
        cost = self._feature_eligible(self.evaluator.cost_oriented())
        minimum = 3  # a stripe needs >= 2 data + 1 parity to beat replication
        if len(cost) < minimum:
            for name in self._feature_eligible(self.evaluator.ranked_by_speed()):
                if name not in cost:
                    cost.append(name)
                if len(cost) >= minimum:
                    break
        if len(cost) < minimum:
            raise PlacementPolicyError(
                f"only {len(cost)} providers satisfy {self.config.required_features}, "
                f"an erasure stripe needs >= {minimum}"
            )
        profiles = self.evaluator.profiles
        ordered = sorted(
            cost,
            key=lambda n: (
                profiles[n].egress_price,
                profiles[n].storage_price,
                profiles[n].latency_score,
            ),
        )
        return self._enforce_regions(ordered, ordered, len(ordered))

    def erasure_codec(self) -> ErasureCodec:
        """The large-file codec sized to the erasure target set."""
        if self._codec_cache is None:
            n = len(self.erasure_targets())
            k = self.config.erasure_k if self.config.erasure_k is not None else n - 1
            if not (0 < k < n):
                raise ValueError(
                    f"erasure_k={k} incompatible with {n} erasure providers"
                )
            if self.config.erasure_codec == "raid5":
                if k != n - 1:
                    raise ValueError("raid5 requires k = n - 1")
                self._codec_cache = get_codec("raid5", k=k)
            elif self.config.erasure_codec == "rs":
                self._codec_cache = get_codec("rs", k=k, m=n - k)
            elif self.config.erasure_codec == "fmsr":
                self._codec_cache = get_codec("fmsr", n=n, k=k)
            else:
                raise ValueError(
                    f"unsupported erasure codec {self.config.erasure_codec!r}"
                )
        return self._codec_cache

    # ------------------------------------------------------------ decisions
    def decide(self, klass: FileClass) -> DispatchDecision:
        """Placement for one object of the given class."""
        if klass in (FileClass.METADATA, FileClass.SMALL):
            decision = DispatchDecision(
                klass=klass,
                codec=None,
                providers=tuple(self.replica_targets()),
            )
        else:
            codec = self.erasure_codec()
            targets = self.erasure_targets()
            if len(targets) != codec.n:
                raise RuntimeError(
                    f"erasure targets ({len(targets)}) do not match codec n={codec.n}"
                )
            decision = DispatchDecision(
                klass=klass, codec=codec, providers=tuple(targets)
            )
        if self.metrics is not None:
            self.metrics.counter(
                "dispatch_decisions_total", redundancy=decision.redundancy
            ).inc()
        return decision

    def should_promote(self, entry: FileEntry) -> bool:
        """Figure 2: hot large files earn a copy on a fast provider."""
        if self.config.hot_file_threshold <= 0:
            return False
        return (
            entry.klass == FileClass.LARGE.value
            and entry.access_count >= self.config.hot_file_threshold
        )

    def promotion_target(self) -> str:
        """Fastest *usable* performance-oriented provider (hot-copy home)."""
        perf = self._prefer_usable(self.evaluator.performance_oriented())
        if perf:
            return perf[0]
        return self._prefer_usable(self.evaluator.ranked_by_speed())[0]
