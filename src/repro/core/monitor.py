"""Workload Monitor — classify incoming writes (paper §III-B).

*"The Workload Monitor module is responsible for classifying the incoming
write data into file metadata, large files and small files."*  The boundary
between small and large is the configurable ``size_threshold`` (1 MB by
default, justified by Figure 5's latency knee); metadata is whatever flows
through the metadata write-through path.

The monitor also keeps running workload statistics (class counts, bytes,
a coarse size histogram) that the threshold-sensitivity ablation reads.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.core.config import HyRDConfig

__all__ = ["FileClass", "WorkloadMonitor", "WorkloadStats"]


class FileClass(enum.Enum):
    """The three data classes HyRD distinguishes."""

    METADATA = "metadata"
    SMALL = "small"
    LARGE = "large"


#: Histogram bucket edges (bytes): sub-4K, 4K-64K, 64K-1M, 1M-16M, >=16M.
_HISTOGRAM_EDGES = (4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024)
_HISTOGRAM_LABELS = ("<4K", "4K-64K", "64K-1M", "1M-16M", ">=16M")


@dataclass
class WorkloadStats:
    """Aggregate view of everything the monitor has classified."""

    counts: Counter = field(default_factory=Counter)
    bytes_by_class: Counter = field(default_factory=Counter)
    histogram: Counter = field(default_factory=Counter)

    def fraction_small_bytes(self) -> float:
        total = sum(self.bytes_by_class.values())
        if total == 0:
            return 0.0
        return self.bytes_by_class[FileClass.SMALL] / total


class WorkloadMonitor:
    """Classifies writes and accumulates workload statistics.

    With a :class:`~repro.metrics.registry.MetricsRegistry` attached (HyRD
    passes the scheme registry), every observation is mirrored into the
    ``workload_writes_total{class}`` / ``workload_bytes_total{class}`` /
    ``workload_size_bucket_total{bucket}`` counters — which is what lets the
    time series (and the ``repro watch`` dashboard) show the small/large mix
    drifting over a trace replay instead of only a final tally.
    """

    def __init__(self, config: HyRDConfig, metrics=None) -> None:
        self.config = config
        self.stats = WorkloadStats()
        self.metrics = metrics

    def classify(self, size: int) -> FileClass:
        """Small/large decision for a file write of ``size`` bytes."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        return FileClass.SMALL if size < self.config.size_threshold else FileClass.LARGE

    def observe(self, size: int, klass: FileClass | None = None) -> FileClass:
        """Classify and record one incoming write."""
        klass = klass if klass is not None else self.classify(size)
        bucket = self._bucket(size)
        self.stats.counts[klass] += 1
        self.stats.bytes_by_class[klass] += size
        self.stats.histogram[bucket] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "workload_writes_total", **{"class": klass.value}
            ).inc()
            self.metrics.counter(
                "workload_bytes_total", **{"class": klass.value}
            ).inc(size)
            self.metrics.counter(
                "workload_size_bucket_total", bucket=bucket
            ).inc()
        return klass

    def observe_metadata(self, size: int) -> FileClass:
        """Record a metadata-group write (always the METADATA class)."""
        return self.observe(size, FileClass.METADATA)

    @staticmethod
    def _bucket(size: int) -> str:
        for edge, label in zip(_HISTOGRAM_EDGES, _HISTOGRAM_LABELS):
            if size < edge:
                return label
        return _HISTOGRAM_LABELS[-1]
