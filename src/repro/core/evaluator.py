"""Cost & Performance Evaluator (paper §III-B).

*"The Cost & Performance Evaluator module is responsible for evaluating the
cloud storage services from the perspectives of cost and performance ...
cloud storage providers are classified into two categories:
performance-oriented providers where the data access latency is lower and
cost-oriented providers where the storage capacity price is lower.  A
particular cloud storage provider can be in one category or both."*

Performance is *measured*: the evaluator issues real probe transactions
(a put and a get of a probe object) against every provider and scores each
by the observed round trip + transfer time.  Cost comes from the published
price plans (Table II).  With the Table II fleet the classification lands
exactly on the paper's bottom row: Amazon S3 cost, Azure performance,
Aliyun both, Rackspace cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.errors import CloudError, ProviderUnavailable
from repro.cloud.pricing import ProviderCategory
from repro.cloud.provider import SimulatedProvider
from repro.core.config import HyRDConfig
from repro.core.resilience import ProviderHealth, RetryPolicy
from repro.sim.rng import make_rng

__all__ = ["ProviderProfile", "CostPerformanceEvaluator"]

_PROBE_KEY = "__hyrd_probe__"
_PROBE_CONTAINER = "__hyrd_eval__"


@dataclass(frozen=True)
class ProviderProfile:
    """Measured + published characteristics of one provider."""

    name: str
    latency_score: float  # seconds for the probe round trip (lower = faster)
    storage_price: float  # $/GB-month from the plan
    egress_price: float  # $/GB data-out from the plan
    category: ProviderCategory

    @property
    def is_performance_oriented(self) -> bool:
        return bool(self.category & ProviderCategory.PERFORMANCE_ORIENTED)

    @property
    def is_cost_oriented(self) -> bool:
        return bool(self.category & ProviderCategory.COST_ORIENTED)


class CostPerformanceEvaluator:
    """Probes providers and classifies them for the Request Dispatcher."""

    def __init__(
        self,
        providers: list[SimulatedProvider],
        config: HyRDConfig,
        probe_size: int = 256 * 1024,
        probe_repeats: int = 3,
        retry_policy: RetryPolicy | None = None,
        metrics=None,
    ) -> None:
        if not providers:
            raise ValueError("evaluator needs at least one provider")
        if probe_size < 0 or probe_repeats < 1:
            raise ValueError("invalid probe parameters")
        self.providers = {p.name: p for p in providers}
        self.config = config
        self.probe_size = probe_size
        self.probe_repeats = probe_repeats
        #: probe retry discipline; defaults to the config's ``probe_retry``
        #: policy (6 immediate attempts — the historical behaviour, now a knob)
        self.retry_policy = (
            retry_policy if retry_policy is not None else config.resilience.probe_retry
        )
        self.rng = make_rng(config.seed, "evaluator")
        #: optional MetricsRegistry; probe rounds feed
        #: ``evaluator_probes_total`` / ``evaluator_probe_failures_total``
        self.metrics = metrics
        self.profiles: dict[str, ProviderProfile] = {}
        self._scores: dict[str, float] = {}
        self._excluded: set[str] = set()

    # ------------------------------------------------------------- probing
    def _probe_latency(self, provider: SimulatedProvider) -> float:
        """Measure one provider: mean elapsed time of put+get probe pairs.

        Probes are real metered transactions (the paper's evaluator
        "directly interacts with the individual cloud storage providers"),
        retried under :attr:`retry_policy`, and costed through the
        provider's *effective* latency — an active brownout is measured, not
        assumed away.  Unavailable providers score infinitely slow.
        """
        from repro.cloud.errors import TransientProviderError

        payload = bytes(self.probe_size)
        policy = self.retry_policy
        samples: list[float] = []
        for _ in range(self.probe_repeats):
            if self.metrics is not None:
                self.metrics.counter(
                    "evaluator_probes_total", provider=provider.name
                ).inc()
            backoff_spent = 0.0
            for attempt in range(policy.max_attempts):
                try:
                    provider.create(_PROBE_CONTAINER, exist_ok=True)
                    provider.put(_PROBE_CONTAINER, _PROBE_KEY, payload)
                    provider.get(_PROBE_CONTAINER, _PROBE_KEY)
                    break
                except TransientProviderError:
                    if attempt + 1 >= policy.max_attempts:
                        return self._probe_failed(provider.name)
                    wait = policy.backoff(attempt, self.rng)
                    if backoff_spent + wait > policy.deadline:
                        return self._probe_failed(provider.name)
                    backoff_spent += wait
                    continue
                except ProviderUnavailable:
                    return self._probe_failed(provider.name)
            else:  # pragma: no cover - loop exits via break or return
                return self._probe_failed(provider.name)
            lat = provider.effective_latency()
            up = lat.upload_spec(self.probe_size, self.rng)
            down = lat.download_spec(self.probe_size, self.rng)
            samples.append(
                up.start_delay
                + up.size_bytes / up.remote_cap
                + down.start_delay
                + down.size_bytes / down.remote_cap
            )
        try:
            provider.remove(_PROBE_CONTAINER, _PROBE_KEY)
        except CloudError:  # pragma: no cover - outage race / transient fault
            pass
        return float(np.mean(samples))

    def _probe_failed(self, name: str) -> float:
        """Count one abandoned probe round; the provider scores inf."""
        if self.metrics is not None:
            self.metrics.counter(
                "evaluator_probe_failures_total", provider=name
            ).inc()
        return float("inf")

    def _classify(self, scores: dict[str, float]) -> dict[str, ProviderProfile]:
        """Build profiles from latency scores + published prices."""
        # Performance-oriented: the fastest ceil(perf_fraction * n) providers.
        n = len(self.providers)
        perf_count = max(1, int(np.ceil(self.config.perf_fraction * n)))
        perf_names = set(
            sorted(scores, key=lambda name: scores[name])[:perf_count]
        )

        # Cost-oriented: storage price at or below the configured percentile.
        prices = {
            name: p.pricing.storage_gb_month for name, p in self.providers.items()
        }
        cutoff = float(
            np.percentile(list(prices.values()), self.config.cost_percentile)
        )
        cost_names = {name for name, price in prices.items() if price <= cutoff}
        if not cost_names:  # degenerate configs: cheapest provider qualifies
            cost_names = {min(prices, key=prices.get)}  # type: ignore[arg-type]

        profiles: dict[str, ProviderProfile] = {}
        for name, p in self.providers.items():
            category = ProviderCategory.NONE
            if name in perf_names:
                category |= ProviderCategory.PERFORMANCE_ORIENTED
            if name in cost_names:
                category |= ProviderCategory.COST_ORIENTED
            profiles[name] = ProviderProfile(
                name=name,
                latency_score=scores[name],
                storage_price=p.pricing.storage_gb_month,
                egress_price=p.pricing.data_out_gb,
                category=category,
            )
        return profiles

    def evaluate(self) -> dict[str, ProviderProfile]:
        """(Re-)measure every provider and classify; returns the profiles."""
        scores = {
            name: self._probe_latency(p) for name, p in self.providers.items()
        }
        finite = [s for s in scores.values() if np.isfinite(s)]
        if not finite:
            raise RuntimeError("every provider is unavailable; cannot evaluate")
        self._scores = scores
        self.profiles = self._classify(scores)
        return self.profiles

    def rerank(
        self, health: dict[str, ProviderHealth]
    ) -> dict[str, ProviderProfile]:
        """Re-classify using health-penalised scores, without re-probing.

        Each provider's measured probe score is scaled by its health
        tracker's penalty (slowdown × error rate), then the usual
        classification reruns.  A browned-out provider whose clean probe
        made it performance-oriented loses that slot to the next-fastest
        healthy provider — the evaluator's answer to degradation that is
        too soft to trip a breaker.
        """
        self._require_profiles()
        weight = self.config.resilience.health_error_weight
        scores = {
            name: raw
            * (health[name].penalty(weight) if name in health else 1.0)
            for name, raw in self._scores.items()
        }
        self.profiles = self._classify(scores)
        return self.profiles

    # ----------------------------------------------------------- exclusion
    def exclude(self, name: str) -> None:
        """Remove a provider from future placement decisions.

        Used when decommissioning a vendor (the §II-A mobility story): the
        provider stays registered — existing fragments remain readable while
        migration runs — but the dispatcher stops choosing it.
        """
        if name not in self.providers:
            raise KeyError(f"unknown provider {name!r}")
        if len(self.providers) - len(self._excluded) <= 1:
            raise ValueError("cannot exclude the last usable provider")
        self._excluded.add(name)

    def readmit(self, name: str) -> None:
        """Allow a previously excluded provider to receive placements again."""
        self._excluded.discard(name)

    @property
    def excluded(self) -> frozenset[str]:
        return frozenset(self._excluded)

    # -------------------------------------------------------------- queries
    def _require_profiles(self) -> None:
        if not self.profiles:
            self.evaluate()

    def _usable(self, name: str) -> bool:
        return name not in self._excluded

    def performance_oriented(self) -> list[str]:
        """Performance-oriented provider names, fastest first."""
        self._require_profiles()
        return sorted(
            (
                p.name
                for p in self.profiles.values()
                if p.is_performance_oriented and self._usable(p.name)
            ),
            key=lambda n: self.profiles[n].latency_score,
        )

    def cost_oriented(self) -> list[str]:
        """Cost-oriented provider names, cheapest storage first."""
        self._require_profiles()
        return sorted(
            (
                p.name
                for p in self.profiles.values()
                if p.is_cost_oriented and self._usable(p.name)
            ),
            key=lambda n: (self.profiles[n].storage_price, self.profiles[n].latency_score),
        )

    def ranked_by_speed(self) -> list[str]:
        """All usable providers, fastest measured first."""
        self._require_profiles()
        return sorted(
            (n for n in self.profiles if self._usable(n)),
            key=lambda n: self.profiles[n].latency_score,
        )
