"""Load-aware coded-read scheduling across the service capacity region.

HyRD's read path (PAPER.md §III-C) always fetches the same k-of-n fragment
subset — systematic fragments first — so one hot or saturated provider
gates every large read.  Aktaş et al. (arXiv:1710.03376) show a coded
store serves strictly more read traffic when requests are split
fractionally across systematic *and* parity fragments according to
per-server load: the set of sustainable arrival-rate vectors (the *service
capacity region*) grows when the scheduler is free to trade a cheap decode
for a shorter queue.

:class:`FragmentScheduler` is that policy, packaged on the same
zero-cost-off contract as the load observatory and the maintenance plane:
``None`` by default on every scheme, attached explicitly via
``scheme.attach_scheduler``, and byte-identical to the static ordering
when detached.  Three decisions per striped read:

- **Subset selection** — every usable placement is scored from
  :class:`~repro.core.resilience.ProviderHealth` (EWMA latency penalty,
  load-curve slope) and the live
  :class:`~repro.obs.attribution.ProviderLoadObservatory` queue estimate
  (Little's-law depth x EWMA service time); parity fragments carry a
  multiplicative decode-cost penalty.  The k cheapest win.
- **Fractional split** — repeated reads of the same hot path rotate across
  every subset whose score is within ``rotation_margin`` of the k-th best,
  spreading load over the capacity region instead of hammering one fixed
  set.  The rotation is a deterministic per-key counter: no RNG, so the
  same health snapshots always produce the same subset sequence.
- **Capacity-aware hedging** — a parity-fragment backup fires *only* when
  the gating (slowest-scored) chosen provider's estimated queue wait
  exceeds the backup's wire-plus-decode cost; an idle fleet never hedges.

The scheduler itself never touches the wire, the clock, or the RNG — it
ranks; the scheme engine executes.  See ``docs/scheduling.md`` for the
scoring formula and the detached==static byte-identity guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["SchedulerConfig", "HedgePlan", "ReadDecision", "FragmentScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Every scheduling knob in one frozen bundle.

    Parameters
    ----------
    parity_penalty:
        Multiplicative score handicap for parity fragments of a systematic
        codec: picking one forces a real matrix decode where a systematic
        join would do.  1.0 makes parity and data fragments equals (the
        right setting for non-systematic codes; applied automatically when
        the caller flags the codec non-systematic).
    rotation_margin:
        Fractional score slack for the split policy: any usable fragment
        scoring within ``(1 + margin)`` of the k-th best joins the rotation
        pool.  0 disables rotation (always the k cheapest).
    queue_weight:
        Weight of the observatory's Little's-law queue wait (depth x EWMA
        service seconds) in the score.
    slope_weight:
        Weight of the health tracker's load-curve congestion term
        (:meth:`~repro.core.resilience.ProviderHealth.queue_wait`).
    half_open_penalty:
        Multiplicative handicap for a provider whose breaker is probing
        (half-open) — usable, but not worth betting the critical path on.
    hedge_enabled:
        Master switch for capacity-aware parity hedging.
    hedge_margin:
        The backup fires only when the gating provider's estimated queue
        wait exceeds ``hedge_margin x`` the backup fragment's
        wire-plus-decode cost.  Higher is more conservative.
    hedge_winnable:
        The backup must also have a fighting chance: its full load-aware
        score may exceed the gating fragment's by at most this factor,
        otherwise the estimates already say the duplicate loses the race
        and the wire time would be pure waste.
    error_weight:
        Error-rate weight for the health penalty; ``None`` adopts the
        scheme's ``resilience.health_error_weight``.
    """

    parity_penalty: float = 1.25
    rotation_margin: float = 0.25
    queue_weight: float = 1.0
    slope_weight: float = 1.0
    half_open_penalty: float = 4.0
    hedge_enabled: bool = True
    hedge_margin: float = 1.0
    hedge_winnable: float = 1.5
    error_weight: float | None = None

    def __post_init__(self) -> None:
        if self.parity_penalty < 1.0:
            raise ValueError(
                f"parity_penalty must be >= 1, got {self.parity_penalty}"
            )
        if self.rotation_margin < 0.0:
            raise ValueError(
                f"rotation_margin must be >= 0, got {self.rotation_margin}"
            )
        if self.queue_weight < 0.0 or self.slope_weight < 0.0:
            raise ValueError("queue_weight and slope_weight must be >= 0")
        if self.half_open_penalty < 1.0:
            raise ValueError(
                f"half_open_penalty must be >= 1, got {self.half_open_penalty}"
            )
        if self.hedge_margin <= 0.0:
            raise ValueError(f"hedge_margin must be > 0, got {self.hedge_margin}")
        if self.hedge_winnable < 1.0:
            raise ValueError(
                f"hedge_winnable must be >= 1, got {self.hedge_winnable}"
            )
        if self.error_weight is not None and self.error_weight < 0.0:
            raise ValueError(f"error_weight must be >= 0, got {self.error_weight}")


@dataclass(frozen=True)
class HedgePlan:
    """One capacity-aware hedge: duplicate the gating fragment's work."""

    #: fragment index the backup request fetches (usually parity)
    backup: int
    #: chosen fragment index whose provider gates the read
    gating: int
    #: estimated queue wait behind the gating provider, seconds
    wait: float
    #: estimated wire + decode cost of the backup fragment, seconds
    cost: float


@dataclass(frozen=True)
class ReadDecision:
    """One scheduled striped read, fully determined by the inputs.

    ``order`` is the complete usable ranking (chosen subset first, then
    fallbacks for top-up); ``scores`` records every candidate's estimated
    seconds for trace events and tests.
    """

    key: str
    chosen: tuple[int, ...]
    order: tuple[int, ...]
    scores: tuple[tuple[int, float], ...] = field(default=())
    parity_picks: int = 0
    rotated: bool = False
    hedge: HedgePlan | None = None


class FragmentScheduler:
    """Scores k-of-n fragment subsets under current load; the engine obeys.

    Bound to one scheme via ``scheme.attach_scheduler`` (which calls
    :meth:`bind`); reads the scheme's latency model, health trackers,
    breakers, and — when one is attached — its load observatory.  Pure
    decision-making: no clock movement, no RNG draws, no wire traffic.
    """

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config if config is not None else SchedulerConfig()
        self._scheme = None
        #: deterministic per-key read counters driving the rotation policy
        self._reads: dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle
    def bind(self, scheme) -> None:
        """Called by ``attach_scheduler``; gives the scorer its inputs."""
        self._scheme = scheme

    def unbind(self) -> None:
        """Called by ``detach_scheduler``; decisions stop, counters remain."""
        self._scheme = None

    @property
    def bound(self) -> bool:
        return self._scheme is not None

    def reads_of(self, key: str) -> int:
        """Rotation counter for one key (how many scheduled reads so far)."""
        return self._reads.get(key, 0)

    # --------------------------------------------------------------- scoring
    def queue_wait(self, name: str) -> float:
        """Estimated seconds a new request queues behind ``name``'s backlog.

        Two congestion signals, each zero until its feed has samples:

        - the observatory's Little's-law depth x its EWMA per-request
          service time (``queue_weight``);
        - the health tracker's latency-vs-load curve slope priced at that
          depth (``slope_weight``) — the marginal congestion the curve has
          actually observed at higher concurrency.
        """
        scheme = self._scheme
        obs = scheme.observatory
        if obs is None:
            return 0.0
        depth = obs.queue_depth(name)
        if depth <= 0.0:
            return 0.0
        rate = obs.service_rate(name)
        wait = self.config.queue_weight * (depth / rate if rate > 0.0 else 0.0)
        health = scheme.health.get(name)
        if health is not None:
            wait += self.config.slope_weight * health.queue_wait(depth)
        return wait

    def score_provider(self, name: str, nbytes: int) -> float:
        """Expected seconds to serve ``nbytes`` from ``name`` under load.

        ``wire x health-penalty + queue wait``, with an extra handicap for
        a half-open breaker and ``inf`` for an open one.
        """
        scheme = self._scheme
        cfg = self.config
        est = scheme._estimate_latency(name, nbytes, "down")
        health = scheme.health.get(name)
        if health is not None:
            weight = (
                cfg.error_weight
                if cfg.error_weight is not None
                else scheme.resilience.health_error_weight
            )
            est *= health.penalty(weight)
        breaker = scheme._breakers.get(name)
        if breaker is not None:
            if not breaker.would_allow(scheme.clock.now):
                return math.inf
            if breaker.state == "half_open":
                est *= cfg.half_open_penalty
        return est + self.queue_wait(name)

    def estimate_stripe(self, by_index, size: int, codec) -> float:
        """Gating (max) score of the best k-subset — the stripe-read
        estimate HyRD's hot-copy-vs-stripe choice compares against."""
        frag = codec.fragment_size(size)
        scores = sorted(
            self.score_provider(prov, frag) for prov in by_index.values()
        )
        if len(scores) < codec.k:
            return math.inf
        return scores[codec.k - 1]

    # -------------------------------------------------------------- decision
    def decide(
        self,
        key: str,
        by_index,
        size: int,
        codec,
        usable,
        systematic: bool = True,
    ) -> ReadDecision:
        """Schedule one striped read of ``key``.

        ``by_index`` maps fragment index -> provider name; ``usable`` is
        the engine's availability/staleness predicate.  Deterministic in
        (health snapshots, observatory state, per-key counter) — same
        inputs, same subset, byte-identical payloads.
        """
        cfg = self.config
        frag = codec.fragment_size(size)
        scores: dict[int, float] = {}
        for idx in sorted(by_index):
            if not usable(idx):
                continue
            s = self.score_provider(by_index[idx], frag)
            if systematic and idx >= codec.k:
                s *= cfg.parity_penalty
            scores[idx] = s
        ranked = sorted(scores, key=lambda i: (scores[i], i))
        count = self._reads.get(key, 0)
        self._reads[key] = count + 1
        k = codec.k
        if len(ranked) < k:
            # Too few usable placements; the engine raises DataUnavailable.
            return ReadDecision(
                key=key,
                chosen=tuple(ranked),
                order=tuple(ranked),
                scores=tuple((i, scores[i]) for i in ranked),
            )

        # Fractional split: rotate across every subset whose members score
        # within the margin of the k-th best.  A saturated provider prices
        # itself out of the pool; the healthy remainder shares the load.
        chosen = list(ranked[:k])
        rotated = False
        kth = scores[ranked[k - 1]]
        if cfg.rotation_margin > 0.0 and math.isfinite(kth):
            pool = [
                i for i in ranked if scores[i] <= kth * (1.0 + cfg.rotation_margin)
            ]
            if len(pool) > k:
                shift = count % len(pool)
                if shift:
                    window = pool[shift:] + pool[:shift]
                    chosen = sorted(window[:k], key=ranked.index)
                    rotated = chosen != list(ranked[:k])

        order = chosen + [i for i in ranked if i not in chosen]
        parity_picks = (
            sum(1 for i in chosen if i >= k) if systematic else 0
        )

        # Capacity-aware hedge: duplicate the gating fragment's work only
        # when (a) the estimated queue wait behind its provider exceeds the
        # backup's raw wire+decode cost — the load made waiting the worse
        # deal — and (b) the backup's *full* load-aware score says the race
        # is winnable.  An idle fleet fails (a); a browned-out backup fails
        # (b); either way no duplicate request fires.
        hedge = None
        if cfg.hedge_enabled and len(order) > k:
            gating = max(chosen, key=lambda i: (scores[i], i))
            wait = self.queue_wait(by_index[gating])
            backup = order[k]
            cost = self._scheme._estimate_latency(by_index[backup], frag, "down")
            if systematic and backup >= k:
                cost *= cfg.parity_penalty
            if (
                math.isfinite(wait)
                and wait > cfg.hedge_margin * cost
                and scores[backup] <= cfg.hedge_winnable * scores[gating]
            ):
                hedge = HedgePlan(
                    backup=backup, gating=gating, wait=wait, cost=cost
                )

        return ReadDecision(
            key=key,
            chosen=tuple(chosen),
            order=tuple(order),
            scores=tuple((i, scores[i]) for i in ranked),
            parity_picks=parity_picks,
            rotated=rotated,
            hedge=hedge,
        )
