"""HyRD's client modules: the paper's three functional blocks plus recovery.

- :mod:`repro.core.config`     -- :class:`HyRDConfig` (every design knob)
- :mod:`repro.core.monitor`    -- Workload Monitor (classify writes)
- :mod:`repro.core.evaluator`  -- Cost & Performance Evaluator
- :mod:`repro.core.dispatcher` -- Request Dispatcher (placement decisions)
- :mod:`repro.core.recovery`   -- write logs + consistency update
- :mod:`repro.core.hyrd`       -- :class:`HyRDClient`, the public facade

Heavyweight members are re-exported lazily: the scheme framework imports
:mod:`repro.core.recovery`, and an eager ``from .hyrd import HyRDClient``
here would close an import cycle back through :mod:`repro.schemes.base`.
"""

from typing import Any

from repro.core.config import HyRDConfig
from repro.core.recovery import LoggedWrite, WriteLog

__all__ = [
    "CostPerformanceEvaluator",
    "DispatchDecision",
    "FileClass",
    "HyRDClient",
    "HyRDConfig",
    "LoggedWrite",
    "ProviderProfile",
    "RequestDispatcher",
    "WorkloadMonitor",
    "WriteLog",
]

_LAZY = {
    "CostPerformanceEvaluator": ("repro.core.evaluator", "CostPerformanceEvaluator"),
    "ProviderProfile": ("repro.core.evaluator", "ProviderProfile"),
    "DispatchDecision": ("repro.core.dispatcher", "DispatchDecision"),
    "RequestDispatcher": ("repro.core.dispatcher", "RequestDispatcher"),
    "FileClass": ("repro.core.monitor", "FileClass"),
    "WorkloadMonitor": ("repro.core.monitor", "WorkloadMonitor"),
    "HyRDClient": ("repro.core.hyrd", "HyRDClient"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
