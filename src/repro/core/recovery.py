"""Outage recovery: write logs and the consistency update.

Paper §III-C, *Recovery from service outage*: an outage is a temporary
unavailability, not data loss.  While a provider is out:

1. reads take the degraded path (replica fallback / erasure reconstruction —
   implemented per scheme);
2. **writes and updates are logged** — the mutations the offline provider
   missed are recorded client-side;
3. when the provider returns, the log is replayed as a *consistency update*;
   recovery completes when the log drains.

The log is *last-wins per key*: replaying only the final state of each object
is sufficient (and is what keeps consistency updates cheap after long
outages with many overwrites).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["LoggedWrite", "WriteLog"]


@dataclass(frozen=True)
class LoggedWrite:
    """One pending mutation for an offline provider."""

    kind: str  # "put" | "remove" | "create"
    container: str
    key: str  # "" for container-level mutations (create)
    data: bytes | None  # payload for puts, None otherwise
    logged_at: float

    def __post_init__(self) -> None:
        if self.kind not in ("put", "remove", "create"):
            raise ValueError(
                f"kind must be 'put', 'remove' or 'create', got {self.kind!r}"
            )
        if self.kind == "put" and self.data is None:
            raise ValueError("logged put requires data")
        if self.kind != "put" and self.data is not None:
            raise ValueError(f"logged {self.kind} must not carry data")
        if self.kind == "create" and self.key:
            raise ValueError("logged create is container-level (key must be empty)")


class WriteLog:
    """Pending mutations for one provider, last-wins per (container, key).

    Payload memory is accounted incrementally: :meth:`pending_bytes` is the
    O(1) logical total of retained put payloads.  A ``memory_limit_bytes``
    bounds the *in-memory* share — once retained payloads exceed it, the
    oldest pending puts are spilled (modelled as moving the payload to
    client-local disk: the entry stays replayable, but its bytes count
    against :meth:`spilled_bytes` instead of :meth:`memory_bytes`).  The
    default (``None``) never spills, matching the historical behaviour.
    """

    def __init__(self, memory_limit_bytes: int | None = None) -> None:
        if memory_limit_bytes is not None and memory_limit_bytes < 0:
            raise ValueError(
                f"memory_limit_bytes must be >= 0, got {memory_limit_bytes}"
            )
        self._entries: OrderedDict[tuple[str, str], LoggedWrite] = OrderedDict()
        self.memory_limit_bytes = memory_limit_bytes
        self._pending_bytes = 0
        self._spilled: set[tuple[str, str]] = set()
        self._spilled_bytes = 0
        #: spill actions taken (one per payload moved to disk); monotone
        self.spill_events = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def _drop_accounting(self, k: tuple[str, str]) -> None:
        old = self._entries.pop(k, None)
        if old is not None and old.data is not None:
            self._pending_bytes -= len(old.data)
            if k in self._spilled:
                self._spilled.discard(k)
                self._spilled_bytes -= len(old.data)

    def _maybe_spill(self) -> None:
        if self.memory_limit_bytes is None:
            return
        if self.memory_bytes() <= self.memory_limit_bytes:
            return
        # Oldest-first: the entries most likely to wait longest for replay
        # are the ones worth paying a disk round trip for.
        for k, e in self._entries.items():
            if self.memory_bytes() <= self.memory_limit_bytes:
                break
            if e.data is not None and k not in self._spilled:
                self._spilled.add(k)
                self._spilled_bytes += len(e.data)
                self.spill_events += 1

    def log_put(self, container: str, key: str, data: bytes, now: float) -> None:
        """Record that (container, key) should hold ``data`` after recovery."""
        k = (container, key)
        self._drop_accounting(k)  # move-to-end on overwrite keeps replay ordered
        self._entries[k] = LoggedWrite("put", container, key, bytes(data), now)
        self._pending_bytes += len(data)
        self._maybe_spill()

    def log_remove(self, container: str, key: str, now: float) -> None:
        """Record that (container, key) should be absent after recovery."""
        k = (container, key)
        self._drop_accounting(k)
        self._entries[k] = LoggedWrite("remove", container, key, None, now)

    def log_create(self, container: str, now: float) -> None:
        """Record that ``container`` must exist after recovery.

        Used when container initialisation exhausts its retries: without
        this record the failure would be silent and the provider would never
        be healed (its object log can stay empty forever).
        """
        k = (container, "")
        self._drop_accounting(k)
        self._entries[k] = LoggedWrite("create", container, "", None, now)

    def discard(self, container: str, key: str) -> None:
        """Drop a pending entry (e.g. the object was re-placed elsewhere)."""
        self._drop_accounting((container, key))

    def has_pending(self, container: str, key: str) -> bool:
        """True when a logged mutation for (container, key) awaits replay.

        Scrub-driven repair consults this before rewriting a key: replay
        draining and a concurrent repair of the same key would otherwise race
        to double-write (the repair could resurrect a state the log is about
        to overwrite, or vice versa).  Keys with pending logged writes belong
        to the consistency update, not to the repair queue.
        """
        return (container, key) in self._entries

    def drain(self) -> list[LoggedWrite]:
        """Remove and return all pending writes in log order.

        Spilled payloads are reloaded transparently — the entries returned
        always carry their data, whatever tier it waited on.
        """
        entries = list(self._entries.values())
        self._entries.clear()
        self._pending_bytes = 0
        self._spilled.clear()
        self._spilled_bytes = 0
        return entries

    def peek(self) -> list[LoggedWrite]:
        """Pending writes without draining (for inspection/tests)."""
        return list(self._entries.values())

    def pending_bytes(self) -> int:
        """Payload bytes awaiting replay (the consistency-update upload
        cost), across both memory and spill tiers.  O(1)."""
        return self._pending_bytes

    def memory_bytes(self) -> int:
        """Retained payload bytes currently held in client memory.  O(1)."""
        return self._pending_bytes - self._spilled_bytes

    def spilled_bytes(self) -> int:
        """Payload bytes parked on client-local disk by the spill policy."""
        return self._spilled_bytes
