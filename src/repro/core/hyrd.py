"""The HyRD client — the paper's contribution, assembled.

:class:`HyRDClient` is a :class:`~repro.schemes.base.Scheme` whose placement
policy is the hybrid of the paper:

- the **Workload Monitor** classifies each write (metadata / small / large);
- the **Request Dispatcher** replicates metadata and small files
  (``replication_level`` copies, default 2) on the fastest
  performance-oriented providers, and RAID5-stripes large files across the
  cost-oriented providers;
- the **Cost & Performance Evaluator** supplies the provider classification
  from measured latency probes and Table II price plans;
- outages are handled by the shared recovery machinery: degraded reads fall
  back to surviving replicas (small) or parity reconstruction (large), missed
  writes are logged and replayed as a consistency update on return;
- frequently-read large files are *promoted* — an extra full copy lands on
  the fastest performance provider (Figure 2) via a background upload, and
  subsequent reads pick whichever path the latency estimate favours.
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.core.config import HyRDConfig
from repro.core.dispatcher import RequestDispatcher
from repro.core.evaluator import CostPerformanceEvaluator
from repro.core.monitor import FileClass, WorkloadMonitor
from repro.erasure.codec import ErasureCodec, get_codec
from repro.fs.namespace import FileEntry
from repro.metrics.collector import OpReport
from repro.schemes.base import CloudOp, Scheme
from repro.sim.clock import SimClock

__all__ = ["HyRDClient"]


class HyRDClient(Scheme):
    """Hybrid redundant data distribution over a Cloud-of-Clouds."""

    name = "hyrd"

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        config: HyRDConfig | None = None,
        tracer=None,
    ) -> None:
        self.config = config if config is not None else HyRDConfig()
        super().__init__(
            providers,
            clock,
            link,
            seed=self.config.seed,
            metadata_cache_capacity=self.config.metadata_cache_capacity,
            resilience=self.config.resilience,
            tracer=tracer,
        )
        self.monitor = WorkloadMonitor(self.config, metrics=self.registry)
        self.evaluator = CostPerformanceEvaluator(
            providers, self.config, metrics=self.registry
        )
        self.evaluator.evaluate()
        self.dispatcher = RequestDispatcher(
            self.config, self.evaluator, metrics=self.registry
        )
        # Breaker state feeds placement preference: tripped providers keep
        # their slots but lose priority (hot copies land elsewhere).
        self.dispatcher.set_usable_guard(self._provider_usable)
        #: path -> (provider, version) of promoted hot copies (Figure 2)
        self._hot: dict[str, tuple[str, int]] = {}
        self._hot_digests: dict[str, str] = {}
        self._pending_promotion: tuple[str, bytes] | None = None
        self._codec_instances: dict[tuple[str, tuple[tuple[str, int], ...]], ErasureCodec] = {}

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        """Codec the entry was *written* with.

        Reconstructed from the entry's recorded parameters, not from the
        dispatcher's current choice: after a re-evaluation or a provider
        decommission the dispatcher may stripe differently, but existing
        objects must keep decoding with their original geometry.
        """
        if entry.codec == "replication":
            return None
        key = (entry.codec, entry.codec_params)
        codec = self._codec_instances.get(key)
        if codec is None:
            params = dict(entry.codec_params)
            if entry.codec == "raid5":
                codec = get_codec("raid5", k=params["k"])
            elif entry.codec == "rs":
                codec = get_codec("rs", k=params["k"], m=params["m"])
            elif entry.codec == "fmsr":
                codec = get_codec("fmsr", n=params["k"] + params["m"], k=params["k"])
            else:
                raise ValueError(f"unknown codec {entry.codec!r} on {entry.path!r}")
            self._codec_instances[key] = codec
        return codec

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        # Zero-duration marker (the sim charges no time for local placement
        # logic): lets the attribution analyzer pin the dispatcher's
        # classify/decide step inside the op's queueing lead-in.
        with self.tracer.span("dispatch.decide", size=len(data)):
            klass = self.monitor.observe(len(data))
            decision = self.dispatcher.decide(klass)
        version = prev.version + 1 if prev else 1
        if decision.codec is None:
            placements, digests = self._write_replicated(
                path, data, list(decision.providers), version
            )
            codec_name = "replication"
            codec_params: tuple[tuple[str, int], ...] = (
                ("r", self.config.replication_level),
            )
        else:
            placements, digests = self._write_striped(
                path, data, decision.codec, list(decision.providers), version
            )
            codec_name = self.config.erasure_codec
            codec_params = (("k", decision.codec.k), ("m", decision.codec.n - decision.codec.k))
        self._drop_hot_copy(path)
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec=codec_name,
            codec_params=codec_params,
            placements=tuple(placements),
            klass=klass.value,
            created=prev.created if prev else now,
            modified=now,
            access_count=prev.access_count if prev else 0,
            digests=digests,
        )

    # ----------------------------------------------------------------- read
    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        if entry.codec == "replication":
            return self._read_replicated(
                entry.path,
                entry.size,
                list(entry.providers),
                entry.version,
                digest=entry.digests[0] if entry.digests else None,
            )
        data, degraded = self._read_large(entry)
        # Promotion check uses the access count *including* this read.
        promoted_count = entry.access_count + 1
        if (
            not degraded
            and entry.path not in self._hot
            and self.config.hot_file_threshold > 0
            and entry.klass == FileClass.LARGE.value
            and promoted_count >= self.config.hot_file_threshold
        ):
            # Deferred: uploaded outside this read's latency accounting.
            self._pending_promotion = (entry.path, data)
        return data, degraded

    def _read_large(self, entry: FileEntry) -> tuple[bytes, bool]:
        """Stripe fetch vs hot-copy fetch, whichever the estimate favours."""
        codec = self._codec_for(entry)
        assert codec is not None
        hot = self._hot.get(entry.path)
        if hot is not None:
            hot_provider, hot_version = hot
            if (
                hot_version == entry.version
                and self.provider(hot_provider).is_available()
                and not self._is_stale(
                    hot_provider, self.container, self._hot_key(entry.path, entry.version)
                )
            ):
                if self.scheduler is not None:
                    # Load-aware arm of the hot-copy-vs-stripe choice: both
                    # estimates price queueing and health, and the stripe
                    # side is the scheduler's best k-subset (parity
                    # included), not the fixed systematic set.
                    est_hot = self.scheduler.score_provider(
                        hot_provider, entry.size
                    )
                    est_stripe = self.scheduler.estimate_stripe(
                        {idx: prov for prov, idx in entry.placements},
                        entry.size,
                        codec,
                    )
                else:
                    est_hot = self._estimate_latency(
                        hot_provider, entry.size, "down"
                    )
                    frag = codec.fragment_size(entry.size)
                    est_stripe = max(
                        self._estimate_latency(prov, frag, "down")
                        for prov, idx in entry.placements
                        if idx < codec.k
                    )
                if est_hot <= est_stripe:
                    phase = self._run_phase(
                        [
                            CloudOp(
                                hot_provider,
                                "get",
                                self.container,
                                self._hot_key(entry.path, entry.version),
                            )
                        ]
                    )
                    outcome = phase.outcomes[0]
                    if outcome.ok and outcome.data is not None:
                        expected = self._hot_digests.get(entry.path)
                        if expected is None or self._verify_digest(
                            self._hot_key(entry.path, entry.version),
                            outcome.data,
                            expected,
                        ):
                            return outcome.data, False
                    # Hot copy raced an outage or was corrupted: fall
                    # through to the verified stripe.
        return self._read_striped(
            entry.path,
            entry.size,
            codec,
            list(entry.placements),
            entry.version,
            digests=entry.digests or None,
        )

    # --------------------------------------------------------------- update
    def _update_file(
        self, entry: FileEntry, offset: int, patch: bytes, new_content: bytes
    ) -> FileEntry:
        if entry.codec != "replication" and len(new_content) == entry.size:
            codec = self._codec_for(entry)
            assert codec is not None
            self._drop_hot_copy(entry.path)
            return self._rmw_striped(entry, offset, patch, new_content, codec)
        # Small files — and any size-changing write — are re-put wholesale;
        # _put_file re-classifies, so a small file growing past the threshold
        # migrates to the erasure stripe automatically.
        return self._put_file(entry.path, new_content, entry)

    # --------------------------------------------------------------- remove
    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path,
            list(entry.placements),
            entry.version,
            replicated=entry.codec == "replication",
        )
        self._drop_hot_copy(entry.path)

    # ------------------------------------------------------------- metadata
    def _meta_write_targets(self) -> list[str]:
        return self.dispatcher.replica_targets()

    def _persist_metadata(self, directory: str) -> None:
        super()._persist_metadata(directory)
        self.monitor.observe_metadata(self._meta_sizes.get(directory, 0))

    # ------------------------------------------------------------ promotion
    def _hot_key(self, path: str, version: int) -> str:
        return f"{path}#hot.v{version}"

    def _drop_hot_copy(self, path: str) -> None:
        hot = self._hot.pop(path, None)
        self._hot_digests.pop(path, None)
        if hot is None:
            return
        provider, version = hot
        if self.provider(provider).store.has(
            self.container, self._hot_key(path, version)
        ):
            self._run_phase(
                [CloudOp(provider, "remove", self.container, self._hot_key(path, version))]
            )
        else:
            self._write_logs[provider].discard(self.container, self._hot_key(path, version))

    def get(self, path: str):  # type: ignore[override]
        data, report = super().get(path)
        pending = self._pending_promotion
        self._pending_promotion = None
        if pending is not None:
            self._promote(*pending)
        return data, report

    def _promote(self, path: str, data: bytes) -> OpReport:
        """Background upload of a hot copy to the fastest performance provider."""
        target = self.dispatcher.promotion_target()
        entry = self.namespace.get(path)
        self._begin_op()
        self._run_phase(
            [
                CloudOp(
                    target,
                    "put",
                    self.container,
                    self._hot_key(path, entry.version),
                    data,
                )
            ]
        )
        report = self._end_op("promote", path)
        self.collector.add(report)
        self._hot[path] = (target, entry.version)
        self._hot_digests[path] = self._record_digest(
            self._hot_key(path, entry.version), data
        )
        return report

    # --------------------------------------------------------------- intro
    def hot_copies(self) -> dict[str, tuple[str, int]]:
        """Currently promoted large files: path -> (provider, version)."""
        return dict(self._hot)

    def _extra_expected_keys(self) -> set[str]:
        # Promoted hot copies are scheme-private keys no namespace placement
        # accounts for; shield the *current* ones from the orphan sweep.
        # (A restarted client forgets its promotions, so a predecessor's hot
        # copies are swept — they are regenerable cache, not redundancy.)
        return {
            self._hot_key(path, version)
            for path, (_provider, version) in self._hot.items()
        }

    # ------------------------------------------- adaptation & vendor mobility
    def reevaluate(self) -> dict[str, "object"]:
        """Re-probe every provider and refresh the classification.

        §VI's second future-work direction: provider characteristics drift
        (price changes, sustained congestion), so the Evaluator's snapshot
        goes stale.  Existing placements are untouched — use
        :meth:`misplaced_paths` / :meth:`migrate` to realign them lazily.
        """
        profiles = self.evaluator.evaluate()
        self.dispatcher.refresh()
        self._notify_policy_change()
        return profiles

    def refresh_health_ranking(self) -> dict[str, "object"]:
        """Re-classify providers from accumulated health, without re-probing.

        The cheap sibling of :meth:`reevaluate`: the scheme engine's
        :class:`~repro.core.resilience.ProviderHealth` trackers already hold
        EWMA error rates and observed slowdowns from live traffic, so the
        Evaluator can demote a browned-out performance provider (and restore
        it once its health recovers) with zero probe transactions.
        """
        profiles = self.evaluator.rerank(self.health)
        self.dispatcher.refresh()
        self._notify_policy_change()
        return profiles

    def _notify_policy_change(self) -> None:
        """Hand newly misplaced objects to the live migration engine.

        Only when a maintenance plane is attached: detached, policy changes
        keep their pre-maintenance behaviour (placements realign lazily via
        explicit :meth:`migrate` calls).
        """
        if self.maintenance is not None:
            self.maintenance.migration.sync_policy()

    def is_misplaced(self, path: str) -> bool:
        """Would the dispatcher place this file differently today?"""
        entry = self.namespace.get(path)
        klass = self.monitor.classify(entry.size)
        decision = self.dispatcher.decide(klass)
        if decision.codec is None:
            return entry.codec != "replication" or set(entry.providers) != set(
                decision.providers
            )
        return entry.codec == "replication" or tuple(entry.providers) != tuple(
            decision.providers
        )

    def misplaced_paths(self) -> list[str]:
        """Every file whose placement no longer matches current policy."""
        return [p for p in self.namespace.paths() if self.is_misplaced(p)]

    def migrate(self, path: str) -> OpReport:
        """Re-place one file according to the current dispatch decision.

        Reads the content through the normal (possibly degraded) path and
        re-puts it; the old version's objects are garbage-collected.  Cost
        is real: the reads and writes are charged like any other operation.
        (Alias for the scheme-generic :meth:`~repro.schemes.base.Scheme.migrate_object`.)
        """
        return self.migrate_object(path)

    def decommission(self, provider: str) -> list[OpReport]:
        """Leave a vendor: exclude it from placement and evacuate its data.

        The §II-A mobility argument, executable: every file with a fragment
        or replica on ``provider`` is migrated to a placement that avoids
        it.  The provider stays registered throughout, so its fragments can
        serve as migration *sources*; afterwards nothing references it and
        the account can be closed.  Returns the per-file migration reports.

        With a maintenance plane attached the evacuation goes *live*
        instead: affected paths are queued on the plane's migration engine,
        which drains them incrementally under the maintenance bandwidth
        budget (returns ``[]``; progress is visible in ``migration_*``
        metrics and :meth:`MaintenancePlane.run_idle
        <repro.maintenance.MaintenancePlane.run_idle>` drives it forward).
        """
        self.evaluator.exclude(provider)
        self.dispatcher.refresh()
        if self.maintenance is not None:
            self.maintenance.migration.plan_decommission(provider)
            return []
        reports = []
        for path in self.namespace.paths():
            entry = self.namespace.get(path)
            if provider in entry.providers:
                reports.append(self.migrate(path))
        return reports

    def placements_on(self, provider: str) -> list[str]:
        """Paths that currently keep a fragment/replica on ``provider``."""
        return [
            p
            for p in self.namespace.paths()
            if provider in self.namespace.get(p).providers
        ]
