"""Client-side resilience: retry policies, circuit breakers, health tracking.

The fault side (:mod:`repro.faults`) makes providers misbehave in richer
ways than a clean outage; this module is the client's adaptive reaction:

- :class:`RetryPolicy` — exponential backoff with deterministic jitter and a
  per-request backoff deadline, all in *sim time*.  Replaces the seed's
  fixed-count immediate retries; the same seed reproduces the same retry
  timestamps.
- :class:`CircuitBreaker` — per-provider closed/open/half-open breaker on
  the sim clock.  After ``failure_threshold`` consecutive request failures
  the provider is skipped exactly like an outaged one (mutations fall into
  the write log); after ``reset_timeout`` sim-seconds a half-open probe
  decides whether to close it again.
- :class:`ProviderHealth` — EWMA tracker of per-provider error rate and
  observed/expected latency slowdown.  Feeds the Cost & Performance
  Evaluator's re-ranking (a browned-out provider gets demoted from the
  performance class) and sizes the hedged-read trigger delay.
- :class:`ResilienceConfig` — one frozen bundle of knobs, hung off
  :class:`~repro.core.config.HyRDConfig` and accepted by every scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ProviderHealth",
    "ResilienceConfig",
    "NO_BACKOFF",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, in sim time.

    ``backoff(attempt, rng)`` returns the wait before retry ``attempt + 1``
    (0-based failure index): ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, scaled by ±``jitter`` drawn from ``rng``.  Jitter is
    *deterministic*: the rng is a seeded stream, so the same seed and the
    same failure sequence produce the same retry timestamps.

    ``deadline`` bounds the total backoff a single request may accumulate;
    once the next wait would exceed it, the request gives up (and, for
    mutations, falls into the write log like any exhausted retry).

    ``op_deadline`` is the *overall* per-request budget: failed-attempt
    round trips **plus** backoff waits together may never exceed it.  The
    attempt count alone cannot bound wall time (a browned-out provider can
    burn an arbitrary RTT per failed attempt); with an op deadline set, the
    retry chain stops scheduling further attempts the moment its serialized
    penalty reaches the budget.  ``None`` (the default) keeps the
    historical attempt-count-only behaviour.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    deadline: float = 30.0
    op_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline < 0:
            raise ValueError("delays must be >= 0")
        if self.op_deadline is not None and self.op_deadline <= 0:
            raise ValueError(
                f"op_deadline must be > 0 when set, got {self.op_deadline}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Wait in seconds after 0-based failed ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if rng is not None and self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def schedule(self, rng: np.random.Generator | None = None) -> list[float]:
        """Every backoff the policy would apply, deadline-truncated.

        ``len(schedule) + 1`` is the worst-case attempt count.
        """
        waits: list[float] = []
        spent = 0.0
        for attempt in range(self.max_attempts - 1):
            delay = self.backoff(attempt, rng)
            if spent + delay > self.deadline:
                break
            waits.append(delay)
            spent += delay
        return waits

    def without_backoff(self) -> "RetryPolicy":
        """Same attempt budget, zero wait (the seed's behaviour; ablations)."""
        return replace(self, base_delay=0.0, max_delay=0.0, jitter=0.0)


#: Immediate retries, no waiting — the seed's original client behaviour.
NO_BACKOFF = RetryPolicy().without_backoff()


class BreakerState:
    """Circuit breaker states (plain strings so reports stay readable)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-provider circuit breaker driven by the sim clock.

    closed --[``failure_threshold`` consecutive failures]--> open
    open   --[``reset_timeout`` elapsed, next ``allow``]--> half_open
    half_open --[``half_open_successes`` successes]--> closed
    half_open --[any failure]--> open (cooldown restarts)

    ``allow`` is consulted once per phase per provider by the scheme engine;
    a denied provider is skipped client-side at zero wire cost and its
    mutations land in the write log.  ``record_success`` from *any* state
    closes the breaker — a confirmed healthy response is better evidence
    than any timer (it is how the consistency-update replay re-admits a
    healed provider immediately).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 60.0,
        half_open_successes: int = 2,
        metrics=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_successes = half_open_successes
        #: optional MetricsRegistry; transitions feed
        #: ``breaker_transitions_total{provider,state}`` when attached
        self.metrics = metrics
        #: optional callable ``(provider, state, now)`` invoked on every state
        #: change — the SLO tracker hangs here to turn open/closed edges into
        #: observed downtime intervals.  Attached post-construction.
        self.listener = None
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._half_open_ok = 0
        self._opened_at = 0.0
        #: every state change as (sim time, new state) — asserted by tests
        self.transitions: list[tuple[float, str]] = []

    def _transition(self, state: str, now: float) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((now, state))
        if self.metrics is not None:
            self.metrics.counter(
                "breaker_transitions_total", provider=self.name, state=state
            ).inc()
        if self.listener is not None:
            self.listener(self.name, state, now)
        if state == BreakerState.OPEN:
            self._opened_at = now
            self._half_open_ok = 0
        elif state == BreakerState.CLOSED:
            self._consecutive_failures = 0
            self._half_open_ok = 0

    # ------------------------------------------------------------- decisions
    def would_allow(self, now: float) -> bool:
        """Non-mutating check: would a request to this provider proceed?"""
        if self.state != BreakerState.OPEN:
            return True
        return now - self._opened_at >= self.reset_timeout

    def allow(self, now: float) -> bool:
        """Gate one phase; an expired open breaker moves to half-open."""
        if self.state == BreakerState.OPEN:
            if now - self._opened_at < self.reset_timeout:
                return False
            self._transition(BreakerState.HALF_OPEN, now)
        return True

    # -------------------------------------------------------------- feedback
    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        if self.state == BreakerState.HALF_OPEN:
            self._half_open_ok += 1
            if self._half_open_ok >= self.half_open_successes:
                self._transition(BreakerState.CLOSED, now)
        elif self.state == BreakerState.OPEN:
            # Forced traffic (consistency-update replay) proved it healthy.
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        if self.state == BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
            return
        if self.state == BreakerState.OPEN:
            self._opened_at = now  # still failing: restart the cooldown
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._transition(BreakerState.OPEN, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


class ProviderHealth:
    """EWMA view of one provider's recent behaviour.

    Two signals, both updated from real request outcomes by the scheme
    engine:

    - ``error_rate`` — EWMA of per-attempt failure indicators (transient
      failures count even when a retry later succeeds: a provider burning
      retries is less healthy than one that answers first time);
    - ``slowdown`` — EWMA of observed/expected latency ratios, where
      *expected* comes from the provider's clean latency model.  A brownout
      shows up here as a ratio well above 1 without a single error.

    ``p95_slowdown`` (mean + ``k`` deviations) sizes the hedged-read trigger
    delay; ``penalty`` condenses both signals into one multiplicative factor
    for the evaluator's health-aware re-ranking.
    """

    def __init__(self, name: str, alpha: float = 0.2, metrics=None) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.name = name
        self.alpha = alpha
        #: optional MetricsRegistry; the two EWMAs are published as the
        #: ``provider_health_error_rate`` / ``provider_health_slowdown`` gauges
        self.metrics = metrics
        self.error_rate = 0.0
        self.slowdown = 1.0
        self.slowdown_dev = 0.0
        self.samples = 0
        #: empirical latency-vs-load curve from the load observatory:
        #: ((concurrency level, EWMA request seconds, samples), ...)
        self.load_curve: tuple[tuple[int, float, int], ...] = ()

    def record_attempt(self, ok: bool) -> None:
        """Fold one request attempt (success or failure) into the error EWMA."""
        self.error_rate += self.alpha * ((0.0 if ok else 1.0) - self.error_rate)
        self.samples += 1
        if self.metrics is not None:
            self.metrics.gauge(
                "provider_health_error_rate", provider=self.name
            ).set(self.error_rate)

    def record_latency(self, observed: float, expected: float) -> None:
        """Fold one successful request's observed/expected latency ratio."""
        if expected <= 0.0 or observed < 0.0:
            return
        ratio = observed / expected
        self.slowdown += self.alpha * (ratio - self.slowdown)
        self.slowdown_dev += self.alpha * (abs(ratio - self.slowdown) - self.slowdown_dev)
        if self.metrics is not None:
            self.metrics.gauge(
                "provider_health_slowdown", provider=self.name
            ).set(self.slowdown)

    def note_load_curve(
        self, curve: tuple[tuple[int, float, int], ...]
    ) -> None:
        """Accept the observatory's latency-vs-load curve for this provider.

        This is the per-provider service-capacity signal the load-aware
        coded-read scheduler consumes: :meth:`capacity_slope` and
        :meth:`queue_wait` both read it when pricing a fragment fetch
        (see :mod:`repro.core.scheduling`).
        """
        self.load_curve = curve

    def expected_latency_at(self, load: int) -> float | None:
        """EWMA request latency at the nearest observed concurrency level.

        Returns None until the observatory has fed at least one curve point.
        """
        if not self.load_curve:
            return None
        level, ewma, _ = min(
            self.load_curve, key=lambda c: (abs(c[0] - load), c[0])
        )
        return ewma

    def capacity_slope(self) -> float:
        """Marginal EWMA seconds per added unit of concurrency, >= 0.

        The secant slope across the observed span of the latency-vs-load
        curve: how much slower one request gets for each extra concurrent
        request the provider carries.  A flat (or improving) curve — the
        provider still has capacity headroom — reads as 0; the estimate
        needs at least two distinct observed concurrency levels.
        """
        if len(self.load_curve) < 2:
            return 0.0
        pts = sorted(self.load_curve)
        lo, hi = pts[0], pts[-1]
        if hi[0] <= lo[0]:
            return 0.0
        return max(0.0, (hi[1] - lo[1]) / (hi[0] - lo[0]))

    def queue_wait(self, depth: float) -> float:
        """Estimated extra seconds spent queued behind ``depth`` requests.

        Prices the marginal request off the load curve's congestion slope;
        0 until the observatory has fed enough curve to know better.  The
        scheduler adds this on top of the Little's-law wait so a provider
        whose latency climbs steeply with load is avoided *before* its
        queue estimate catches up.
        """
        if depth <= 0.0:
            return 0.0
        return depth * self.capacity_slope()

    def p95_slowdown(self, k: float = 2.0) -> float:
        """Upper-tail slowdown estimate (>= 1): mean + ``k`` deviations."""
        return max(1.0, self.slowdown + k * self.slowdown_dev)

    def penalty(self, error_weight: float = 4.0) -> float:
        """Multiplicative score penalty: 1.0 means perfectly healthy."""
        return max(1.0, self.slowdown) * (1.0 + error_weight * self.error_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProviderHealth({self.name!r}, err={self.error_rate:.3f}, "
            f"slow={self.slowdown:.2f})"
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """Every resilience knob in one bundle.

    Parameters
    ----------
    retry:
        Backoff policy for normal scheme requests (puts/gets/etc.).
    probe_retry:
        Backoff policy for the Evaluator's latency probes.  Default keeps
        the seed's 6 immediate attempts, now config-exposed.
    breaker_enabled / breaker_*:
        Per-provider circuit-breaker parameters (see :class:`CircuitBreaker`).
    hedge_reads:
        Enable hedged reads on the replicated read path: when the primary
        replica's response has not arrived by the estimated p95 latency, a
        backup request goes to the next-ranked replica and the first
        response wins.  Off by default — hedging trades extra requests (and
        egress) for tail latency, which is a policy decision.
    hedge_quantile_dev:
        ``k`` in the p95 slowdown estimate (mean + k deviations).
    hedge_min_delay_factor:
        The hedge never fires before ``estimate * this`` — guards against a
        cold health tracker hedging every single read.
    health_alpha:
        EWMA smoothing for :class:`ProviderHealth`.
    health_error_weight:
        Error-rate weight in the evaluator's health-aware re-ranking.
    write_log_memory_limit:
        In-memory byte budget per provider write log; retained put payloads
        beyond it spill to client-local disk (see
        :class:`~repro.core.recovery.WriteLog`).  ``None`` never spills.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    probe_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=6, base_delay=0.0, max_delay=0.0, jitter=0.0
        )
    )
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 60.0
    breaker_half_open_successes: int = 2
    hedge_reads: bool = False
    hedge_quantile_dev: float = 2.0
    hedge_min_delay_factor: float = 1.1
    health_alpha: float = 0.2
    health_error_weight: float = 4.0
    write_log_memory_limit: int | None = None

    def __post_init__(self) -> None:
        if self.hedge_min_delay_factor < 1.0:
            raise ValueError(
                f"hedge_min_delay_factor must be >= 1, got {self.hedge_min_delay_factor}"
            )
        if self.hedge_quantile_dev < 0.0:
            raise ValueError(
                f"hedge_quantile_dev must be >= 0, got {self.hedge_quantile_dev}"
            )
        if self.health_error_weight < 0.0:
            raise ValueError(
                f"health_error_weight must be >= 0, got {self.health_error_weight}"
            )

    def make_breaker(self, name: str, metrics=None) -> CircuitBreaker:
        return CircuitBreaker(
            name,
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout=self.breaker_reset_timeout,
            half_open_successes=self.breaker_half_open_successes,
            metrics=metrics,
        )

    def make_health(self, name: str, metrics=None) -> ProviderHealth:
        return ProviderHealth(name, alpha=self.health_alpha, metrics=metrics)
