"""HyRD configuration — every design choice §III calls out, as a knob.

Defaults are the paper's: 1 MB small/large threshold (picked from Figure 5's
latency knee), replication level 2 ("two concurrent cloud outages are
extremely rare"), RAID5 erasure coding for large files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resilience import ResilienceConfig

__all__ = ["HyRDConfig", "MB"]

MB = 1024 * 1024


@dataclass(frozen=True)
class HyRDConfig:
    """Tunable parameters of the HyRD client.

    Parameters
    ----------
    size_threshold:
        Files strictly smaller than this are "small" (replicated); others are
        "large" (erasure-coded).  Paper default: 1 MB.
    replication_level:
        Copies kept of small files and metadata groups.  Paper default: 2.
    erasure_codec:
        Registered codec name used for large files ("raid5", "rs", "fmsr").
    erasure_k:
        Data-fragment count for the large-file code; ``None`` derives it from
        the number of cost-oriented providers (k = count - 1 for raid5).
    metadata_cache_capacity:
        Directory metadata groups held in client memory (LRU).
    hot_file_threshold:
        Read count after which a large file is *promoted*: an extra full copy
        is placed on the fastest performance-oriented provider (Figure 2's
        "frequently accessed large files").  ``0`` disables promotion.
    perf_fraction:
        Fraction of providers (by measured speed) classified
        performance-oriented by the Evaluator.
    cost_percentile:
        Storage-price percentile at or below which a provider is classified
        cost-oriented.
    min_distinct_regions:
        Placement policy (§VI feature-awareness): every placement must span
        at least this many distinct provider regions.  1 disables the
        constraint (the paper's implicit default).
    required_features:
        Boolean :class:`~repro.cloud.features.ProviderFeatures` names every
        chosen provider must offer (e.g. ``("geo_redundant",)``).
    resilience:
        Client reaction to provider misbehaviour: retry backoff, circuit
        breakers, hedged reads, health tracking
        (:class:`~repro.core.resilience.ResilienceConfig`).
    seed:
        Root seed for all stochastic behaviour (jitter, probes).
    """

    size_threshold: int = 1 * MB
    replication_level: int = 2
    erasure_codec: str = "raid5"
    erasure_k: int | None = None
    metadata_cache_capacity: int = 256
    hot_file_threshold: int = 4
    perf_fraction: float = 0.5
    cost_percentile: float = 75.0
    min_distinct_regions: int = 1
    required_features: tuple[str, ...] = ()
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size_threshold < 0:
            raise ValueError(f"size_threshold must be >= 0, got {self.size_threshold}")
        if self.replication_level < 1:
            raise ValueError(
                f"replication_level must be >= 1, got {self.replication_level}"
            )
        if self.erasure_k is not None and self.erasure_k < 1:
            raise ValueError(f"erasure_k must be >= 1, got {self.erasure_k}")
        if self.metadata_cache_capacity < 1:
            raise ValueError("metadata_cache_capacity must be >= 1")
        if self.hot_file_threshold < 0:
            raise ValueError("hot_file_threshold must be >= 0")
        if not (0.0 < self.perf_fraction <= 1.0):
            raise ValueError(f"perf_fraction must be in (0, 1], got {self.perf_fraction}")
        if not (0.0 <= self.cost_percentile <= 100.0):
            raise ValueError(
                f"cost_percentile must be in [0, 100], got {self.cost_percentile}"
            )
        if self.min_distinct_regions < 1:
            raise ValueError(
                f"min_distinct_regions must be >= 1, got {self.min_distinct_regions}"
            )
