"""``python -m repro`` — experiment CLI entry point."""

import sys

from repro.cli import main

sys.exit(main())
