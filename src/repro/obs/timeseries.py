"""Metric time series: sim-clock snapshots of the registry, ring-buffered.

The tracer (:mod:`repro.obs.trace`) answers *why was this operation slow*;
the run report (:mod:`repro.obs.report`) answers *what did the whole run
cost*.  Neither answers *what is happening right now* — availability is a
time-resolved property, and a trajectory you only inspect post-hoc is not
observability.  This module supplies the live half:

- :class:`MetricTimeSeries` — a bounded ring buffer of registry snapshots,
  each a ``(sim time, {series id: value})`` sample.  Counters and gauges
  snapshot to their value; histograms expand into ``count`` / ``mean`` /
  ``p50`` / ``p95`` / ``p99`` / ``max`` fields.  JSON-lines export/import is
  symmetric to the trace format (``ts.meta`` / ``ts.sample`` records, keys
  sorted, shortest-round-trip floats), so export→import→export is
  *byte-identical* — the same guarantee the tracer gives, enforced by a
  hypothesis property test.
- :class:`TimeSeriesSampler` — the cadence driver.  Workload drivers call
  :meth:`TimeSeriesSampler.poll` between operations; the sampler snapshots
  the registry at most once per ``cadence`` simulated seconds (grid-aligned
  due instants, stamped at the actual clock reading).  Polling never
  advances the clock and never draws randomness, so an attached sampler
  cannot perturb a run — and an absent one (the default everywhere) costs a
  single ``is None`` check.

Series ids are flat strings so samples are plain JSON objects::

    ops_total{degraded=false,op=get}            # counter
    provider_health_slowdown{provider=azure}    # gauge
    op_latency_seconds{op=get}:p95              # histogram field

See ``docs/observability.md`` for the prose guide and
``repro watch`` (:mod:`repro.obs.dashboard`) for the renderer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "MetricTimeSeries",
    "TimeSeriesSampler",
    "series_id",
    "split_series_id",
    "HISTOGRAM_FIELDS",
]

#: The fields a histogram instrument expands into, in snapshot order.
HISTOGRAM_FIELDS: tuple[str, ...] = ("count", "mean", "p50", "p95", "p99", "max")


def series_id(name: str, labels: Iterable[tuple[str, str]] = (), field: str | None = None) -> str:
    """Canonical flat id for one series: ``name{k=v,...}`` plus ``:field``."""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    base = f"{name}{{{inner}}}" if inner else name
    return f"{base}:{field}" if field else base


def split_series_id(sid: str) -> tuple[str, tuple[tuple[str, str], ...], str | None]:
    """Inverse of :func:`series_id` — ``(name, labels, field)``."""
    field: str | None = None
    if "}" in sid:
        base, _, tail = sid.rpartition("}")
        base += "}"
        if tail.startswith(":"):
            field = tail[1:]
    else:
        base = sid
        if ":" in sid:
            base, _, f = sid.partition(":")
            field = f
    if "{" in base:
        name, _, inner = base.partition("{")
        inner = inner.rstrip("}")
        labels = tuple(
            (k, v)
            for k, _, v in (pair.partition("=") for pair in inner.split(",") if pair)
        )
    else:
        name, labels = base, ()
    return name, labels, field


def _snapshot_registry(registry: MetricsRegistry) -> dict[str, Any]:
    """One flat ``{series id: value}`` view of every instrument."""
    values: dict[str, Any] = {}
    for m in registry.all_metrics():
        if isinstance(m, (Counter, Gauge)):
            values[series_id(m.name, m.labels)] = m.value
        elif isinstance(m, Histogram):
            s = m.summary()
            for f in HISTOGRAM_FIELDS:
                values[series_id(m.name, m.labels, f)] = s[f]
    return values


class MetricTimeSeries:
    """Bounded ring buffer of timestamped registry snapshots.

    Parameters
    ----------
    cadence:
        Nominal sampling interval in simulated seconds (the sampler's due
        grid; stored so a saved file self-describes its resolution).
    capacity:
        Maximum retained samples; older samples fall off the front (a ring
        buffer, so a long watch session holds the trailing window).
    meta:
        JSON-safe run identity (scheme name, seed, ...), carried through
        export/import for the dashboard header.
    """

    def __init__(
        self, cadence: float = 60.0, capacity: int = 720, meta: dict[str, Any] | None = None
    ) -> None:
        if cadence <= 0.0:
            raise ValueError(f"cadence must be > 0, got {cadence}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.cadence = float(cadence)
        self.capacity = int(capacity)
        self.meta: dict[str, Any] = dict(meta or {})
        #: ring buffer of ``(time, {series id: value})`` in time order
        self.samples: deque[tuple[float, dict[str, Any]]] = deque(maxlen=self.capacity)

    # -------------------------------------------------------------- recording
    def snapshot(self, registry: MetricsRegistry, t: float) -> None:
        """Append one snapshot of ``registry`` stamped at sim time ``t``.

        Times must be non-decreasing — a sample from the past is the same
        clock misuse :class:`~repro.sim.clock.SimClock` rejects.
        """
        if self.samples and t < self.samples[-1][0]:
            raise ValueError(
                f"sample at t={t} precedes last sample at t={self.samples[-1][0]}"
            )
        self.samples.append((float(t), _snapshot_registry(registry)))

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def span(self) -> tuple[float, float]:
        """(first, last) sample time; (0, 0) when empty."""
        if not self.samples:
            return (0.0, 0.0)
        return (self.samples[0][0], self.samples[-1][0])

    def series_ids(self) -> list[str]:
        """Every series id present in any retained sample, sorted."""
        ids: set[str] = set()
        for _, values in self.samples:
            ids.update(values)
        return sorted(ids)

    def series(self, sid: str) -> list[tuple[float, Any]]:
        """``[(time, value), ...]`` for one series (absent samples skipped)."""
        return [(t, v[sid]) for t, v in self.samples if sid in v]

    def latest(self, sid: str, default: Any = None) -> Any:
        """Most recent value of a series, or ``default`` if never sampled."""
        for t, values in reversed(self.samples):
            if sid in values:
                return values[sid]
        return default

    def deltas(self, sid: str) -> list[tuple[float, float]]:
        """Per-interval increases of a (counter) series — rate-ish view."""
        points = self.series(sid)
        return [
            (t1, max(v1 - v0, 0)) for (_, v0), (t1, v1) in zip(points, points[1:])
        ]

    # ----------------------------------------------------------------- export
    def to_records(self) -> list[dict[str, Any]]:
        """The series as record dicts (same shape the JSONL lines carry)."""
        records: list[dict[str, Any]] = [
            {
                "t": "ts.meta",
                "cadence": self.cadence,
                "capacity": self.capacity,
                "attrs": self.meta,
            }
        ]
        for t, values in self.samples:
            records.append({"t": "ts.sample", "time": t, "values": values})
        return records

    def to_jsonl(self) -> str:
        """JSON-lines export: one ``ts.meta`` line, then one line per sample.

        Keys are sorted and floats use Python's shortest-round-trip repr,
        exactly like the trace format — which is what makes
        export→import→export byte-identical.
        """
        return "\n".join(
            json.dumps(r, separators=(",", ":"), sort_keys=True)
            for r in self.to_records()
        )

    def write_jsonl(self, fp_or_path) -> None:
        """Write :meth:`to_jsonl` to a path or open text file."""
        text = self.to_jsonl() + "\n"
        if hasattr(fp_or_path, "write"):
            fp_or_path.write(text)
        else:
            with open(fp_or_path, "w", encoding="utf-8") as fp:
                fp.write(text)

    # ----------------------------------------------------------------- import
    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]]) -> "MetricTimeSeries":
        """Rebuild a series from parsed records (inverse of :meth:`to_records`)."""
        ts: MetricTimeSeries | None = None
        pending: list[tuple[float, dict[str, Any]]] = []
        for r in records:
            kind = r.get("t")
            if kind == "ts.meta":
                if ts is not None:
                    raise ValueError("duplicate ts.meta record")
                ts = cls(
                    cadence=r["cadence"], capacity=r["capacity"], meta=r.get("attrs", {})
                )
            elif kind == "ts.sample":
                pending.append((r["time"], r["values"]))
        if ts is None:
            raise ValueError("time-series stream has no ts.meta record")
        for t, values in pending:
            if ts.samples and t < ts.samples[-1][0]:
                raise ValueError(f"sample at t={t} out of order in stream")
            ts.samples.append((float(t), values))
        return ts

    @classmethod
    def parse_jsonl(cls, lines: Iterable[str]) -> "MetricTimeSeries":
        """Parse JSON-lines text back into a series (blank lines skipped)."""
        return cls.from_records(json.loads(line) for line in lines if line.strip())

    @classmethod
    def read_jsonl(cls, path) -> "MetricTimeSeries":
        """Read a file written by :meth:`write_jsonl`."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.parse_jsonl(fp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.span
        return (
            f"MetricTimeSeries({len(self.samples)} samples, "
            f"t={lo:.1f}..{hi:.1f}, cadence={self.cadence})"
        )


class TimeSeriesSampler:
    """Cadence-driven sampler: snapshots a registry as the sim clock moves.

    Construct unbound (configuration only), then :meth:`bind` to a live
    run's registry and clock — run drivers like
    :func:`repro.obs.report.run_fault_storm_report` bind the sampler they
    are handed, so callers can configure sampling without building the
    scheme themselves.  ``poll()`` between operations does the work:

    - before the bind, and between due instants, it is a no-op;
    - when ``clock.now`` has crossed the next due instant, it (optionally)
      asks the attached :class:`~repro.obs.slo.SloTracker` to publish its
      gauges, snapshots the registry stamped at the *actual* clock reading,
      advances the due grid past ``now``, and invokes ``on_sample`` (the
      live-dashboard hook).

    The due grid is ``start + k * cadence``: at most one sample per poll,
    never more than one sample per cadence interval, and sample times are
    real clock readings (a discrete-event run cannot observe the registry
    *between* operations, so back-filling grid points would fabricate
    history).
    """

    def __init__(
        self,
        cadence: float = 60.0,
        capacity: int = 720,
        slo=None,
        on_sample=None,
    ) -> None:
        self.ts = MetricTimeSeries(cadence=cadence, capacity=capacity)
        #: optional :class:`repro.obs.slo.SloTracker` whose gauges are
        #: published into the registry just before every snapshot
        self.slo = slo
        #: optional callback ``f(sampler)`` after every snapshot (dashboards)
        self.on_sample = on_sample
        self._registry: MetricsRegistry | None = None
        self._clock = None
        self._next_due = 0.0

    @property
    def bound(self) -> bool:
        return self._registry is not None

    def bind(self, registry: MetricsRegistry, clock, meta: dict[str, Any] | None = None) -> None:
        """Attach to a live run; sampling becomes due ``cadence`` from now."""
        if self.bound:
            raise RuntimeError("sampler is already bound to a run")
        self._registry = registry
        self._clock = clock
        self._next_due = clock.now + self.ts.cadence
        if meta:
            self.ts.meta.update(meta)

    def poll(self) -> bool:
        """Snapshot if a cadence boundary has passed; True when sampled."""
        if self._registry is None or self._clock.now < self._next_due:
            return False
        now = self._clock.now
        if self.slo is not None:
            self.slo.publish(now)
        self.ts.snapshot(self._registry, now)
        # Advance the due grid past `now` (skipping boundaries the workload
        # jumped over) so long idle gaps do not trigger sample bursts.
        cadence = self.ts.cadence
        periods = int((now - self._next_due) / cadence) + 1
        self._next_due += periods * cadence
        if self.on_sample is not None:
            self.on_sample(self)
        return True

    def finish(self) -> None:
        """Force one final snapshot (end-of-run state, off the grid)."""
        if self._registry is None:
            return
        now = self._clock.now
        if self.slo is not None:
            self.slo.publish(now)
        if self.ts.samples and self.ts.samples[-1][0] == now:
            return  # the grid already sampled this instant
        self.ts.snapshot(self._registry, now)
        if self.on_sample is not None:
            self.on_sample(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "bound" if self.bound else "unbound"
        return f"TimeSeriesSampler({state}, {self.ts!r})"
