"""``repro watch`` — an ANSI terminal dashboard over the metric time series.

Pure stdlib rendering: sparklines (block glyphs), SLO gauge bars with the
target marked, a per-provider health strip, and the workload small/large mix
— all computed from a :class:`~repro.obs.timeseries.MetricTimeSeries`, which
means the same dashboard renders from a *live* sampler mid-run or from a
saved ``.jsonl`` file long after the run ended (``repro watch --from``).

Nothing here touches the simulation: the dashboard is a read-only view over
snapshots the sampler already took.  Colors are plain ANSI SGR codes, and
every renderer takes ``color=False`` for pipes and tests.
"""

from __future__ import annotations

from typing import Any

from repro.obs.timeseries import MetricTimeSeries, split_series_id

__all__ = ["sparkline", "gauge_bar", "render_dashboard", "render_frame"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_RESET = "\x1b[0m"
_COLORS = {"green": "\x1b[32m", "yellow": "\x1b[33m", "red": "\x1b[31m",
           "dim": "\x1b[2m", "bold": "\x1b[1m", "cyan": "\x1b[36m"}
#: clear screen + home — prepended to live frames so the dashboard redraws
#: in place instead of scrolling
CLEAR = "\x1b[2J\x1b[H"


def _c(text: str, code: str, color: bool) -> str:
    if not color:
        return text
    return f"{_COLORS[code]}{text}{_RESET}"


def sparkline(values: list[float], width: int = 40) -> str:
    """Render a value series as one line of block glyphs.

    The series is resampled to ``width`` points (last value per cell) and
    scaled to its own min..max; a flat series renders as a run of the lowest
    block, an empty one as an empty string.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # Last value per cell keeps the right edge equal to the live value.
        step = len(vals) / width
        vals = [vals[min(int((i + 1) * step) - 1, len(vals) - 1)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0.0:
        return _BLOCKS[0] * len(vals)
    return "".join(
        _BLOCKS[min(int((v - lo) / span * len(_BLOCKS)), len(_BLOCKS) - 1)]
        for v in vals
    )


def gauge_bar(value: float, target: float, width: int = 24, color: bool = True) -> str:
    """A filled bar for an availability-style gauge, with the target marked.

    The bar spans ``[2*target - 1, 1.0]`` (so a 99.9% target puts 99.8% at
    the left edge — the interesting range, not 0..1 where every value would
    pin the bar full).  Green at/above target, red below.
    """
    lo = max(0.0, 2.0 * target - 1.0)
    frac = 0.0 if value <= lo else min((value - lo) / (1.0 - lo), 1.0)
    filled = int(round(frac * width))
    mark = int(round(min((target - lo) / (1.0 - lo), 1.0) * width))
    cells = ["█" if i < filled else "░" for i in range(width)]
    if 0 <= mark < width:
        cells[mark] = "|"
    bar = "".join(cells)
    return _c(bar, "green" if value >= target else "red", color)


# ---------------------------------------------------------------- aggregation
def _series_by_metric(ts: MetricTimeSeries) -> dict[str, list[str]]:
    """Metric name -> the series ids that carry it."""
    out: dict[str, list[str]] = {}
    for sid in ts.series_ids():
        name, _, _ = split_series_id(sid)
        out.setdefault(name, []).append(sid)
    return out


def _summed_series(ts: MetricTimeSeries, sids: list[str]) -> list[tuple[float, float]]:
    """Per-sample sum of several series (e.g. a counter across its labels)."""
    points: list[tuple[float, float]] = []
    for t, values in ts.samples:
        present = [values[s] for s in sids if s in values]
        if present:
            points.append((t, float(sum(present))))
    return points


def _deltas(points: list[tuple[float, float]]) -> list[float]:
    return [max(b - a, 0.0) for (_, a), (_, b) in zip(points, points[1:])]


def _label(sid: str, key: str) -> str | None:
    _, labels, _ = split_series_id(sid)
    return dict(labels).get(key)


def _fmt_avail(v: float | None) -> str:
    return "  --  " if v is None else f"{v:8.4%}"


def _fmt_secs(v: float | None) -> str:
    if v is None:
        return "--"
    if v >= 3600.0:
        return f"{v / 3600.0:.1f}h"
    if v >= 60.0:
        return f"{v / 60.0:.1f}m"
    return f"{v:.0f}s"


# ------------------------------------------------------------------ sections
def _header_section(ts: MetricTimeSeries, color: bool) -> list[str]:
    lo, hi = ts.span
    meta = " ".join(f"{k}={v}" for k, v in sorted(ts.meta.items())) or "(no meta)"
    title = _c("repro watch", "bold", color)
    return [
        f"{title} — {meta}",
        _c(
            f"{len(ts)} samples, sim t={lo:.1f}s..{hi:.1f}s, "
            f"cadence={ts.cadence:g}s",
            "dim",
            color,
        ),
    ]


def _slo_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    lines: list[str] = []
    targets = {"read": 0.999, "write": 0.999}  # display default when unsampled
    any_row = False
    for cls, gauge_name in (
        ("read", "slo_read_availability"),
        ("write", "slo_write_availability"),
    ):
        avail = ts.latest(gauge_name)
        burn = ts.latest(f"slo_error_budget_burn{{op_class={cls}}}")
        ops = ts.latest(f"slo_window_ops{{op_class={cls}}}")
        if avail is None and ops is None:
            continue
        any_row = True
        series = [v for _, v in ts.series(gauge_name)]
        bar = gauge_bar(avail, targets[cls], color=color) if avail is not None else ""
        burn_txt = "" if burn is None else f"burn {burn:5.2f}x"
        if burn is not None and burn > 1.0:
            burn_txt = _c(burn_txt, "red", color)
        lines.append(
            f"  {cls:<5} {_fmt_avail(avail)} {bar} {burn_txt:<14} "
            f"ops {int(ops or 0):>4}  {sparkline(series, width)}"
        )
    frac = ts.latest("slo_degraded_read_fraction")
    if frac is not None:
        series = [v for _, v in ts.series("slo_degraded_read_fraction")]
        tag = f"  degraded reads {frac:7.2%}"
        if frac > 0.0:
            tag = _c(tag, "yellow", color)
        lines.append(f"{tag}  {sparkline(series, width)}")
    if not lines and not any_row:
        return []
    return [_c("SLO (sliding window)", "cyan", color)] + lines


def _ops_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    by_metric = _series_by_metric(ts)
    lines: list[str] = []
    ops_sids = by_metric.get("ops_total", [])
    if ops_sids:
        points = _summed_series(ts, ops_sids)
        rate = _deltas(points)
        total = int(points[-1][1]) if points else 0
        lines.append(
            f"  ops/interval (total {total:>5})  {sparkline(rate, width)}"
        )
    for op in ("get", "put"):
        sid = f"op_latency_seconds{{op={op}}}:p95"
        series = [v for _, v in ts.series(sid)]
        latest = ts.latest(sid)
        if latest is not None:
            lines.append(
                f"  {op} p95 latency {latest:8.3f}s      {sparkline(series, width)}"
            )
    if not lines:
        return []
    return [_c("Operations", "cyan", color)] + lines


def _provider_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    by_metric = _series_by_metric(ts)
    providers: set[str] = set()
    for name in ("provider_health_error_rate", "provider_requests_total"):
        for sid in by_metric.get(name, []):
            p = _label(sid, "provider")
            if p:
                providers.add(p)
    if not providers:
        return []
    lines = [_c("Providers", "cyan", color)]
    for p in sorted(providers):
        err = ts.latest(f"provider_health_error_rate{{provider={p}}}")
        slow = ts.latest(f"provider_health_slowdown{{provider={p}}}")
        down_obs = ts.latest(
            f"slo_provider_downtime_seconds{{feed=observed,provider={p}}}"
        )
        down_sched = ts.latest(
            f"slo_provider_downtime_seconds{{feed=scheduled,provider={p}}}"
        )
        mtbf = ts.latest(f"slo_provider_mtbf_seconds{{feed=observed,provider={p}}}")
        mttr = ts.latest(f"slo_provider_mttr_seconds{{feed=observed,provider={p}}}")
        err = 0.0 if err is None else err
        slow = 1.0 if slow is None else slow
        if err > 0.25 or (down_obs or 0.0) > 0.0 and err > 0.05:
            dot, code = "●", "red"
        elif err > 0.02 or slow > 1.5:
            dot, code = "●", "yellow"
        else:
            dot, code = "●", "green"
        err_series = [
            v for _, v in ts.series(f"provider_health_error_rate{{provider={p}}}")
        ]
        down_txt = f"down {_fmt_secs(down_obs or 0.0):>6}"
        if down_sched is not None:
            down_txt += f" (true {_fmt_secs(down_sched)})"
        lines.append(
            f"  {_c(dot, code, color)} {p:<10} err {err:6.2%}  slow {slow:5.2f}x  "
            f"{down_txt:<24} mtbf {_fmt_secs(mtbf):>6} mttr {_fmt_secs(mttr):>6}  "
            f"{sparkline(err_series, max(width - 24, 8))}"
        )
    return lines


def _load_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    """Per-provider load panel fed by the observatory's gauges.

    Renders only when a :class:`~repro.obs.attribution.ProviderLoadObservatory`
    was attached to the sampled run (the ``provider_load_*`` gauges exist).
    """
    by_metric = _series_by_metric(ts)
    providers: set[str] = set()
    for sid in by_metric.get("provider_load_inflight", []):
        p = _label(sid, "provider")
        if p:
            providers.add(p)
    if not providers:
        return []
    lines = [_c("Provider load (observatory)", "cyan", color)]
    for p in sorted(providers):
        inflight = ts.latest(f"provider_load_inflight{{provider={p}}}") or 0.0
        depth = ts.latest(f"provider_load_queue_depth{{provider={p}}}") or 0.0
        rate = ts.latest(f"provider_load_service_rate{{provider={p}}}") or 0.0
        busy = ts.latest(f"provider_load_busy_seconds{{provider={p}}}") or 0.0
        depth_series = [
            v for _, v in ts.series(f"provider_load_queue_depth{{provider={p}}}")
        ]
        tag = f"  {p:<10} inflight {int(inflight):>3}  queue {depth:5.2f}  "
        tag += f"svc {rate:6.2f}/s  busy {_fmt_secs(busy):>6}  "
        if depth >= 2.0:
            tag = _c(tag, "yellow", color)
        lines.append(f"{tag}{sparkline(depth_series, max(width - 16, 8))}")
    return lines


def _tenant_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    """Per-tenant admission panel fed by the service plane's metrics.

    Renders only when a :class:`~repro.service.frontend.ServicePlane` drove
    the sampled run (the ``tenant_*`` / ``admission_*`` series exist).  With
    a large tenant population only the busiest rows are shown, ranked by
    admitted count, with a one-line tail summary for the rest.
    """
    by_metric = _series_by_metric(ts)
    tenants: set[str] = set()
    for name in ("tenant_admitted_total", "tenant_requests_total", "tenant_queue_depth"):
        for sid in by_metric.get(name, []):
            t = _label(sid, "tenant")
            if t:
                tenants.add(t)
    if not tenants:
        return []

    def admitted(t: str) -> float:
        return ts.latest(f"tenant_admitted_total{{tenant={t}}}") or 0.0

    def shed(t: str) -> float:
        return sum(
            ts.latest(sid) or 0.0
            for sid in by_metric.get("tenant_shed_total", [])
            if _label(sid, "tenant") == t
        )

    fairness = ts.latest("admission_fairness_index")
    queued = ts.latest("admission_queued") or 0.0
    head = f"  fairness {fairness:6.4f}" if fairness is not None else "  fairness   --  "
    if fairness is not None:
        head += f" {gauge_bar(fairness, 0.9, color=color)}"
        if fairness < 0.9:
            head = _c(head, "red", color)
    head += f"  queued {int(queued):>4}"
    fair_series = [v for _, v in ts.series("admission_fairness_index")]
    if fair_series:
        head += f"  {sparkline(fair_series, max(width - 16, 8))}"
    lines = [_c("Tenants (admission)", "cyan", color), head]
    ranked = sorted(tenants, key=lambda t: (-admitted(t), t))
    shown, rest = ranked[:8], ranked[8:]
    for t in shown:
        adm = admitted(t)
        sh = shed(t)
        depth = ts.latest(f"tenant_queue_depth{{tenant={t}}}") or 0.0
        depth_series = [
            v for _, v in ts.series(f"tenant_queue_depth{{tenant={t}}}")
        ]
        tag = (
            f"  {t:<10} queued {int(depth):>3}  admitted {int(adm):>5}  "
            f"shed {int(sh):>5}  "
        )
        if sh > 0:
            tag = _c(tag, "yellow", color)
        lines.append(f"{tag}{sparkline(depth_series, max(width - 24, 8))}")
    if rest:
        lines.append(
            _c(
                f"  … {len(rest)} more tenants "
                f"(admitted {int(sum(admitted(t) for t in rest))}, "
                f"shed {int(sum(shed(t) for t in rest))})",
                "dim",
                color,
            )
        )
    return lines


def _workload_section(ts: MetricTimeSeries, color: bool, width: int) -> list[str]:
    by_metric = _series_by_metric(ts)
    sids = by_metric.get("workload_size_bucket_total", [])
    if not sids:
        return []
    latest = {(_label(s, "bucket") or "?"): (ts.latest(s) or 0) for s in sids}
    total = sum(latest.values())
    if total <= 0:
        return []
    order = ("<4K", "4K-64K", "64K-1M", "1M-16M", ">=16M")
    lines = [_c("Workload mix (write sizes)", "cyan", color)]
    for bucket in order:
        count = latest.get(bucket, 0)
        if bucket not in latest and count == 0:
            continue
        frac = count / total
        bar = "█" * int(round(frac * 30))
        lines.append(f"  {bucket:<8} {int(count):>5} {frac:7.2%} {bar}")
    small = (
        ts.latest("workload_writes_total{class=small}") or 0
    )
    large = (
        ts.latest("workload_writes_total{class=large}") or 0
    )
    if small + large > 0:
        mix = [
            s / (s + lg) if (s + lg) else 0.0
            for (_, s), (_, lg) in zip(
                ts.series("workload_writes_total{class=small}"),
                ts.series("workload_writes_total{class=large}"),
            )
        ]
        lines.append(
            f"  small/(small+large) {small / (small + large):7.2%}  "
            f"{sparkline(mix, width)}"
        )
    return lines


# ------------------------------------------------------------------ top level
def render_dashboard(
    ts: MetricTimeSeries, width: int = 40, color: bool = True
) -> str:
    """The full dashboard for one time series, as a multi-line string.

    Sections with no underlying data are omitted, so the dashboard degrades
    gracefully on a series sampled without an SLO tracker attached.
    """
    if not len(ts):
        return "repro watch — (no samples yet)"
    blocks = [_header_section(ts, color)]
    for section in (
        _slo_section(ts, color, width),
        _ops_section(ts, color, width),
        _provider_section(ts, color, width),
        _load_section(ts, color, width),
        _tenant_section(ts, color, width),
        _workload_section(ts, color, width),
    ):
        if section:
            blocks.append(section)
    return "\n\n".join("\n".join(b) for b in blocks)


def render_frame(sampler: Any, color: bool = True) -> str:
    """One live frame: clear-screen prefix + the sampler's current dashboard.

    Suitable as (part of) a :class:`~repro.obs.timeseries.TimeSeriesSampler`
    ``on_sample`` callback::

        sampler = TimeSeriesSampler(
            cadence=60.0,
            on_sample=lambda s: print(render_frame(s), flush=True),
        )
    """
    return CLEAR + render_dashboard(sampler.ts, color=color)
