"""Span-based tracing on the simulation clock.

The tracer answers the question the flat :class:`~repro.metrics.collector.OpReport`
cannot: *why* was this one operation slow?  Every scheme operation opens a
**root span**; inside it the engine records **child spans** for each provider
request, retry sleep, breaker fast-fail, hedge, codec encode/decode, and
write-log fallback, each carrying attributes (provider name, attempt number,
byte counts, outcome).  Timestamps are simulation-clock seconds, so a trace
of a deterministic run is itself deterministic.

Two tracer implementations share one duck-typed interface:

:data:`NOOP_TRACER`
    The default everywhere.  ``enabled`` is ``False``; ``span()`` returns a
    single shared null context manager and nothing is ever allocated — the
    engine additionally guards its span bookkeeping behind
    ``if tracer.enabled``, so tracing-off runs execute the exact same
    arithmetic as before this module existed (verified by a test that makes
    :class:`SpanRecord` construction raise).

:class:`RecordingTracer`
    Records spans, point events, and mirrored metric updates (see
    :class:`~repro.metrics.registry.MetricsRegistry`) into an in-memory list
    of plain dicts, exportable as JSON-lines (:meth:`RecordingTracer.to_jsonl`)
    and renderable as a flame summary (:func:`flame_summary`).

JSON-lines schema (one JSON object per line, in record order)::

    {"t": "meta",   "attrs": {...}}                       # run identity
    {"t": "span",   "id": 3, "parent": 1, "name": "...",
                    "start": 12.5, "end": 13.1, "attrs": {...}}
    {"t": "event",  "name": "...", "time": 12.5, "span": 1, "attrs": {...}}
    {"t": "metric", "kind": "counter", "name": "retries",
                    "labels": [["provider", "s3"]], "value": 1}

Span records are emitted when the span *closes*, so children precede their
parents in the file; ``id``/``parent`` reconstruct the tree.  Floats survive
the round trip exactly (``json`` uses ``repr``, Python's shortest-round-trip
float format), which is what lets a replayed report be byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Iterator

__all__ = [
    "SpanRecord",
    "NoopTracer",
    "NOOP_TRACER",
    "RecordingTracer",
    "read_jsonl",
    "parse_jsonl",
    "flame_summary",
    "span_tree",
]


@dataclass(slots=True)
class SpanRecord:
    """One timed region of a run, on the simulation clock.

    ``span_id`` is unique within a tracer (1-based, allocation order);
    ``parent_id`` is ``None`` for root (operation-level) spans.  ``attrs``
    are JSON-safe key/value pairs — provider names, attempt numbers, byte
    counts, outcomes.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (usable while it is open)."""
        self.attrs.update(attrs)

    def to_record(self) -> dict[str, Any]:
        return {
            "t": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared, stateless stand-in for a span when tracing is off.

    Reentrant and reusable: it holds no state, so one instance serves every
    ``with tracer.span(...)`` site in the program.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NoopTracer:
    """The zero-cost default tracer.

    Every method is a constant-time no-op and none allocates a
    :class:`SpanRecord`.  Call sites that would build span bookkeeping
    (lists of pending spans, attr dicts) must guard on :attr:`enabled` so
    the disabled path stays allocation-free.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, start: float, end: float, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def metric(self, kind: str, name: str, labels, value) -> None:
        pass

    def meta(self, **attrs: Any) -> None:
        pass


#: Process-wide shared no-op tracer; the default for every scheme.
NOOP_TRACER = NoopTracer()


class _OpenSpan:
    """Context manager returned by :meth:`RecordingTracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "RecordingTracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        self._tracer._stack.append(self.record.span_id)
        return self.record

    def __exit__(self, *exc: object) -> bool:
        self._tracer._stack.pop()
        self.record.end = self._tracer.clock.now
        self._tracer.records.append(self.record.to_record())
        return False


class RecordingTracer:
    """Tracer that records spans/events/metrics against a sim clock.

    Parameters
    ----------
    clock:
        Anything with a ``now`` attribute in simulated seconds
        (:class:`repro.sim.clock.SimClock` in practice).

    The tracer never *advances* the clock or draws randomness — it only
    reads ``clock.now`` — so attaching it cannot perturb a run.
    """

    enabled = True

    def __init__(self, clock) -> None:
        self.clock = clock
        #: All records in emission order (meta/span/event/metric dicts).
        self.records: list[dict[str, Any]] = []
        self._stack: list[int] = []
        self._next_id = 1

    # -------------------------------------------------------------- recording
    def _alloc(self, name: str, start: float, attrs: dict[str, Any]) -> SpanRecord:
        rec = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start=start,
            attrs=attrs,
        )
        self._next_id += 1
        return rec

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a span at ``clock.now``; closes (and records) on ``__exit__``.

        The ``with`` target is the underlying :class:`SpanRecord`, so call
        sites can attach late attributes: ``with t.span("op.put") as sp:
        ... sp.set(outcome="ok")``.
        """
        return _OpenSpan(self, self._alloc(name, self.clock.now, attrs))

    def add(self, name: str, start: float, end: float, **attrs: Any) -> SpanRecord:
        """Record a span with explicit timestamps.

        The scheme engine simulates whole phases of concurrent transfers
        and only knows each request's finish time afterwards; this lets it
        backfill per-request spans once the phase resolves.  The parent is
        whatever span is currently open.
        """
        rec = self._alloc(name, start, attrs)
        rec.end = end
        self.records.append(rec.to_record())
        return rec

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous point event at ``clock.now``.

        The record carries the id of the innermost *open* span (``None`` at
        top level): two back-to-back operations share a boundary timestamp,
        so time alone cannot say which op an event at that instant belongs
        to — the enclosing span can.
        """
        self.records.append(
            {
                "t": "event",
                "name": name,
                "time": self.clock.now,
                "span": self._stack[-1] if self._stack else None,
                "attrs": attrs,
            }
        )

    def metric(self, kind: str, name: str, labels, value) -> None:
        """Mirror one registry mutation (called by :class:`MetricsRegistry`).

        ``labels`` arrives as the registry's canonical sorted tuple of
        ``(key, value)`` pairs; it is stored as a list-of-pairs so JSON
        round-trips it losslessly.
        """
        self.records.append(
            {
                "t": "metric",
                "kind": kind,
                "name": name,
                "labels": [list(kv) for kv in labels],
                "value": value,
            }
        )

    def meta(self, **attrs: Any) -> None:
        """Record run identity (scheme name, seed, config) for replay."""
        self.records.append({"t": "meta", "attrs": attrs})

    # ---------------------------------------------------------------- queries
    def spans(self) -> list[SpanRecord]:
        """All closed spans, as :class:`SpanRecord` objects, in close order."""
        return [
            SpanRecord(
                span_id=r["id"],
                parent_id=r["parent"],
                name=r["name"],
                start=r["start"],
                end=r["end"],
                attrs=r["attrs"],
            )
            for r in self.records
            if r["t"] == "span"
        ]

    # ----------------------------------------------------------------- export
    def to_jsonl(self) -> str:
        """The whole trace as JSON-lines (one record per line)."""
        return "\n".join(
            json.dumps(r, separators=(",", ":"), sort_keys=True) for r in self.records
        )

    def write_jsonl(self, fp_or_path) -> None:
        """Write :meth:`to_jsonl` to a path or open text file."""
        text = self.to_jsonl() + "\n"
        if hasattr(fp_or_path, "write"):
            fp_or_path.write(text)
        else:
            with open(fp_or_path, "w", encoding="utf-8") as fp:
                fp.write(text)


def parse_jsonl(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse JSON-lines trace text back into record dicts.

    Inverse of :meth:`RecordingTracer.to_jsonl` up to the canonical dict
    representation (``labels`` stay lists-of-pairs, as written).  Blank
    lines are skipped.
    """
    return [json.loads(line) for line in lines if line.strip()]


def read_jsonl(path) -> list[dict[str, Any]]:
    """Read a trace file written by :meth:`RecordingTracer.write_jsonl`."""
    with open(path, "r", encoding="utf-8") as fp:
        return parse_jsonl(fp)


def _iter_span_records(records: Iterable[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    for r in records:
        if r.get("t") == "span":
            yield r


def span_tree(
    records: Iterable[dict[str, Any]],
) -> tuple[list[dict[str, Any]], dict[int, list[dict[str, Any]]]]:
    """Rebuild the span forest from a record stream.

    Returns ``(roots, children)``: the root spans (``parent is None``) in
    emission order, and a map from every span id to its direct children.
    Spans whose parent never closed (a truncated trace) are treated as
    roots.  Consumers that need the *transitive* descendants — the
    attribution analyzer, for one — walk ``children`` from each root.
    """
    spans = list(_iter_span_records(records))
    ids = {r["id"] for r in spans}
    roots: list[dict[str, Any]] = []
    children: dict[int, list[dict[str, Any]]] = {r["id"]: [] for r in spans}
    for r in spans:
        parent = r["parent"]
        if parent is None or parent not in ids:
            roots.append(r)
        else:
            children[parent].append(r)
    return roots, children


def flame_summary(records: Iterable[dict[str, Any]], max_depth: int = 4) -> str:
    """Aggregate spans by call path and render an indented flame summary.

    Spans are grouped by their *name path* (root name / child name / ...);
    for each path the summary shows the call count, total simulated time,
    and mean duration, sorted by total time within each parent.  This is a
    text flame graph: width (total seconds) is printed instead of drawn.

    ``records`` may be live (``tracer.records``) or parsed from JSON-lines.
    """
    spans = list(_iter_span_records(records))
    for r in spans:
        if r["end"] < r["start"]:
            raise ValueError(
                f"span {r['id']} ({r['name']!r}) ends before it starts: "
                f"start={r['start']}, end={r['end']} — clock misuse or a "
                "corrupted trace"
            )
    by_id = {r["id"]: r for r in spans}

    def path_of(r: dict[str, Any]) -> tuple[str, ...]:
        parts = [r["name"]]
        parent = r["parent"]
        while parent is not None:
            pr = by_id.get(parent)
            if pr is None:  # pragma: no cover - truncated trace
                break
            parts.append(pr["name"])
            parent = pr["parent"]
        return tuple(reversed(parts))

    agg: dict[tuple[str, ...], list[float]] = {}
    for r in spans:
        p = path_of(r)
        if len(p) > max_depth:
            continue
        cell = agg.setdefault(p, [0, 0.0])
        cell[0] += 1
        cell[1] += r["end"] - r["start"]

    if not agg:
        return "(no spans recorded)"

    # Sort siblings by total time, keeping children under their parent.
    def sort_key(path: tuple[str, ...]) -> tuple:
        key: list = []
        for depth in range(1, len(path) + 1):
            prefix = path[:depth]
            total = agg.get(prefix, [0, 0.0])[1]
            key.append((-total, prefix[-1]))
        return tuple(key)

    lines = [f"{'span':<48} {'count':>7} {'total_s':>10} {'mean_s':>10}"]
    for path in sorted(agg, key=sort_key):
        count, total = agg[path]
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(f"{label:<48} {count:>7d} {total:>10.3f} {total / count:>10.4f}")
    return "\n".join(lines)
