"""Observability for the simulated cloud-of-clouds: tracing, reports, SLOs.

``repro.obs`` is the *consumer* side of the instrumentation stack:

- :mod:`repro.obs.trace` — span tracer on the sim clock (no-op by default),
  JSON-lines export, flame summaries;
- :mod:`repro.obs.report` — per-scheme run reports (latency percentiles by
  op, degraded split, time breakdown, resilience counters, per-provider
  timeline), renderable from a live scheme or replayed from a trace file;
- :mod:`repro.obs.timeseries` — cadence-driven registry snapshots into a
  bounded ring buffer, JSON-lines export/import symmetric to the trace
  format (the live feed behind ``repro watch``);
- :mod:`repro.obs.slo` — sliding-window SLO tracking: read/write
  availability, degraded-read fraction, error-budget burn, and per-provider
  empirical MTBF/MTTR from breaker edges vs the injected ground truth;
- :mod:`repro.obs.dashboard` — stdlib ANSI terminal dashboard over a live
  sampler or a saved time-series file;
- :mod:`repro.obs.attribution` — critical-path analyzer decomposing each
  op's wall-clock into a fixed phase taxonomy with machine-checked exact
  coverage, plus the per-provider load observatory and latency-bucket
  exemplar store (the engine behind ``repro explain``).

The *producer* side — metric instruments and the catalog that documents
them — lives in :mod:`repro.metrics` so the collector can depend on it
without an import cycle.  See ``docs/observability.md`` and ``docs/slo.md``
for the prose guides.
"""

from repro.obs.attribution import (
    COVERAGE_TOLERANCE,
    PHASES,
    AttributionReport,
    CoverageError,
    ExemplarStore,
    OpAttribution,
    ProviderLoadObservatory,
    attribute_trace,
    attributions_to_jsonl,
    parse_attribution_jsonl,
    read_attribution_jsonl,
    render_attribution,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    RecordingTracer,
    SpanRecord,
    flame_summary,
    parse_jsonl,
    read_jsonl,
    span_tree,
)
from repro.obs.report import RunReport, run_fault_storm_report
from repro.obs.slo import (
    IntervalLedger,
    ProviderSlo,
    SloConfig,
    SloTracker,
    TenantRollup,
)
from repro.obs.timeseries import MetricTimeSeries, TimeSeriesSampler

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "RecordingTracer",
    "SpanRecord",
    "flame_summary",
    "parse_jsonl",
    "read_jsonl",
    "span_tree",
    "COVERAGE_TOLERANCE",
    "PHASES",
    "AttributionReport",
    "CoverageError",
    "ExemplarStore",
    "OpAttribution",
    "ProviderLoadObservatory",
    "attribute_trace",
    "attributions_to_jsonl",
    "parse_attribution_jsonl",
    "read_attribution_jsonl",
    "render_attribution",
    "RunReport",
    "run_fault_storm_report",
    "MetricTimeSeries",
    "TimeSeriesSampler",
    "SloConfig",
    "SloTracker",
    "TenantRollup",
    "IntervalLedger",
    "ProviderSlo",
]
