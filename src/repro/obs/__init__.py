"""Observability for the simulated cloud-of-clouds: tracing and run reports.

``repro.obs`` is the *consumer* side of the instrumentation stack:

- :mod:`repro.obs.trace` — span tracer on the sim clock (no-op by default),
  JSON-lines export, flame summaries;
- :mod:`repro.obs.report` — per-scheme run reports (latency percentiles by
  op, degraded split, time breakdown, resilience counters, per-provider
  timeline), renderable from a live scheme or replayed from a trace file.

The *producer* side — metric instruments and the catalog that documents
them — lives in :mod:`repro.metrics` so the collector can depend on it
without an import cycle.  See ``docs/observability.md`` for the prose guide.
"""

from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    RecordingTracer,
    SpanRecord,
    flame_summary,
    parse_jsonl,
    read_jsonl,
)
from repro.obs.report import RunReport, run_fault_storm_report

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "RecordingTracer",
    "SpanRecord",
    "flame_summary",
    "parse_jsonl",
    "read_jsonl",
    "RunReport",
    "run_fault_storm_report",
]
