"""Sliding-window SLO tracking: live availability, the paper's own yardstick.

The analytic model (:mod:`repro.analysis.availability`) predicts what a
placement *should* deliver from assumed MTBF/MTTR; the run report says what a
run *did* deliver, after the fact.  This module watches a run while it
happens:

- :class:`IntervalLedger` — half-open downtime intervals for one provider,
  built either from edges (:meth:`~IntervalLedger.mark_down` /
  :meth:`~IntervalLedger.mark_up`) or whole windows
  (:meth:`~IntervalLedger.add_window`), with empirical MTBF/MTTR derived from
  them.
- :class:`ProviderSlo` — two ledgers per provider.  ``observed`` is fed by
  circuit-breaker transitions (the client's view: open = down edge, closed =
  up edge — it lags the true outage by the failures needed to trip).
  ``scheduled`` ingests the injected ground truth
  (:meth:`~repro.cloud.provider.SimulatedProvider.scheduled_downtime`), so
  tests can demand *exact* agreement with the fault schedule while the
  breaker view is compared with tolerance.
- :class:`SloTracker` — the aggregate: a sliding window of operation
  outcomes (hooked into :meth:`Scheme._end_op <repro.schemes.base.Scheme>`
  and the public-op failure path) yielding read/write availability, the
  degraded-read fraction, and error-budget burn rates against
  :class:`SloConfig` targets.  :meth:`SloTracker.publish` writes everything
  into the metric registry as ``slo_*`` gauges, which is how the time series
  and the ``repro watch`` dashboard see it.

Attach with ``scheme.attach_slo(SloTracker())``.  Detached (the default),
every hook is a single ``is None`` check — the zero-cost bar the tracer and
registry already meet; the tracker never moves the clock or draws RNG, so
attaching it cannot perturb simulated latencies either.

Error-budget math (``docs/slo.md``): a target of 99.9% leaves a budget of
0.1% unavailability.  Burn rate is observed unavailability divided by that
budget over the sliding window — 1.0 means exactly on budget, above 1.0 the
budget depletes early.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = [
    "SloConfig",
    "IntervalLedger",
    "ProviderSlo",
    "SloTracker",
    "TenantRollup",
    "op_class",
]


#: Which availability class each scheme op counts toward.  Heals and
#: namespace recovery are background repair, not user-facing traffic, and are
#: excluded from availability (but still visible in the op counters).
_OP_CLASS: dict[str, str] = {
    "get": "read",
    "stat": "read",
    "listdir": "read",
    "put": "write",
    "update": "write",
    "remove": "write",
}


def op_class(op: str) -> str | None:
    """``"read"`` / ``"write"`` for user-facing ops, None for repair traffic."""
    return _OP_CLASS.get(op)


@dataclass(frozen=True)
class SloConfig:
    """SLO targets and the sliding-window length (sim seconds)."""

    window: float = 3600.0
    read_target: float = 0.999
    write_target: float = 0.999

    def __post_init__(self) -> None:
        if self.window <= 0.0:
            raise ValueError(f"window must be > 0, got {self.window}")
        for label, target in (("read", self.read_target), ("write", self.write_target)):
            if not (0.0 < target < 1.0):
                raise ValueError(
                    f"{label}_target must be in (0, 1), got {target}"
                )

    def target(self, cls: str) -> float:
        if cls == "read":
            return self.read_target
        if cls == "write":
            return self.write_target
        raise KeyError(f"unknown op class {cls!r}")


class IntervalLedger:
    """Downtime intervals for one provider, from edges or whole windows."""

    def __init__(self) -> None:
        #: closed half-open ``[down, up)`` intervals, in order
        self.intervals: list[tuple[float, float]] = []
        self._down_since: float | None = None

    # ------------------------------------------------------------------ feeds
    def mark_down(self, t: float) -> None:
        """A down edge; repeated down marks while down are ignored."""
        if self._down_since is None:
            self._down_since = float(t)

    def mark_up(self, t: float) -> None:
        """An up edge closes the open interval; up while up is ignored."""
        if self._down_since is None:
            return
        if t < self._down_since:
            raise ValueError(
                f"up edge at t={t} precedes down edge at t={self._down_since}"
            )
        if t > self._down_since:  # zero-length blips carry no information
            self.intervals.append((self._down_since, float(t)))
        self._down_since = None

    def add_window(self, start: float, end: float) -> None:
        """Append one whole ``[start, end)`` interval (scheduled feed)."""
        if end <= start:
            raise ValueError(f"window must have end > start, got [{start}, {end})")
        if self.intervals and start < self.intervals[-1][1]:
            raise ValueError(
                f"window [{start}, {end}) overlaps or precedes "
                f"[{self.intervals[-1][0]}, {self.intervals[-1][1]})"
            )
        self.intervals.append((float(start), float(end)))

    # ---------------------------------------------------------------- queries
    @property
    def down_since(self) -> float | None:
        """Start of the still-open downtime, or None when up."""
        return self._down_since

    def downtime(self, now: float) -> float:
        """Total down seconds so far, the open interval clipped at ``now``."""
        total = sum(b - a for a, b in self.intervals)
        if self._down_since is not None and now > self._down_since:
            total += now - self._down_since
        return total

    def mttr(self) -> float | None:
        """Mean duration of closed downtime intervals (None before the first)."""
        if not self.intervals:
            return None
        return sum(b - a for a, b in self.intervals) / len(self.intervals)

    def mtbf(self) -> float | None:
        """Mean up time between failures: gaps from each recovery to the next
        down edge.  Needs two failures to yield a gap (None before that); the
        lead-in before the first failure is excluded — it measures when the
        run started, not how often the provider fails."""
        starts = [a for a, _ in self.intervals]
        if self._down_since is not None:
            starts.append(self._down_since)
        if len(starts) < 2:
            return None
        gaps = [starts[i + 1] - self.intervals[i][1] for i in range(len(starts) - 1)]
        return sum(gaps) / len(gaps)

    def __len__(self) -> int:
        return len(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        open_part = f", down since {self._down_since}" if self._down_since else ""
        return f"IntervalLedger({len(self.intervals)} intervals{open_part})"


class ProviderSlo:
    """One provider's downtime ledgers: client-observed and ground truth."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: breaker-edge feed — what the client could actually see
        self.observed = IntervalLedger()
        #: injected-schedule feed — what the simulation actually did
        self.scheduled = IntervalLedger()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProviderSlo({self.name!r}, observed={len(self.observed)}, "
            f"scheduled={len(self.scheduled)})"
        )


class TenantRollup:
    """Sliding-window SLO state for one service-plane tenant.

    Materialized lazily by :class:`SloTracker` the first time an
    :class:`~repro.metrics.collector.OpReport` arrives carrying that
    tenant's id (via :meth:`Scheme.tenant_context
    <repro.schemes.base.Scheme.tenant_context>`), so runs without the
    service plane never allocate one.  Tracks the same trailing window as
    the aggregate tracker: per-class availability plus a latency
    distribution for the p95 rollup.
    """

    def __init__(self, tenant: str, window: float) -> None:
        self.tenant = tenant
        self.window = window
        #: trailing window of ``(t, op_class, ok, elapsed)``
        self._ops: deque[tuple[float, str, bool, float]] = deque()

    def record(self, t: float, cls: str, ok: bool, elapsed: float) -> None:
        self._ops.append((float(t), cls, ok, float(elapsed)))
        cutoff = t - self.window
        ops = self._ops
        while ops and ops[0][0] < cutoff:
            ops.popleft()

    def window_ops(self, now: float, cls: str | None = None) -> list[tuple]:
        cutoff = now - self.window
        return [
            o for o in self._ops if o[0] >= cutoff and (cls is None or o[1] == cls)
        ]

    def availability(self, cls: str, now: float) -> float | None:
        """Windowed success fraction for one op class (None with no traffic)."""
        ops = self.window_ops(now, cls)
        if not ops:
            return None
        return sum(1 for o in ops if o[2]) / len(ops)

    def p95_latency(self, now: float) -> float | None:
        """p95 of windowed *successful* op latencies (None with no traffic)."""
        lats = sorted(o[3] for o in self.window_ops(now) if o[2])
        if not lats:
            return None
        return lats[int(0.95 * (len(lats) - 1))]

    def summary(self, now: float) -> dict[str, Any]:
        out: dict[str, Any] = {"ops": len(self.window_ops(now))}
        for cls in ("read", "write"):
            out[f"{cls}_availability"] = self.availability(cls, now)
        out["p95_latency"] = self.p95_latency(now)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantRollup({self.tenant!r}, ops={len(self._ops)})"


class SloTracker:
    """Sliding-window SLO state for one scheme run.

    Hooked in by :meth:`repro.schemes.base.Scheme.attach_slo`: completed
    operations arrive via :meth:`record_op`, failed public ops via
    :meth:`record_failure`, breaker transitions via
    :meth:`on_breaker_transition`.  All computations are over the trailing
    ``config.window`` sim-seconds; provider MTBF/MTTR is over the whole run
    (failures are too rare for a one-hour window to hold two of them).
    """

    def __init__(self, config: SloConfig | None = None) -> None:
        self.config = config if config is not None else SloConfig()
        self.registry = None
        self.clock = None
        self.providers: dict[str, ProviderSlo] = {}
        #: trailing window of ``(t, op_class, ok, degraded)``
        self._ops: deque[tuple[float, str, bool, bool]] = deque()
        #: per-tenant rollups, materialized lazily on the first attributed op
        self.tenants: dict[str, TenantRollup] = {}

    # ------------------------------------------------------------------ hooks
    def bind(self, registry, clock) -> None:
        """Called by ``Scheme.attach_slo``; gives :meth:`publish` its outlet."""
        self.registry = registry
        self.clock = clock

    def provider(self, name: str) -> ProviderSlo:
        p = self.providers.get(name)
        if p is None:
            p = self.providers[name] = ProviderSlo(name)
        return p

    def on_breaker_transition(self, provider: str, state: str, now: float) -> None:
        """Breaker edges are the client's best downtime estimate.

        ``open`` marks the provider down, ``closed`` marks it up again;
        ``half_open`` is a probe admission, not evidence either way.
        """
        ledger = self.provider(provider).observed
        if state == "open":
            ledger.mark_down(now)
        elif state == "closed":
            ledger.mark_up(now)

    def tenant(self, name: str) -> TenantRollup:
        """The rollup for ``name``, created on first use."""
        rollup = self.tenants.get(name)
        if rollup is None:
            rollup = self.tenants[name] = TenantRollup(name, self.config.window)
        return rollup

    def record_op(self, report, t: float) -> None:
        """Fold one completed :class:`~repro.metrics.collector.OpReport`."""
        cls = op_class(report.op)
        if cls is None:
            return
        self._ops.append((float(t), cls, True, report.degraded))
        self._evict(t)
        tenant = getattr(report, "tenant", None)
        if tenant is not None:
            self.tenant(tenant).record(t, cls, True, report.elapsed)

    def record_failure(self, op: str, t: float, tenant: str | None = None) -> None:
        """Fold one public op that raised (unavailability the user felt)."""
        cls = op_class(op)
        if cls is None:
            return
        self._ops.append((float(t), cls, False, False))
        self._evict(t)
        if tenant is not None:
            self.tenant(tenant).record(t, cls, False, 0.0)

    def ingest_ground_truth(self, providers, t0: float, t1: float) -> None:
        """Load the injected fault schedule into each ``scheduled`` ledger.

        ``providers`` is any iterable of
        :class:`~repro.cloud.provider.SimulatedProvider`.  Call once, after
        (or during) a run, with the sim-time range actually exercised.
        """
        for p in providers:
            ledger = self.provider(p.name).scheduled
            for a, b in p.scheduled_downtime(t0, t1):
                ledger.add_window(a, b)

    # ----------------------------------------------------------- computations
    def _evict(self, now: float) -> None:
        cutoff = now - self.config.window
        ops = self._ops
        while ops and ops[0][0] < cutoff:
            ops.popleft()

    def window_ops(self, now: float, cls: str | None = None) -> list[tuple]:
        """The retained ops in ``[now - window, now]``, optionally one class."""
        cutoff = now - self.config.window
        return [
            o for o in self._ops if o[0] >= cutoff and (cls is None or o[1] == cls)
        ]

    def availability(self, cls: str, now: float) -> float | None:
        """Windowed success fraction for one op class (None with no traffic)."""
        ops = self.window_ops(now, cls)
        if not ops:
            return None
        return sum(1 for o in ops if o[2]) / len(ops)

    def degraded_read_fraction(self, now: float) -> float | None:
        """Fraction of windowed successful reads that took a degraded path."""
        reads = [o for o in self.window_ops(now, "read") if o[2]]
        if not reads:
            return None
        return sum(1 for o in reads if o[3]) / len(reads)

    def error_budget_burn(self, cls: str, now: float) -> float | None:
        """Observed unavailability over the allowed unavailability.

        1.0 = consuming the budget exactly as fast as the SLO allows;
        0.0 = no budget burned this window; 10.0 = the window's budget is
        gone in a tenth of the time.
        """
        avail = self.availability(cls, now)
        if avail is None:
            return None
        return (1.0 - avail) / (1.0 - self.config.target(cls))

    # ---------------------------------------------------------------- outputs
    def publish(self, now: float | None = None) -> None:
        """Write the current SLO view into the registry as ``slo_*`` gauges.

        The sampler calls this just before every snapshot, so the time
        series (and the dashboard) carry the SLO state at each sample
        instant.  Quantities that are undefined (no traffic yet, fewer than
        two failures) are simply not set.
        """
        if self.registry is None:
            raise RuntimeError("SloTracker is not bound; call scheme.attach_slo")
        now = self.clock.now if now is None else now
        reg = self.registry
        for cls, gauge_name in (
            ("read", "slo_read_availability"),
            ("write", "slo_write_availability"),
        ):
            avail = self.availability(cls, now)
            if avail is not None:
                reg.gauge(gauge_name).set(avail)
            burn = self.error_budget_burn(cls, now)
            if burn is not None:
                reg.gauge("slo_error_budget_burn", op_class=cls).set(burn)
            reg.gauge("slo_window_ops", op_class=cls).set(
                len(self.window_ops(now, cls))
            )
        frac = self.degraded_read_fraction(now)
        if frac is not None:
            reg.gauge("slo_degraded_read_fraction").set(frac)
        for name, rollup in sorted(self.tenants.items()):
            for cls in ("read", "write"):
                avail = rollup.availability(cls, now)
                if avail is not None:
                    reg.gauge(
                        "tenant_slo_availability", op_class=cls, tenant=name
                    ).set(avail)
            p95 = rollup.p95_latency(now)
            if p95 is not None:
                reg.gauge("tenant_slo_p95_seconds", tenant=name).set(p95)
        for name, pslo in sorted(self.providers.items()):
            for feed, ledger in (
                ("observed", pslo.observed),
                ("scheduled", pslo.scheduled),
            ):
                reg.gauge(
                    "slo_provider_downtime_seconds", provider=name, feed=feed
                ).set(ledger.downtime(now))
                mttr = ledger.mttr()
                if mttr is not None:
                    reg.gauge(
                        "slo_provider_mttr_seconds", provider=name, feed=feed
                    ).set(mttr)
                mtbf = ledger.mtbf()
                if mtbf is not None:
                    reg.gauge(
                        "slo_provider_mtbf_seconds", provider=name, feed=feed
                    ).set(mtbf)

    def summary(self, now: float | None = None) -> dict[str, Any]:
        """One JSON-safe dict of the current SLO view (the drill verdict)."""
        if now is None:
            if self.clock is None:
                raise RuntimeError("summary() needs a time when unbound")
            now = self.clock.now
        out: dict[str, Any] = {
            "window": self.config.window,
            "now": now,
            "read": {
                "target": self.config.read_target,
                "availability": self.availability("read", now),
                "budget_burn": self.error_budget_burn("read", now),
                "ops": len(self.window_ops(now, "read")),
            },
            "write": {
                "target": self.config.write_target,
                "availability": self.availability("write", now),
                "budget_burn": self.error_budget_burn("write", now),
                "ops": len(self.window_ops(now, "write")),
            },
            "degraded_read_fraction": self.degraded_read_fraction(now),
            "providers": {},
        }
        for name, pslo in sorted(self.providers.items()):
            out["providers"][name] = {
                feed: {
                    "downtime": ledger.downtime(now),
                    "mtbf": ledger.mtbf(),
                    "mttr": ledger.mttr(),
                    "failures": len(ledger),
                }
                for feed, ledger in (
                    ("observed", pslo.observed),
                    ("scheduled", pslo.scheduled),
                )
            }
        if self.tenants:
            # Only present on service-plane runs, so single-client summaries
            # stay identical to pre-tenant ones.
            out["tenants"] = {
                name: rollup.summary(now)
                for name, rollup in sorted(self.tenants.items())
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SloTracker(window={self.config.window}, ops={len(self._ops)}, "
            f"providers={sorted(self.providers)})"
        )
