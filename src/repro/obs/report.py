"""Run reports: one renderable summary of everything a run emitted.

A :class:`RunReport` condenses a scheme run into the tables the paper's
evaluation reasons about — latency percentiles by operation, the
normal-vs-degraded split, the RTT-wait/transfer time breakdown, resilience
counters, and per-provider traffic — plus, when tracing was on, a
per-provider activity timeline and a flame summary of where simulated time
went.

Two constructors, one renderer:

- :meth:`RunReport.from_scheme` reads a live scheme (its collector,
  registry, and tracer);
- :meth:`RunReport.from_trace` replays a JSON-lines trace: metric events
  rebuild the registry, root ``op.*`` spans rebuild the
  :class:`~repro.metrics.collector.OpReport` stream.

Because the registry mirrors *every* mutation into the trace and JSON
round-trips floats exactly, the two paths produce byte-identical reports
for the same run — the round-trip guarantee the test suite enforces.

The ``repro report`` CLI subcommand wraps :func:`run_fault_storm_report`
(a traced HyRD run under the canonical fault storm) and can re-render any
saved trace with ``--from-trace``.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.metrics.collector import OpReport
from repro.metrics.registry import Histogram, MetricsRegistry
from repro.obs.trace import RecordingTracer, flame_summary

__all__ = ["RunReport", "run_fault_storm_report"]

_TIMELINE_BINS = 10


def render_table(headers, rows, title=None, floatfmt=".3f"):
    """Proxy for :func:`repro.analysis.tables.render_table`.

    Imported lazily: ``repro.analysis``'s package init pulls in the cost
    simulator, which imports the scheme layer — and the scheme layer imports
    ``repro.obs`` for the tracer.  Deferring the import breaks that cycle.
    """
    from repro.analysis.tables import render_table as _render

    return _render(headers, rows, title=title, floatfmt=floatfmt)


@dataclass
class RunReport:
    """Everything needed to render one run's summary.

    ``records`` is the raw trace (list of record dicts) when tracing was on,
    else ``None`` — the timeline and flame sections only render with it.
    """

    scheme: str
    seed: int | None
    reports: list[OpReport]
    registry: MetricsRegistry
    records: list[dict[str, Any]] | None = field(default=None, repr=False)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_scheme(cls, scheme) -> "RunReport":
        """Snapshot a live scheme (any :class:`repro.schemes.base.Scheme`)."""
        records = list(scheme.tracer.records) if scheme.tracer.enabled else None
        return cls(
            scheme=scheme.name,
            seed=scheme.seed,
            reports=list(scheme.collector.reports),
            registry=scheme.registry,
            records=records,
        )

    @classmethod
    def from_trace(cls, records: list[dict[str, Any]]) -> "RunReport":
        """Rebuild a report from trace records (see :func:`repro.obs.read_jsonl`).

        Metric events replay into a fresh registry; root ``op.*`` spans (the
        ones :meth:`Scheme._end_op` closes, carrying the full OpReport as
        attributes) rebuild the report stream in completion order.
        """
        meta: dict[str, Any] = {}
        registry = MetricsRegistry()
        reports: list[OpReport] = []
        for r in records:
            t = r.get("t")
            if t == "meta":
                meta.update(r["attrs"])
            elif t == "metric":
                registry.apply_event(
                    r["kind"], r["name"], dict(r["labels"]), r["value"]
                )
            elif t == "span" and r["end"] < r["start"]:
                raise ValueError(
                    f"span {r['id']} ({r['name']!r}) ends before it starts: "
                    f"start={r['start']}, end={r['end']} — clock misuse or a "
                    "corrupted trace"
                )
            elif (
                t == "span"
                and r["parent"] is None
                and r["name"].startswith("op.")
                and r["name"] != "op.error"
            ):
                a = r["attrs"]
                reports.append(
                    OpReport(
                        op=a["op"],
                        path=a["path"],
                        elapsed=a["elapsed"],
                        bytes_up=a["bytes_up"],
                        bytes_down=a["bytes_down"],
                        providers=tuple(a["providers"]),
                        degraded=a["degraded"],
                        cloud_ops=a["cloud_ops"],
                        rtt_wait=a["rtt_wait"],
                        transfer_time=a["transfer_time"],
                        retries=a["retries"],
                        hedged=a["hedged"],
                        tenant=a.get("tenant"),
                    )
                )
        return cls(
            scheme=str(meta.get("scheme", "?")),
            seed=meta.get("seed"),
            reports=reports,
            registry=registry,
            records=list(records),
        )

    # ----------------------------------------------------------------- render
    def render(self) -> str:
        """The full human-readable report."""
        parts = [self._header()]
        for section in (
            self._latency_section(),
            self._degraded_section(),
            self._time_breakdown_section(),
            self._attribution_section(),
            self._resilience_section(),
            self._provider_section(),
            self._timeline_section(),
            self._flame_section(),
        ):
            if section:
                parts.append(section)
        return "\n\n".join(parts)

    def _header(self) -> str:
        busy = sum(r.elapsed for r in self.reports)
        return (
            f"Run report — scheme={self.scheme} seed={self.seed} "
            f"ops={len(self.reports)} op_time={busy:.3f}s"
        )

    def _op_histograms(self) -> dict[str, Histogram]:
        out: dict[str, Histogram] = {}
        for m in self.registry.all_metrics():
            if isinstance(m, Histogram) and m.name == "op_latency_seconds":
                out[dict(m.labels).get("op", "")] = m
        return out

    def _latency_section(self) -> str:
        hists = self._op_histograms()
        if not hists:
            return ""
        rows = []
        for op in sorted(hists):
            s = hists[op].summary()
            rows.append(
                [op, int(s["count"]), s["mean"], s["p50"], s["p95"], s["p99"], s["max"]]
            )
        return render_table(
            ["Op", "Count", "Mean", "p50", "p95", "p99", "Max"],
            rows,
            title="Latency by op (s; p50/p95/p99 are bucket estimates)",
            floatfmt=".4f",
        )

    def _degraded_section(self) -> str:
        split = self.registry.breakdown("ops_total", "op", "degraded")
        if not split:
            return ""
        ops = sorted({op for op, _ in split})
        rows = []
        for op in ops:
            normal = split.get((op, "false"), 0)
            degraded = split.get((op, "true"), 0)
            total = normal + degraded
            rows.append([op, normal, degraded, degraded / total if total else 0.0])
        total_norm = sum(r[1] for r in rows)
        total_deg = sum(r[2] for r in rows)
        grand = total_norm + total_deg
        rows.append(
            ["(all)", total_norm, total_deg, total_deg / grand if grand else 0.0]
        )
        return render_table(
            ["Op", "Normal", "Degraded", "Degraded frac"],
            rows,
            title="Degraded split (ops that took a reconstruction/fallback path)",
            floatfmt=".3f",
        )

    def _time_breakdown_section(self) -> str:
        if not self.reports:
            return ""
        rtt = sum(r.rtt_wait for r in self.reports)
        transfer = sum(r.transfer_time for r in self.reports)
        total = sum(r.elapsed for r in self.reports)
        return render_table(
            ["RTT wait", "Transfer", "Total"],
            [[rtt, transfer, total]],
            title="Time breakdown (critical-path seconds, summed over ops)",
            floatfmt=".3f",
        )

    def _attribution_section(self) -> str:
        """Phase shares from the critical-path analyzer (traced runs only).

        The one-line summary version of ``repro explain``: each op's window
        decomposed into the fixed phase taxonomy, summed over the run.
        """
        if not self.records:
            return ""
        from repro.obs.attribution import PHASES, attribute_trace

        attr = attribute_trace(self.records)
        if not attr.ops:
            return ""
        totals = attr.totals()
        shares = attr.shares()
        rows = [
            [p, totals[p], f"{shares[p]:.1%}"]
            for p in PHASES
            if totals[p] > 0.0
        ]
        return render_table(
            ["Phase", "Seconds", "Share"],
            rows,
            title="Critical-path attribution (phases tile each op's wall-clock; "
            "see `repro explain`)",
            floatfmt=".3f",
        )

    def _resilience_section(self) -> str:
        counters = self.registry.counters()
        if not counters:
            return ""
        rows = [[name, value] for name, value in sorted(counters.items())]
        return render_table(
            ["Counter", "Value"], rows, title="Resilience counters"
        )

    def _provider_section(self) -> str:
        requests = self.registry.sum_by_label("provider_requests_total", "provider")
        if not requests:
            return ""
        errors = self.registry.sum_by_label("provider_errors_total", "provider")
        up = self.registry.sum_by_label("provider_bytes_up_total", "provider")
        down = self.registry.sum_by_label("provider_bytes_down_total", "provider")
        logged = self.registry.sum_by_label("write_log_entries_total", "provider")
        healed = self.registry.sum_by_label("heal_replayed_total", "provider")
        rows = [
            [
                name,
                requests.get(name, 0),
                errors.get(name, 0),
                up.get(name, 0),
                down.get(name, 0),
                logged.get(name, 0),
                healed.get(name, 0),
            ]
            for name in sorted(requests)
        ]
        return render_table(
            ["Provider", "Requests", "Errors", "Bytes up", "Bytes down",
             "Logged", "Healed"],
            rows,
            title="Per-provider traffic",
        )

    def _timeline_section(self) -> str:
        if not self.records:
            return ""
        spans = [
            r
            for r in self.records
            if r.get("t") == "span" and r["name"] == "request"
        ]
        if not spans:
            return ""
        t0 = min(r["start"] for r in spans)
        t1 = max(r["end"] for r in spans)
        width = max(t1 - t0, 1e-9)
        bins: dict[str, list[int]] = {}
        for r in spans:
            provider = r["attrs"].get("provider", "?")
            idx = min(
                int((r["start"] - t0) / width * _TIMELINE_BINS), _TIMELINE_BINS - 1
            )
            bins.setdefault(provider, [0] * _TIMELINE_BINS)[idx] += 1
        rows = [[name] + counts for name, counts in sorted(bins.items())]
        headers = ["Provider"] + [f"b{i}" for i in range(_TIMELINE_BINS)]
        return render_table(
            headers,
            rows,
            title=(
                f"Request timeline (requests started per bin; "
                f"sim t={t0:.1f}s..{t1:.1f}s, {_TIMELINE_BINS} bins)"
            ),
        )

    def _flame_section(self) -> str:
        if not self.records:
            return ""
        return "Flame summary (simulated seconds by span path)\n" + flame_summary(
            self.records
        )


def run_fault_storm_report(
    seed: int = 0, trace: bool = True, slo=None, sampler=None, observatory=None
) -> tuple[RunReport, "RecordingTracer | None"]:
    """Run HyRD through the canonical fault storm with tracing on.

    The same run as ``benchmarks/test_fault_storm.py``: a PostMark
    workload rides out a brownout, a transient-error burst, and a flapping
    provider, healing between operations.  Returns ``(report, tracer)`` —
    the tracer (or ``None`` when ``trace=False``) holds the JSON-lines
    exportable trace for ``repro report --trace-out``.

    ``slo`` optionally attaches an :class:`~repro.obs.slo.SloTracker` (it is
    fed the fleet's ground-truth fault schedule and published at end of run);
    ``sampler`` optionally attaches a
    :class:`~repro.obs.timeseries.TimeSeriesSampler` polled between ops —
    the live feed behind ``repro watch``; ``observatory`` optionally attaches
    a :class:`~repro.obs.attribution.ProviderLoadObservatory` (per-provider
    load gauges + exemplar linking, the live feed behind ``repro explain``).
    All default to None and, like the tracer, never perturb the simulated
    timings.

    Deterministic: the same seed reproduces the identical report and trace.
    """
    # Imports are local so repro.obs stays importable from the scheme layer
    # (schemes.base -> obs.trace) without a circular module chain.
    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.config import HyRDConfig
    from repro.core.resilience import ResilienceConfig
    from repro.faults import make_fault_storm
    from repro.schemes import HyrdScheme
    from repro.sim.clock import SimClock
    from repro.sim.rng import make_rng
    from repro.workloads.filesizes import LogUniformFileSizes
    from repro.workloads.postmark import PostMarkConfig, generate_postmark
    from repro.workloads.trace import TraceReplayer

    kb, mb = 1024, 1024 * 1024
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    config = HyRDConfig(
        size_threshold=256 * kb, resilience=ResilienceConfig(hedge_reads=True)
    )
    tracer = RecordingTracer(clock) if trace else None
    # Build against a healthy fleet, then land the storm mid-deployment —
    # otherwise the construction-time probes would classify the faulted
    # providers straight out of placement (see benchmarks/test_fault_storm.py).
    scheme = HyrdScheme(list(fleet.values()), clock, config=config, tracer=tracer)
    make_fault_storm(t0=15.0, duration=36000.0, seed=seed).apply(fleet)
    if slo is not None:
        scheme.attach_slo(slo)
    if observatory is not None:
        scheme.attach_observatory(observatory)
    if sampler is not None:
        sampler.slo = slo if sampler.slo is None else sampler.slo
        sampler.bind(scheme.registry, clock, meta={"scheme": scheme.name, "seed": seed})
    # Same workload as the benchmark: long enough to span the flapping
    # provider's downtime *and* its return, so the trace shows the breaker
    # trip, fast-fail and recover.
    ops = generate_postmark(
        PostMarkConfig(
            file_pool=15,
            transactions=120,
            sizes=LogUniformFileSizes(lo=64 * kb, hi=8 * mb),
        ),
        make_rng(seed, "fault-storm"),
    )
    TraceReplayer(seed=seed).run(scheme, ops, heal_between=True, sampler=sampler)
    if slo is not None:
        slo.ingest_ground_truth(fleet.values(), 0.0, clock.now)
        slo.publish(clock.now)
    if sampler is not None:
        sampler.finish()
    return RunReport.from_scheme(scheme), tracer
