"""Critical-path latency attribution and the per-provider load observatory.

Two halves, one module:

**Offline — critical-path attribution.**  :func:`attribute_trace` walks each
operation's span tree (root ``op.*`` spans from :mod:`repro.obs.trace`) and
partitions the op's wall-clock window into a fixed phase taxonomy
(:data:`PHASES`): dispatcher queueing, codec CPU, per-provider transfer,
retry/backoff sleep, hedge wait, and maintenance interference, with an
``other`` bucket for residual client-side serialization.  The partition is a
*timeline sweep*: every child span becomes a classified interval clipped to
the op window; the window is cut at every interval boundary and each
elementary segment is attributed to the highest-priority class covering it
(uncovered segments before the first cloud interval are ``queueing``, later
ones ``other``).  Because the segments tile the window by construction, the
phase durations sum to the op duration exactly — the analyzer machine-checks
the residual against float tolerance and raises :class:`CoverageError` on
any real gap.  Hedge legs that lost their race are classified ``hedge_wait``
(matched via ``hedge.fired`` / ``hedge.win`` events), and the cancelled wire
time that never advanced the clock is accounted *off-path* per provider from
``hedge.wasted`` events.

**Online — the load observatory.**  :class:`ProviderLoadObservatory` attaches
to a scheme (:meth:`repro.schemes.base.Scheme.attach_observatory`) and is fed
one call per executed phase.  Per provider it publishes an in-flight gauge,
a Little's-law queue-depth estimate (EWMA arrival rate x EWMA service time),
an EWMA service rate, and cumulative busy seconds (``provider_load_*``
gauges), maintains an empirical latency-vs-load curve which it pushes into
that provider's :class:`~repro.core.resilience.ProviderHealth`
(``load_curve`` — the signal ROADMAP's load-aware read scheduling consumes),
and links histogram-bucket exemplars: for each (op kind, latency bucket) it
retains the trace IDs of the first few representative operations.  Like the
tracer and the SLO tracker it is pure bookkeeping — no clock movement, no
RNG draws — so attaching it cannot change a run's simulated timings
(machine-checked in ``benchmarks/test_attribution_plane.py``).

``repro explain`` renders :func:`render_attribution` over a saved trace or a
live fault-storm run.  See ``docs/attribution.md`` for the prose guide.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.metrics.registry import DEFAULT_LATENCY_BUCKETS

__all__ = [
    "PHASES",
    "CoverageError",
    "OpAttribution",
    "AttributionReport",
    "attribute_trace",
    "render_attribution",
    "ExemplarStore",
    "ProviderLoadObservatory",
    "attributions_to_jsonl",
    "parse_attribution_jsonl",
    "read_attribution_jsonl",
]

#: The fixed phase taxonomy, in render order.  Every microsecond of an op's
#: wall-clock lands in exactly one of these.
PHASES = (
    "queueing",       # client-side dispatch/placement before the first cloud interval
    "codec_cpu",      # codec.encode / codec.decode spans (zero sim-seconds: client CPU)
    "transfer",       # covered by provider request spans on the surviving path
    "retry_backoff",  # backoff sleeps serialized into a request's retry chain
    "hedge_wait",     # covered only by a hedge leg that lost its race
    "maintenance",    # heal.replay consistency updates riding inside the op
    "other",          # residual client-side serialization between cloud intervals
)

#: Sweep priority: when intervals overlap, the higher class owns the segment.
#: Maintenance wraps the requests it replays; backoff sleeps nest inside their
#: request's penalty chain; a winning request overrides the losing hedge leg.
_PRIORITY = {
    "maintenance": 5,
    "retry_backoff": 4,
    "codec_cpu": 3,
    "transfer": 2,
    "hedge_wait": 1,
}

#: |phase-sum - duration| above ``tol * max(1, duration)`` is a real gap, not
#: float noise, and fails the analyzer.
COVERAGE_TOLERANCE = 1e-9


class CoverageError(ValueError):
    """The phase partition failed to tile an op's wall-clock window."""


# --------------------------------------------------------------------- records
@dataclass(frozen=True)
class OpAttribution:
    """One operation's wall-clock, decomposed.

    ``phases`` maps every name in :data:`PHASES` to attributed seconds (the
    values tile ``[start, start + duration]``); ``providers`` splits the
    ``transfer`` phase by the provider owning each critical segment;
    ``hedge_wasted`` is *off-path* — cancelled hedge-leg wire seconds per
    provider that never advanced the clock and are therefore not part of the
    coverage partition.  ``trace_id`` is the root span's id, the link an
    exemplar or slow-op digest follows back into the trace file.
    """

    trace_id: int
    op: str
    path: str
    start: float
    duration: float
    phases: dict[str, float]
    providers: dict[str, float]
    requests: int
    retries: int
    fast_fails: int
    hedged: bool
    degraded: bool
    hedge_wasted: dict[str, float]
    coverage_error: float

    @property
    def hedge_wasted_total(self) -> float:
        return math.fsum(self.hedge_wasted.values())

    def dominant_phase(self) -> str:
        """The phase owning the most time (ties resolve in PHASES order)."""
        return max(PHASES, key=lambda p: (self.phases.get(p, 0.0), -PHASES.index(p)))

    def to_record(self) -> dict[str, Any]:
        return {
            "t": "op_attribution",
            "trace_id": self.trace_id,
            "op": self.op,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "phases": dict(self.phases),
            "providers": dict(self.providers),
            "requests": self.requests,
            "retries": self.retries,
            "fast_fails": self.fast_fails,
            "hedged": self.hedged,
            "degraded": self.degraded,
            "hedge_wasted": dict(self.hedge_wasted),
            "coverage_error": self.coverage_error,
        }

    @classmethod
    def from_record(cls, r: dict[str, Any]) -> "OpAttribution":
        return cls(
            trace_id=r["trace_id"],
            op=r["op"],
            path=r["path"],
            start=r["start"],
            duration=r["duration"],
            phases=dict(r["phases"]),
            providers=dict(r["providers"]),
            requests=r["requests"],
            retries=r["retries"],
            fast_fails=r["fast_fails"],
            hedged=r["hedged"],
            degraded=r["degraded"],
            hedge_wasted=dict(r["hedge_wasted"]),
            coverage_error=r["coverage_error"],
        )


def attributions_to_jsonl(ops: Iterable[OpAttribution]) -> str:
    """Attribution records as JSON-lines (same canonical form as traces).

    ``json`` renders floats with ``repr`` (shortest round-trip), so
    parse -> re-dump is byte-identical — the property the test suite holds.
    """
    return "\n".join(
        json.dumps(o.to_record(), separators=(",", ":"), sort_keys=True)
        for o in ops
    )


def parse_attribution_jsonl(lines: Iterable[str]) -> list[OpAttribution]:
    """Inverse of :func:`attributions_to_jsonl`; blank lines are skipped."""
    out = []
    for line in lines:
        if not line.strip():
            continue
        r = json.loads(line)
        if r.get("t") != "op_attribution":
            raise ValueError(f"not an attribution record: {r.get('t')!r}")
        out.append(OpAttribution.from_record(r))
    return out


def read_attribution_jsonl(path) -> list[OpAttribution]:
    with open(path, "r", encoding="utf-8") as fp:
        return parse_attribution_jsonl(fp)


# -------------------------------------------------------------------- analyzer
def _classify(span: dict[str, Any], loser_ids: set[int]) -> str | None:
    """The sweep class of one descendant span, or None for unclassified."""
    name = span["name"]
    if name == "heal.replay":
        return "maintenance"
    if name == "retry.wait":
        return "retry_backoff"
    if name.startswith("codec."):
        return "codec_cpu"
    if name == "request":
        return "hedge_wait" if span["id"] in loser_ids else "transfer"
    return None


def _hedge_losers(
    events: list[tuple[int, dict[str, Any]]],
    requests: list[tuple[int, dict[str, Any]]],
) -> set[int]:
    """Span ids of hedge legs that lost their race, inside one op.

    ``events`` / ``requests`` carry original record indices, so the pairing
    follows emission order: the primary leg's request span is recorded
    *before* its ``hedge.fired`` event, the backup leg's after it.  A
    ``hedge.win`` before the next ``hedge.fired`` means the backup won (the
    primary leg lost); no win means the primary won or both legs failed —
    either way the backup leg is the one whose wire time was never waited
    on.
    """
    losers: set[int] = set()
    fired = [(i, e) for i, e in events if e["name"] == "hedge.fired"]
    wins = [i for i, e in events if e["name"] == "hedge.win"]
    for n, (fi, ev) in enumerate(fired):
        next_fi = fired[n + 1][0] if n + 1 < len(fired) else None
        won = any(fi < wi and (next_fi is None or wi < next_fi) for wi in wins)
        loser_name = ev["attrs"]["primary"] if won else ev["attrs"]["backup"]
        if won:
            # Primary leg: the last matching request recorded before the event.
            leg = next(
                (s for i, s in reversed(requests)
                 if i < fi and s["attrs"].get("provider") == loser_name),
                None,
            )
        else:
            # Backup leg: the first matching request recorded after the event.
            leg = next(
                (s for i, s in requests
                 if i > fi and s["attrs"].get("provider") == loser_name),
                None,
            )
        if leg is not None:
            losers.add(leg["id"])
    return losers


def _attribute_root(
    root: dict[str, Any],
    descendants: list[dict[str, Any]],
    events: list[tuple[int, dict[str, Any]]],
) -> OpAttribution:
    r0, r1 = root["start"], root["end"]
    duration = r1 - r0
    attrs = root["attrs"]

    requests = [
        (i, s) for i, s in ((s.get("_idx", 0), s) for s in descendants)
        if s["name"] == "request"
    ]
    loser_ids = _hedge_losers(events, requests)

    # Classified intervals, clipped to the op window.
    ivs: list[tuple[float, float, str, str | None]] = []
    n_requests = n_retries = n_fast_fails = 0
    for s in descendants:
        name = s["name"]
        if name == "request":
            n_requests += 1
        elif name == "retry.wait":
            n_retries += 1
        elif name == "breaker.fast_fail":
            n_fast_fails += 1
        cls = _classify(s, loser_ids)
        if cls is None:
            continue
        a, b = max(s["start"], r0), min(s["end"], r1)
        if b <= a:
            continue
        ivs.append((a, b, cls, s["attrs"].get("provider")))

    bounds = sorted({r0, r1, *(a for a, _, _, _ in ivs), *(b for _, b, _, _ in ivs)})
    first_cover = min((a for a, _, _, _ in ivs), default=r1)

    phases = {p: 0.0 for p in PHASES}
    providers: dict[str, float] = {}
    for x, y in zip(bounds, bounds[1:]):
        if y <= r0 or x >= r1:
            continue  # pragma: no cover - bounds are pre-clipped
        covering = [iv for iv in ivs if iv[0] <= x and iv[1] >= y]
        if not covering:
            cls = "queueing" if y <= first_cover else "other"
            phases[cls] += y - x
            continue
        top = max(_PRIORITY[c] for _, _, c, _ in covering)
        cls = next(c for c in _PRIORITY if _PRIORITY[c] == top)
        phases[cls] += y - x
        if cls == "transfer":
            # The critical request in this segment is the latest-finishing
            # one (ties break on provider name, for determinism).
            _, _, _, prov = max(
                (iv for iv in covering if iv[2] == "transfer"),
                key=lambda iv: (iv[1], iv[3] or ""),
            )
            if prov is not None:
                providers[prov] = providers.get(prov, 0.0) + (y - x)

    residual = duration - math.fsum(phases.values())
    if abs(residual) > COVERAGE_TOLERANCE * max(1.0, duration):
        raise CoverageError(
            f"phase partition of {attrs.get('op')}:{attrs.get('path')} "
            f"(trace id {root['id']}) misses {residual:.3e}s of a "
            f"{duration:.6f}s window"
        )

    wasted: dict[str, float] = {}
    for _, e in events:
        if e["name"] == "hedge.wasted":
            p = e["attrs"]["provider"]
            wasted[p] = wasted.get(p, 0.0) + e["attrs"]["wasted"]

    return OpAttribution(
        trace_id=root["id"],
        op=attrs.get("op", root["name"].removeprefix("op.")),
        path=attrs.get("path", "?"),
        start=r0,
        duration=duration,
        phases=phases,
        providers=providers,
        requests=n_requests,
        retries=n_retries,
        fast_fails=n_fast_fails,
        hedged=bool(attrs.get("hedged", False)),
        degraded=bool(attrs.get("degraded", False)),
        hedge_wasted=wasted,
        coverage_error=residual,
    )


@dataclass
class AttributionReport:
    """Every op's attribution plus trace-level aggregates."""

    ops: list[OpAttribution]
    #: provider -> {"requests", "busy_s", "critical_s", "wasted_s"} — raw
    #: request-span load (busy wire seconds, hedge legs included) next to the
    #: critical-path share that actually gated op completion.
    provider_stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def total_duration(self) -> float:
        return math.fsum(o.duration for o in self.ops)

    def totals(self) -> dict[str, float]:
        """Attributed seconds per phase, summed over every op."""
        return {
            p: math.fsum(o.phases.get(p, 0.0) for o in self.ops) for p in PHASES
        }

    def shares(self) -> dict[str, float]:
        """Phase fractions of total attributed op time (0 when no ops ran)."""
        total = self.total_duration()
        if total <= 0.0:
            return {p: 0.0 for p in PHASES}
        return {p: s / total for p, s in self.totals().items()}

    def by_op(self) -> dict[str, dict[str, Any]]:
        """Per op kind: count, total seconds, and the phase split."""
        out: dict[str, dict[str, Any]] = {}
        for o in self.ops:
            cell = out.setdefault(
                o.op,
                {"count": 0, "seconds": 0.0, "phases": {p: 0.0 for p in PHASES}},
            )
            cell["count"] += 1
            cell["seconds"] += o.duration
            for p in PHASES:
                cell["phases"][p] += o.phases.get(p, 0.0)
        return out

    def hedge_wasted_totals(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for o in self.ops:
            for p, w in o.hedge_wasted.items():
                out[p] = out.get(p, 0.0) + w
        return out

    def top_slow(self, k: int = 5) -> list[OpAttribution]:
        """The k slowest ops (ties break on trace id, for determinism)."""
        return sorted(self.ops, key=lambda o: (-o.duration, o.trace_id))[:k]


def attribute_trace(records: Iterable[dict[str, Any]]) -> AttributionReport:
    """Attribute every completed op in a trace (live records or parsed JSONL).

    Meta/metric records pass through untouched; ``op.error`` roots (aborted
    operations) are skipped — their window has no completion to attribute.
    Raises :class:`CoverageError` if any op's partition fails to tile its
    window, and ``ValueError`` on spans that end before they start.
    """
    spans: list[dict[str, Any]] = []
    events: list[tuple[int, dict[str, Any]]] = []
    for idx, r in enumerate(records):
        t = r.get("t")
        if t == "span":
            if r["end"] < r["start"]:
                raise ValueError(
                    f"span {r['id']} ({r['name']!r}) ends before it starts"
                )
            s = dict(r)
            s["_idx"] = idx
            spans.append(s)
        elif t == "event":
            events.append((idx, r))

    by_id = {s["id"]: s for s in spans}

    def root_of(s: dict[str, Any]) -> int | None:
        seen = set()
        while s["parent"] is not None:
            if s["id"] in seen:  # pragma: no cover - corrupted trace
                return None
            seen.add(s["id"])
            parent = by_id.get(s["parent"])
            if parent is None:
                return None
            s = parent
        return s["id"]

    roots = [
        s
        for s in spans
        if s["parent"] is None
        and s["name"].startswith("op.")
        and s["name"] != "op.error"
    ]
    descendants: dict[int, list[dict[str, Any]]] = {s["id"]: [] for s in roots}
    for s in spans:
        if s["parent"] is None:
            continue
        rid = root_of(s)
        if rid in descendants:
            descendants[rid].append(s)

    # Prefer each event's recorded enclosing-span pointer (walked up to its
    # root); fall back to the first op window (by start time) containing the
    # timestamp for traces written before events carried ``span`` — the
    # fallback is ambiguous exactly when two ops share a boundary instant.
    ordered_roots = sorted(roots, key=lambda s: (s["start"], s["id"]))
    root_events: dict[int, list[tuple[int, dict[str, Any]]]] = {
        s["id"]: [] for s in roots
    }
    for idx, e in events:
        sid = e.get("span")
        if sid is not None and sid in by_id:
            rid = root_of(by_id[sid])
            if rid in root_events:
                root_events[rid].append((idx, e))
            continue
        t = e["time"]
        owner = next(
            (s for s in ordered_roots if s["start"] <= t <= s["end"]), None
        )
        if owner is not None:
            root_events[owner["id"]].append((idx, e))

    ops = [
        _attribute_root(s, descendants[s["id"]], root_events[s["id"]])
        for s in sorted(roots, key=lambda s: s["_idx"])
    ]

    stats: dict[str, dict[str, float]] = {}
    for rid, kids in descendants.items():
        r0, r1 = by_id[rid]["start"], by_id[rid]["end"]
        for s in kids:
            if s["name"] != "request":
                continue
            p = s["attrs"].get("provider", "?")
            cell = stats.setdefault(
                p, {"requests": 0, "busy_s": 0.0, "critical_s": 0.0, "wasted_s": 0.0}
            )
            cell["requests"] += 1
            cell["busy_s"] += max(min(s["end"], r1) - max(s["start"], r0), 0.0)
    for o in ops:
        for p, secs in o.providers.items():
            cell = stats.setdefault(
                p, {"requests": 0, "busy_s": 0.0, "critical_s": 0.0, "wasted_s": 0.0}
            )
            cell["critical_s"] += secs
        for p, w in o.hedge_wasted.items():
            cell = stats.setdefault(
                p, {"requests": 0, "busy_s": 0.0, "critical_s": 0.0, "wasted_s": 0.0}
            )
            cell["wasted_s"] += w
    return AttributionReport(ops=ops, provider_stats=stats)


# -------------------------------------------------------------------- exemplars
class ExemplarStore:
    """Trace-ID exemplars per (op kind, latency-histogram bucket).

    Mirrors the ``op_latency_seconds`` histogram's fixed bucket bounds: for
    each bucket an op latency falls into, the store retains the first
    ``per_bucket`` trace IDs — deterministic representatives a debugging
    session can pull out of the trace file (``repro explain`` links them in
    the slow-op digest).
    """

    def __init__(self, per_bucket: int = 2) -> None:
        if per_bucket < 1:
            raise ValueError("per_bucket must be >= 1")
        self.per_bucket = per_bucket
        self.bounds = DEFAULT_LATENCY_BUCKETS
        self._cells: dict[tuple[str, str], list[tuple[int | None, float]]] = {}

    def bucket_label(self, latency: float) -> str:
        for bound in self.bounds:
            if latency <= bound:
                return f"le={bound:g}"
        return "le=+inf"

    def record(self, op: str, latency: float, trace_id: int | None) -> bool:
        """Offer one op as an exemplar; True when it was retained."""
        key = (op, self.bucket_label(latency))
        cell = self._cells.setdefault(key, [])
        if len(cell) >= self.per_bucket:
            return False
        cell.append((trace_id, latency))
        return True

    def exemplars(self) -> dict[str, dict[str, list[tuple[int | None, float]]]]:
        """op kind -> bucket label -> retained (trace_id, latency) pairs."""
        out: dict[str, dict[str, list[tuple[int | None, float]]]] = {}
        for (op, bucket), cell in sorted(self._cells.items()):
            out.setdefault(op, {})[bucket] = list(cell)
        return out

    def lookup(self, op: str, latency: float) -> list[int]:
        """Trace IDs representative of ``latency``'s bucket for ``op``."""
        cell = self._cells.get((op, self.bucket_label(latency)), [])
        return [tid for tid, _ in cell if tid is not None]


# ------------------------------------------------------------- load observatory
class _LoadStats:
    """Mutable per-provider load state inside the observatory."""

    __slots__ = (
        "requests", "busy", "peak", "last_arrival",
        "service", "interarrival", "curve",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.busy = 0.0
        self.peak = 0
        self.last_arrival: float | None = None
        self.service: float | None = None        # EWMA per-request seconds
        self.interarrival: float | None = None   # EWMA seconds between arrivals
        self.curve: dict[int, tuple[int, float]] = {}  # level -> (n, ewma lat)


class ProviderLoadObservatory:
    """Per-provider load sensing, fed one call per executed phase.

    Publishes, per provider (all under ``provider_load_*``):

    - ``inflight`` — concurrent requests in the most recent phase touching
      the provider (the sim executes whole phases, so this is the
      instantaneous parallelism the provider actually saw);
    - ``queue_depth`` — Little's-law estimate: EWMA arrival rate x EWMA
      service time;
    - ``service_rate`` — 1 / EWMA service time, requests per second;
    - ``busy_seconds`` — cumulative request wire seconds observed.

    It also maintains an empirical latency-vs-load curve (EWMA of mean
    request latency at each observed concurrency level) and pushes it into
    the provider's :class:`~repro.core.resilience.ProviderHealth` via
    ``note_load_curve`` — passive telemetry today, the input ROADMAP's
    load-aware coded-read scheduling will consume.  Attach via
    :meth:`repro.schemes.base.Scheme.attach_observatory`; detached runs are
    byte-identical (the engine's only cost is one ``is not None`` test).
    """

    def __init__(self, alpha: float = 0.2, exemplars_per_bucket: int = 2) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.exemplars = ExemplarStore(exemplars_per_bucket)
        self.registry = None
        self.clock = None
        self.health: dict[str, Any] = {}
        self._stats: dict[str, _LoadStats] = {}

    # ----------------------------------------------------------------- wiring
    def bind(self, registry, clock, health=None) -> None:
        """Called by ``attach_observatory``; safe to call before any feed."""
        self.registry = registry
        self.clock = clock
        self.health = dict(health) if health else {}

    # ------------------------------------------------------------------ feeds
    def on_phase(self, now: float, outcomes) -> None:
        """Fold one executed phase's outcomes into the per-provider stats.

        ``outcomes`` are the phase's :class:`~repro.schemes.base.OpOutcome`
        objects; each request's ``finish`` is its wire time relative to the
        phase start (0 for client-side fast-fails, which were never in
        flight).
        """
        per: dict[str, list[float]] = {}
        for o in outcomes:
            per.setdefault(o.op.provider, []).append(o.finish)
        for provider, finishes in per.items():
            self._update(provider, now, finishes)

    def _update(self, provider: str, now: float, finishes: list[float]) -> None:
        st = self._stats.setdefault(provider, _LoadStats())
        alpha = self.alpha
        inflight = sum(1 for f in finishes if f > 0.0)
        done = [f for f in finishes if f > 0.0]
        st.requests += len(finishes)
        st.peak = max(st.peak, inflight)
        st.busy += sum(done)
        for f in done:
            st.service = f if st.service is None else st.service + alpha * (f - st.service)
        if st.last_arrival is not None and now > st.last_arrival and finishes:
            gap = (now - st.last_arrival) / len(finishes)
            st.interarrival = (
                gap
                if st.interarrival is None
                else st.interarrival + alpha * (gap - st.interarrival)
            )
        st.last_arrival = now
        if done:
            mean_lat = sum(done) / len(done)
            n, ewma = st.curve.get(inflight, (0, 0.0))
            ewma = mean_lat if n == 0 else ewma + alpha * (mean_lat - ewma)
            st.curve[inflight] = (n + 1, ewma)
            health = self.health.get(provider)
            if health is not None:
                health.note_load_curve(self.latency_vs_load(provider))
        if self.registry is not None:
            g = self.registry.gauge
            g("provider_load_inflight", provider=provider).set(float(inflight))
            g("provider_load_busy_seconds", provider=provider).set(st.busy)
            if st.service is not None and st.service > 0.0:
                g("provider_load_service_rate", provider=provider).set(
                    1.0 / st.service
                )
            g("provider_load_queue_depth", provider=provider).set(
                self.queue_depth(provider)
            )

    def on_op(self, report, trace_id: int | None) -> None:
        """Offer one completed op as a latency-bucket exemplar."""
        if self.exemplars.record(report.op, report.elapsed, trace_id):
            if self.registry is not None:
                self.registry.counter(
                    "attribution_exemplars_total", op=report.op
                ).inc()

    # ---------------------------------------------------------------- queries
    def providers(self) -> list[str]:
        return sorted(self._stats)

    def queue_depth(self, provider: str) -> float:
        """Little's law: L = lambda x W (0 until both EWMAs have samples)."""
        st = self._stats.get(provider)
        if (
            st is None
            or st.service is None
            or st.interarrival is None
            or st.interarrival <= 0.0
        ):
            return 0.0
        return st.service / st.interarrival

    def service_rate(self, provider: str) -> float:
        st = self._stats.get(provider)
        if st is None or st.service is None or st.service <= 0.0:
            return 0.0
        return 1.0 / st.service

    def latency_vs_load(self, provider: str) -> tuple[tuple[int, float, int], ...]:
        """Empirical curve: (concurrency level, EWMA latency, samples)."""
        st = self._stats.get(provider)
        if st is None:
            return ()
        return tuple(
            (level, ewma, n) for level, (n, ewma) in sorted(st.curve.items())
        )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """One row per provider for panels: gauges plus lifetime aggregates."""
        out: dict[str, dict[str, float]] = {}
        for provider, st in sorted(self._stats.items()):
            out[provider] = {
                "requests": float(st.requests),
                "busy_s": st.busy,
                "peak_inflight": float(st.peak),
                "queue_depth": self.queue_depth(provider),
                "service_rate": self.service_rate(provider),
            }
        return out


# -------------------------------------------------------------------- rendering
def _render_table(headers, rows, title=None, floatfmt=".3f"):
    from repro.obs.report import render_table

    return render_table(headers, rows, title=title, floatfmt=floatfmt)


def _breakdown_label(o: OpAttribution) -> str:
    """Compact 'transfer 71% (aliyun), retry_backoff 22%' phase summary."""
    parts = []
    for p in PHASES:
        secs = o.phases.get(p, 0.0)
        if o.duration <= 0.0 or secs / o.duration < 0.005:
            continue
        label = f"{p} {secs / o.duration:.0%}"
        if p == "transfer" and o.providers:
            top = max(sorted(o.providers), key=lambda k: o.providers[k])
            label += f" ({top})"
        parts.append((secs, label))
    return ", ".join(label for _, label in sorted(parts, key=lambda c: -c[0])) or "-"


def render_attribution(
    report: AttributionReport,
    top: int = 5,
    observatory: ProviderLoadObservatory | None = None,
) -> str:
    """The ``repro explain`` view: phase tables, slow-op digest, load panel."""
    if not report.ops:
        return "attribution — (no completed ops in trace)"
    total = report.total_duration()
    worst = max(abs(o.coverage_error) for o in report.ops)
    parts = [
        f"Critical-path attribution — ops={len(report.ops)} "
        f"op_time={total:.3f}s coverage_residual_max={worst:.1e}s"
    ]

    totals = report.totals()
    shares = report.shares()
    parts.append(
        _render_table(
            ["Phase", "Seconds", "Share"],
            [[p, totals[p], f"{shares[p]:.1%}"] for p in PHASES],
            title="Where the time went (phases tile each op's wall-clock)",
            floatfmt=".3f",
        )
    )

    rows = []
    for op, cell in sorted(report.by_op().items()):
        r = [op, cell["count"], cell["seconds"]]
        r += [cell["phases"][p] for p in PHASES]
        rows.append(r)
    parts.append(
        _render_table(
            ["Op", "Count", "Total"] + list(PHASES),
            rows,
            title="Per-op-kind phase seconds",
            floatfmt=".3f",
        )
    )

    digest = []
    for o in report.top_slow(top):
        digest.append(
            [
                o.trace_id,
                o.op,
                o.path,
                o.duration,
                _breakdown_label(o),
                o.hedge_wasted_total,
            ]
        )
    parts.append(
        _render_table(
            ["Trace id", "Op", "Path", "Elapsed", "Breakdown", "Wasted"],
            digest,
            title=f"Top-{min(top, len(report.ops))} slow ops (trace id links into the span file)",
            floatfmt=".3f",
        )
    )

    wasted = report.hedge_wasted_totals()
    live = observatory.snapshot() if observatory is not None else {}
    providers = sorted(set(report.provider_stats) | set(live))
    if providers:
        rows = []
        for p in providers:
            st = report.provider_stats.get(
                p, {"requests": 0, "busy_s": 0.0, "critical_s": 0.0, "wasted_s": 0.0}
            )
            lv = live.get(p)
            rows.append(
                [
                    p,
                    int(st["requests"]),
                    st["busy_s"],
                    st["critical_s"],
                    wasted.get(p, st["wasted_s"]),
                    f"{lv['queue_depth']:.2f}" if lv else "-",
                    f"{lv['service_rate']:.2f}" if lv else "-",
                    f"{int(lv['peak_inflight'])}" if lv else "-",
                ]
            )
        parts.append(
            _render_table(
                ["Provider", "Requests", "Busy", "Critical", "Wasted",
                 "Queue", "Svc rate", "Peak"],
                rows,
                title="Per-provider load (busy = wire seconds incl. hedge legs; "
                "critical = seconds gating op completion)",
                floatfmt=".3f",
            )
        )

    if observatory is not None:
        ex = observatory.exemplars.exemplars()
        lines = ["Exemplars (op / latency bucket -> trace ids)"]
        for op, buckets in ex.items():
            for bucket, cell in buckets.items():
                ids = ", ".join(str(tid) for tid, _ in cell if tid is not None)
                if ids:
                    lines.append(f"  {op:<10} {bucket:<10} {ids}")
        if len(lines) > 1:
            parts.append("\n".join(lines))
    return "\n\n".join(parts)
