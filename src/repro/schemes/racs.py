"""RACS: RAID5-style striping across all providers (baseline [1]).

*"RACS transparently stripes data across multiple cloud storage providers
with RAID-like techniques used by disks and file systems."*  Every object —
large file, small file, metadata group alike — is split into k = n-1 data
fragments plus one parity fragment, one per provider.  That buys parallel
transfer for large objects and 1.33x storage overhead, but:

- small objects pay n round-trips for k tiny fragments (RTT-bound);
- in-place updates are read-modify-write — the paper's "4 accesses";
- any read touching an out provider becomes a reconstruction that pulls
  fragments from *all* survivors (the degraded-read traffic of Figure 6).
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.erasure.raid5 import Raid5Code
from repro.fs.namespace import FileEntry
from repro.schemes.base import Scheme
from repro.sim.clock import SimClock

__all__ = ["RacsScheme"]


class RacsScheme(Scheme):
    """RAID5 (k = n-1 data + 1 parity) over the whole Cloud-of-Clouds."""

    name = "racs"

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        if len(providers) < 3:
            raise ValueError(f"RACS RAID5 needs >= 3 providers, got {len(providers)}")
        super().__init__(providers, clock, link, seed, **kwargs)  # type: ignore[arg-type]
        self.codec = Raid5Code(k=len(providers) - 1)
        self.stripe_providers = list(self.provider_names)

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        return self.codec

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        placements, digests = self._write_striped(
            path, data, self.codec, self.stripe_providers, version
        )
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="raid5",
            codec_params=(("k", self.codec.k),),
            placements=tuple(placements),
            klass="striped",
            created=prev.created if prev else now,
            modified=now,
            digests=digests,
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        return self._read_striped(
            entry.path,
            entry.size,
            self.codec,
            list(entry.placements),
            entry.version,
            digests=entry.digests or None,
        )

    def _update_file(
        self, entry: FileEntry, offset: int, patch: bytes, new_content: bytes
    ) -> FileEntry:
        if len(new_content) == entry.size:
            return self._rmw_striped(entry, offset, patch, new_content, self.codec)
        # Growth changes shard boundaries: restripe the whole object.
        return self._put_file(entry.path, new_content, entry)

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=False
        )

    # ------------------------------------------------------------- metadata
    def _meta_write_targets(self) -> list[str]:
        return list(self.stripe_providers)

    def _meta_codec(self) -> ErasureCodec | None:
        # RACS treats metadata like any other object: striped.
        return self.codec
