"""Redundant data distribution schemes over a Cloud-of-Clouds.

All schemes share one substrate (simulated providers, fair-share client
link, metered billing) and one public API (:class:`repro.schemes.base.Scheme`)
so that Figure 4 (cost) and Figure 6 (latency) compare like with like:

- :class:`SingleCloudScheme` -- one provider, no redundancy (the baselines'
  baseline; Amazon S3 is Figure 6's normalisation reference)
- :class:`DuraCloudScheme`   -- full replication on two providers [10]
- :class:`RacsScheme`        -- RAID5 striping over all providers [1]
- :class:`DepSkyScheme`      -- quorum replication over all providers [7]
- :class:`NCCloudScheme`     -- FMSR regenerating codes [16]
- :class:`HyrdScheme`        -- this paper (alias of repro.core.HyRDClient)
"""

from typing import Any

from repro.schemes.base import DataUnavailable, Scheme
from repro.schemes.depsky import DepSkyScheme
from repro.schemes.depsky_ca import DepSkyCAScheme
from repro.schemes.duracloud import DuraCloudScheme
from repro.schemes.nccloud import NCCloudScheme
from repro.schemes.racs import RacsScheme
from repro.schemes.single import SingleCloudScheme


def __getattr__(name: str) -> Any:
    # HyrdScheme wraps repro.core.hyrd, which itself builds on
    # repro.schemes.base — resolve it lazily to keep the import DAG acyclic.
    if name == "HyrdScheme":
        from repro.schemes.hyrd_scheme import HyrdScheme

        return HyrdScheme
    raise AttributeError(f"module 'repro.schemes' has no attribute {name!r}")

__all__ = [
    "DataUnavailable",
    "DepSkyCAScheme",
    "DepSkyScheme",
    "DuraCloudScheme",
    "HyrdScheme",
    "NCCloudScheme",
    "RacsScheme",
    "Scheme",
    "SingleCloudScheme",
]
