"""HyRD exposed alongside the baselines.

:class:`HyrdScheme` *is* :class:`repro.core.hyrd.HyRDClient`; the alias
exists so experiment code can enumerate every scheme from one package.
"""

from __future__ import annotations

from repro.core.hyrd import HyRDClient

__all__ = ["HyrdScheme"]


class HyrdScheme(HyRDClient):
    """The paper's scheme, under the schemes namespace."""
