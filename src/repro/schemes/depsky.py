"""DepSky-style quorum replication (baseline [7]).

DepSky-A replicates every object on all n clouds and uses Byzantine quorum
protocols: a write is acknowledged once ``n - f`` providers have it, a read
fetches the value from the fastest cloud while cross-checking version
metadata on ``f`` others.  We reproduce the availability/latency behaviour
of that protocol (f = 1 by default) on the shared substrate; the
cryptographic integrity machinery is out of scope for the paper's
comparison, which cites DepSky for its replication cost profile (Table I:
easy recovery, high cost, low performance for large accesses).

The quorum matters for latency: a write completes at the (n-f)-th fastest
upload — the straggler cloud finishes in the background — which is modelled
by advancing the clock to the quorum completion, not the phase maximum.
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.fs.namespace import FileEntry
from repro.schemes.base import CloudOp, DataUnavailable, Scheme
from repro.sim.clock import SimClock

__all__ = ["DepSkyScheme"]


class DepSkyScheme(Scheme):
    """n-way replication with (n - f) write quorums and verified reads."""

    name = "depsky"

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        f: int = 1,
        **kwargs: object,
    ) -> None:
        if len(providers) < 2 * f + 1:
            raise ValueError(
                f"DepSky with f={f} needs >= {2 * f + 1} providers, got {len(providers)}"
            )
        super().__init__(providers, clock, link, seed, **kwargs)  # type: ignore[arg-type]
        self.f = f
        self.replicas = list(self.provider_names)

    @property
    def write_quorum(self) -> int:
        return len(self.replicas) - self.f

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        return None

    def _quorum_write(self, key: str, data: bytes) -> list[tuple[str, int]]:
        self._heal_before_touching(set(self.replicas))
        ops = [CloudOp(p, "put", self.container, key, data) for p in self.replicas]
        phase = self._run_phase(ops, advance=False)
        finishes = sorted(o.finish for o in phase.succeeded())
        if len(finishes) >= self.write_quorum:
            # Ack at the quorum; stragglers complete in the background.
            self.clock.advance(finishes[self.write_quorum - 1])
        elif finishes:
            self.clock.advance(finishes[-1])
            self._mark_degraded()
        return [(p, i) for i, p in enumerate(self.replicas)]

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        key = f"{path}#v{version}"
        self._journal_plan(
            version=version,
            codec_name="replication",
            replicated=True,
            min_needed=1,
            sites=tuple((p, key) for p in self.replicas),
        )
        placements = self._quorum_write(key, data)
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="replication",
            placements=tuple(placements),
            klass="quorum",
            created=prev.created if prev else now,
            modified=now,
            digests=(self._digest(data),) * len(placements),
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        """Fetch from the fastest available cloud + verify f version probes."""
        key = f"{entry.path}#v{entry.version}"
        ranked = self._rank_providers(list(entry.providers), entry.size, "down")
        degraded = False
        for name in ranked:
            if not self.provider(name).is_available() or self._is_stale(
                name, self.container, key
            ):
                degraded = True
                continue
            probes = [
                p
                for p in ranked
                if p != name and self.provider(p).is_available()
            ][: self.f]
            ops = [CloudOp(name, "get", self.container, key)] + [
                CloudOp(p, "head", self.container, key) for p in probes
            ]
            phase = self._run_phase(ops)
            outcome = phase.outcomes[0]
            if outcome.ok and outcome.data is not None:
                if entry.digests and self._digest(outcome.data) != entry.digests[0]:
                    degraded = True  # corrupt replica fails verification
                    continue
                if degraded:
                    self._mark_degraded()
                return outcome.data, degraded
            degraded = True
        raise DataUnavailable(entry.path, f"no quorum replica reachable ({ranked})")

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=True
        )

    def _meta_write_targets(self) -> list[str]:
        return list(self.replicas)
