"""DuraCloud-style full replication across two providers (baseline [10]).

*"DuraCloud utilizes replication to copy user content onto several different
cloud storage providers ... and ensures that all copies of user content
remain synchronized."*  We reproduce the two-provider deployment the paper
prices in Figure 4: every object (data and metadata) is written to both
providers in parallel — the two uploads contend on the client's uplink,
which is exactly why DuraCloud's large writes are slow in Figure 6 and why
its *reads get faster during an outage* (no second copy to synchronise).

Synchronisation during outages uses the shared write-log / consistency-update
machinery from :mod:`repro.core.recovery`.
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.fs.namespace import FileEntry
from repro.schemes.base import Scheme
from repro.sim.clock import SimClock

__all__ = ["DuraCloudScheme"]


class DuraCloudScheme(Scheme):
    """Full 2x replication, reads served by the fastest available copy.

    Writes follow DuraCloud's synchronize-on-change discipline: the primary
    copy is written first and the second copy is a *sync step* that runs
    after it — so a write costs the sum of both transfers.  When one
    provider is inside an outage window the sync step fast-fails into the
    write log, which is why the paper observes DuraCloud's access latency
    *improving* during an outage ("no double writes or updates are
    performed").
    """

    name = "duracloud"
    sequential_replication = True

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        replication_level: int = 2,
        **kwargs: object,
    ) -> None:
        if len(providers) < replication_level:
            raise ValueError(
                f"DuraCloud needs >= {replication_level} providers, got {len(providers)}"
            )
        if replication_level < 2:
            raise ValueError("replication_level must be >= 2 for availability")
        super().__init__(providers, clock, link, seed, **kwargs)  # type: ignore[arg-type]
        # DuraCloud pins content to a fixed replica set (the first
        # ``replication_level`` providers), mirroring its static configuration.
        self.replicas = self.provider_names[:replication_level]

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        return None

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        placements, digests = self._write_replicated(
            path, data, self.replicas, version
        )
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="replication",
            placements=tuple(placements),
            klass="replicated",
            created=prev.created if prev else now,
            modified=now,
            digests=digests,
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        return self._read_replicated(
            entry.path,
            entry.size,
            list(entry.providers),
            entry.version,
            digest=entry.digests[0] if entry.digests else None,
        )

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=True
        )

    def _meta_write_targets(self) -> list[str]:
        return list(self.replicas)
