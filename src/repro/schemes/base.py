"""Scheme framework: the shared execution engine all schemes run on.

A scheme turns file-level operations (put/get/update/remove/stat/listdir)
into *phases* of concurrent provider requests.  The engine here:

- executes each phase against the simulated providers (state + billing),
- costs the phase through the fair-share client link (uploads contend with
  uploads, downloads with downloads) and advances the shared clock,
- logs mutations aimed at providers inside an outage window
  (:class:`repro.core.recovery.WriteLog`) and replays them when the provider
  returns (the paper's *consistency update*),
- write-through-persists directory metadata groups with the scheme's own
  redundancy, and charges metadata reads on client-cache misses,
- emits an :class:`repro.metrics.OpReport` per operation.

Concrete schemes mostly just pick *placements* via the replicated/striped
helpers provided here.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import math
import os
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cloud.errors import (
    CircuitOpenError,
    CloudError,
    NoSuchObject,
    ProviderUnavailable,
    TransientProviderError,
)
from repro.cloud.gcsapi import GcsApi
from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.core.recovery import LoggedWrite, WriteLog
from repro.core.resilience import CircuitBreaker, ProviderHealth, ResilienceConfig
from repro.erasure import gfkernel
from repro.erasure.codec import ErasureCodec
from repro.faults.crash import ClientCrash, CrashSchedule
from repro.fs.journal import IntentJournal
from repro.fs.metadata import MetadataStore, group_key, is_group_key
from repro.fs.namespace import FileEntry, Namespace, dirname, normalize_path
from repro.metrics.collector import LatencyCollector, OpReport
from repro.metrics.registry import MetricsRegistry
from repro.obs.trace import NOOP_TRACER
from repro.sim.bandwidth import TransferSpec, simulate_transfers
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

__all__ = [
    "CloudOp",
    "DataUnavailable",
    "ObjectAudit",
    "OpOutcome",
    "PhaseResult",
    "RepairResult",
    "Scheme",
    "VerifyFinding",
]

#: below this combined size, dispatching fragment hashing to threads costs
#: more than it saves; hash inline instead
_PARALLEL_DIGEST_MIN_BYTES = 256 << 10

#: hashlib releases the GIL for big buffers, so sibling fragments can hash on
#: real cores — but on a single-core box the pool is pure overhead, so it is
#: disabled there
_DIGEST_WORKERS = min(4, os.cpu_count() or 1)

_DIGEST_POOL = None


def _reset_digest_pool() -> None:
    # Pool threads do not survive fork; a child that inherited a live pool
    # would deadlock on its first digest, so drop the reference and let the
    # child lazily build its own (the parallel experiment runner forks
    # workers mid-session).
    global _DIGEST_POOL
    _DIGEST_POOL = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_digest_pool)


def _digest_pool():
    """Shared lazy thread pool for fragment hashing (GIL-releasing work)."""
    global _DIGEST_POOL
    if _DIGEST_POOL is None:
        from concurrent.futures import ThreadPoolExecutor

        _DIGEST_POOL = ThreadPoolExecutor(
            max_workers=_DIGEST_WORKERS, thread_name_prefix="fragment-digest"
        )
    return _DIGEST_POOL


class DataUnavailable(CloudError):
    """Too many providers are down to serve the object at all.

    Raised when concurrent outages exceed the scheme's fault tolerance —
    the paper notes two concurrent cloud outages are extremely rare, but the
    simulator can and does produce them under injected failure storms.
    """

    def __init__(self, path: str, detail: str) -> None:
        super().__init__(f"data unavailable for {path!r}: {detail}")
        self.path = path


class _DigestCache:
    """LRU of ``storage key -> (buffer id, sha256 hex)`` for verified reads.

    The simulated stores keep the exact buffer object a write handed them
    (zero-copy puts), so a read that returns the *same object* the scheme
    digested at write time is known-intact without re-hashing.  Identity is
    sound here: the recorded object stays alive inside a provider store (or a
    write log) for as long as its key maps to it, so its ``id`` cannot be
    recycled while the entry is current; every path that rebinds a key to a
    new buffer (put, read-modify-write) re-records the digest, and a
    fault-injected corrupt copy is always a fresh object, which misses the
    cache and falls back to a full hash.
    """

    __slots__ = ("_entries", "_capacity")

    def __init__(self, capacity: int = 4096) -> None:
        self._entries: OrderedDict[str, tuple[int, str]] = OrderedDict()
        self._capacity = capacity

    def record(self, key: str, data, digest: str) -> None:
        entries = self._entries
        entries[key] = (id(data), digest)
        entries.move_to_end(key)
        if len(entries) > self._capacity:
            entries.popitem(last=False)

    def matches(self, key: str, data, digest: str) -> bool:
        """True when ``data`` is the very buffer recorded for ``key``."""
        entry = self._entries.get(key)
        if entry is None or entry != (id(data), digest):
            return False
        self._entries.move_to_end(key)
        return True


class _PayloadCache:
    """Byte-bounded LRU of ``versioned key -> (fragment ids, payload)``.

    A striped read that fetches the *exact fragment objects* recorded at
    write time (identity check, same soundness argument as
    :class:`_DigestCache`: the stores pin those objects alive while the
    versioned keys exist) provably decodes to the payload that was encoded —
    so the decode + join can be skipped and the original payload returned.
    Any substituted fragment (corruption, reconstruction, a re-put) is a
    fresh object, misses by id, and falls through to a real decode.
    """

    __slots__ = ("_entries", "_budget", "_bytes")

    def __init__(self, budget: int = 256 << 20) -> None:
        self._entries: OrderedDict[str, tuple[tuple[int, ...], bytes]] = OrderedDict()
        self._budget = budget
        self._bytes = 0

    def record(self, key: str, fragments, payload) -> None:
        if len(payload) > self._budget:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old[1])
        self._entries[key] = (tuple(id(f) for f in fragments), payload)
        self._bytes += len(payload)
        while self._bytes > self._budget:
            _, (_ids, evicted) = self._entries.popitem(last=False)
            self._bytes -= len(evicted)

    def lookup(self, key: str, collected) -> bytes | None:
        """The cached payload iff every collected fragment matches by id."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        ids, payload = entry
        for idx, frag in collected.items():
            if idx >= len(ids) or id(frag) != ids[idx]:
                return None
        self._entries.move_to_end(key)
        return payload

    def discard(self, key: str) -> None:
        """Drop ``key``'s entry — required whenever its stored fragments are
        deleted or rebound, so recycled buffer ids can never false-match."""
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old[1])


@dataclass(frozen=True)
class CloudOp:
    """One provider request inside a phase."""

    provider: str
    kind: str  # "put" | "get" | "remove" | "list" | "create" | "head"
    container: str
    key: str = ""
    #: payload for puts; any immutable bytes-like buffer (zero-copy views
    #: from the codecs flow through untouched — see docs/performance.md)
    data: bytes | memoryview | None = None

    _KINDS = frozenset({"put", "get", "remove", "list", "create", "head"})

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == "put" and self.data is None:
            raise ValueError("put op requires data")


@dataclass
class OpOutcome:
    """Result of one :class:`CloudOp` within a phase."""

    op: CloudOp
    ok: bool
    data: bytes | None = None
    error: Exception | None = None
    finish: float = 0.0  # completion instant relative to phase start


@dataclass
class PhaseResult:
    """All outcomes of one phase plus its wire cost."""

    outcomes: list[OpOutcome]
    elapsed: float
    bytes_up: int = 0
    bytes_down: int = 0

    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def succeeded(self) -> list[OpOutcome]:
        return [o for o in self.outcomes if o.ok]

    def failed(self) -> list[OpOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def data_from(self, provider: str) -> bytes:
        for o in self.outcomes:
            if o.op.provider == provider and o.ok and o.data is not None:
                return o.data
        raise KeyError(f"no successful data outcome from {provider!r}")


@dataclass(frozen=True)
class VerifyFinding:
    """One damaged/suspect placement discovered by :meth:`Scheme.verify_object`.

    Kinds: ``corrupt`` (digest mismatch — bit rot and truncation alike),
    ``missing`` (the provider answered but the object is gone), ``stale``
    (a pending write-log entry supersedes the stored object; the consistency
    update owns it, not the repair queue) and ``unreachable`` (the provider
    could not be audited — counts against surviving redundancy, but there is
    nothing to rewrite while it is down).
    """

    path: str
    provider: str
    key: str
    kind: str  # "corrupt" | "missing" | "stale" | "unreachable"
    fragment: int

    _KINDS = frozenset({"corrupt", "missing", "stale", "unreachable"})

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown finding kind {self.kind!r}")

    @property
    def repairable(self) -> bool:
        """Damage a repair pass can rewrite right now (corrupt/missing)."""
        return self.kind in ("corrupt", "missing")

    @property
    def site(self) -> tuple[str, str]:
        return (self.provider, self.key)


@dataclass(frozen=True)
class ObjectAudit:
    """Result of auditing one object's placements.

    ``intact`` placements passed verification; ``min_needed`` is how many
    the scheme requires to reconstruct (``k`` for striped layouts, 1 for
    replication), so ``intact - min_needed`` is the object's remaining
    fault margin — the repair queue sorts ascending on it (most-at-risk
    stripes first).
    """

    path: str
    version: int
    findings: tuple[VerifyFinding, ...]
    checked: int
    bytes_verified: int
    total: int
    min_needed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def intact(self) -> int:
        return self.total - len(self.findings)

    @property
    def margin(self) -> int:
        """Surviving placements beyond the reconstruction minimum."""
        return self.intact - self.min_needed

    def by_kind(self, kind: str) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.kind == kind)


@dataclass(frozen=True)
class RepairResult:
    """Outcome of :meth:`Scheme.repair_object` for one object."""

    path: str
    repaired: tuple[VerifyFinding, ...]
    skipped_pending: tuple[VerifyFinding, ...]
    skipped_unreachable: tuple[VerifyFinding, ...]
    bytes_written: int

    @property
    def complete(self) -> bool:
        """True when nothing repairable remains outstanding."""
        return not self.skipped_pending and not self.skipped_unreachable


def _public_op(method):
    """Exception safety for public operations.

    A failing operation (e.g. :class:`DataUnavailable` when outages exceed
    fault tolerance) must not leave the per-op accumulator armed, or every
    later call would be rejected as "nested"."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        try:
            return method(self, *args, **kwargs)
        except BaseException as exc:
            self._acc = None
            self._abort_op_span()
            # A ClientCrash models the process dying mid-op: nothing else
            # client-side runs, so the journal intent stays *pending* (the
            # evidence recovery consumes) and no failure is recorded.
            crashed = isinstance(exc, ClientCrash)
            ctx = self._jctx
            self._jctx = None
            if (
                not crashed
                and ctx is not None
                and ctx.seq is not None
                and self.journal is not None
            ):
                # Clean failure with the client alive: keep the intent,
                # flagged aborted, so recovery GCs whatever landed.
                self.journal.mark_aborted(ctx.seq)
                self._publish_journal_gauges()
            if self.slo is not None and not crashed:
                self.slo.record_failure(
                    method.__name__.lstrip("_"),
                    self.clock.now,
                    tenant=self._op_tenant,
                )
            raise

    return wrapper


@dataclass
class _JournalCtx:
    """Journal context for the mutating public op currently in flight.

    Armed by :meth:`Scheme._journal_arm` at op entry with what is known
    there (kind, path, previous entry, redo payload); the placement plan —
    and with it the actual :class:`~repro.fs.journal.WriteIntent` — is
    filled in by :meth:`Scheme._journal_plan` just before the first
    fragment put, once the write helper knows sites and thresholds.
    """

    kind: str
    path: str
    prev: FileEntry | None
    payload: bytes | None
    seq: int | None = None


@dataclass
class _OpAcc:
    """Accumulator for the public operation currently in flight."""

    t0: float
    bytes_up: int = 0
    bytes_down: int = 0
    cloud_ops: int = 0
    providers: set[str] = field(default_factory=set)
    degraded: bool = False
    rtt_wait: float = 0.0
    transfer_time: float = 0.0
    retries: int = 0
    hedged: bool = False


class Scheme(ABC):
    """Base class for every redundant data distribution scheme."""

    #: short identifier used in containers, reports and experiment tables
    name: str = "scheme"

    #: replication write discipline: parallel scatter (default) or one
    #: replica at a time (DuraCloud's synchronize-on-change model, where the
    #: second copy is a sync step after the primary write completes)
    sequential_replication: bool = False

    #: how many times a request is retried after a transient provider
    #: failure (HTTP 500/throttle) before being treated as failed; folded
    #: into the default :class:`~repro.core.resilience.RetryPolicy` when no
    #: explicit ``resilience`` config is given
    transient_retries: int = 2

    #: repair discipline: False (default) rewrites only the damaged
    #: placements in place; True re-puts the whole object as a new version
    #: instead — for schemes whose per-placement objects cannot be rebuilt
    #: in isolation (DepSky-CA bundles carry secret shares drawn fresh per
    #: sharing, and shares from two sharings do not combine)
    repair_by_rewrite: bool = False

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        metadata_cache_capacity: int = 256,
        resilience: ResilienceConfig | None = None,
        tracer=None,
    ) -> None:
        if not providers:
            raise ValueError("a scheme needs at least one provider")
        names = [p.name for p in providers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate provider names: {names}")
        self.api = GcsApi(providers)
        self.clock = clock
        self.link = link if link is not None else ClientLink()
        self.seed = seed
        self.rng: np.random.Generator = make_rng(seed, "scheme", self.name)
        #: span tracer (no-op by default — see :mod:`repro.obs.trace`); never
        #: advances the clock or draws RNG, so attaching one cannot perturb
        #: a run's simulated timings
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: typed metric registry shared by the collector, the circuit
        #: breakers, the health trackers and the providers themselves
        self.registry = MetricsRegistry(tracer=self.tracer)
        self.collector = LatencyCollector(registry=self.registry)
        if self.tracer.enabled:
            self.tracer.meta(scheme=self.name, seed=seed)
        self._op_span = None
        if resilience is None:
            resilience = ResilienceConfig()
            if self.transient_retries != 2:
                # Honour subclass retry overrides when no explicit config given.
                resilience = replace(
                    resilience,
                    retry=replace(
                        resilience.retry, max_attempts=1 + self.transient_retries
                    ),
                )
        self.resilience = resilience
        self.retry_policy = resilience.retry
        #: deterministic jitter stream for retry backoff (sim-time waits)
        self._retry_rng: np.random.Generator = make_rng(seed, "retry", self.name)
        self._breakers: dict[str, CircuitBreaker] = (
            {
                p.name: resilience.make_breaker(p.name, metrics=self.registry)
                for p in providers
            }
            if resilience.breaker_enabled
            else {}
        )
        self.health: dict[str, ProviderHealth] = {
            p.name: resilience.make_health(p.name, metrics=self.registry)
            for p in providers
        }
        for p in providers:
            p.metrics = self.registry
        self.namespace = Namespace()
        self.meta = MetadataStore(self.namespace, metadata_cache_capacity)
        self.container = f"{self.name}-store"
        self._write_logs: dict[str, WriteLog] = {
            p.name: WriteLog(memory_limit_bytes=resilience.write_log_memory_limit)
            for p in providers
        }
        #: write-time fragment digests, reused to skip re-hashing on verified
        #: reads that return the identical stored buffer
        self._digest_cache = _DigestCache()
        self._payload_cache = _PayloadCache()
        self._acc: _OpAcc | None = None
        self._meta_sizes: dict[str, int] = {}
        #: tenant attribution for the op currently in flight — set via
        #: :meth:`tenant_context` by the service plane's frontend handlers;
        #: None (the default) keeps reports identical to a tenant-free build
        self._op_tenant: str | None = None
        #: optional :class:`repro.obs.slo.SloTracker` — see :meth:`attach_slo`
        self.slo = None
        #: optional :class:`repro.obs.attribution.ProviderLoadObservatory` —
        #: see :meth:`attach_observatory`; None (the default) keeps every
        #: path byte-identical to an observatory-free build
        self.observatory = None
        #: optional :class:`repro.maintenance.MaintenancePlane` — see
        #: :meth:`attach_maintenance`; None (the default) keeps every
        #: foreground path byte-identical to a maintenance-free build
        self.maintenance = None
        #: optional :class:`repro.core.scheduling.FragmentScheduler` — see
        #: :meth:`attach_scheduler`; None (the default) keeps striped reads
        #: on the static systematic-first ordering, byte-identical to a
        #: scheduler-free build
        self.scheduler = None
        #: optional :class:`repro.fs.journal.IntentJournal` — see
        #: :meth:`attach_journal`; None (the default) keeps the write path
        #: byte-identical to a journal-free build
        self.journal: IntentJournal | None = None
        self._jctx: _JournalCtx | None = None
        #: optional :class:`repro.faults.crash.CrashSchedule` — see
        #: :meth:`install_crash_schedule`
        self._crash: CrashSchedule | None = None
        self._init_containers()

    # ------------------------------------------------------------- lifecycle
    def _init_containers(self) -> None:
        """Create the scheme's container on every provider.

        A provider that cannot create it — outage or exhausted transient
        retries alike — gets a ``create`` entry in its write log, so the
        consistency update repairs the container exactly like any missed
        mutation instead of leaving it silently absent.
        """
        for p in self.api.providers():
            for _ in range(self.retry_policy.max_attempts):
                try:
                    p.create(self.container, exist_ok=True)
                    break
                except TransientProviderError:
                    continue
                except ProviderUnavailable:
                    self._write_logs[p.name].log_create(self.container, self.clock.now)
                    self._note_write_log(p.name)
                    break
            else:
                # Exhausted transient retries: same missed-mutation path.
                self._write_logs[p.name].log_create(self.container, self.clock.now)
                self._note_write_log(p.name)

    def attach_slo(self, slo) -> None:
        """Hook an :class:`~repro.obs.slo.SloTracker` into this scheme.

        Binds the tracker to the scheme's registry and clock, and hangs it on
        every circuit breaker so open/closed transitions become observed
        downtime edges.  Like the tracer, the tracker is pure bookkeeping:
        no clock movement, no RNG draws — attaching it cannot change a run's
        simulated timings.
        """
        self.slo = slo
        slo.bind(self.registry, self.clock)
        for breaker in self._breakers.values():
            breaker.listener = slo.on_breaker_transition

    def attach_observatory(self, observatory) -> None:
        """Hook a :class:`~repro.obs.attribution.ProviderLoadObservatory` in.

        The observatory sees every executed phase's outcomes (per-provider
        in-flight, queue depth, service rate, latency-vs-load curve, pushed
        into :class:`~repro.core.resilience.ProviderHealth`) and every
        completed op (latency-bucket exemplar linking).  Pure bookkeeping on
        the same contract as the tracer and SLO tracker: no clock movement,
        no RNG draws — attaching it cannot change a run's simulated timings.
        """
        self.observatory = observatory
        observatory.bind(self.registry, self.clock, self.health)

    def attach_scheduler(self, scheduler) -> None:
        """Hook a :class:`~repro.core.scheduling.FragmentScheduler` in.

        Striped reads switch from the static systematic-first ordering to
        load-aware subset selection: every usable placement is scored from
        health, breakers, and (when attached) the load observatory, and the
        k cheapest fragments serve — parity included when a data fragment's
        provider is queued.  Unlike the observatory, attaching the
        scheduler *intentionally* changes routing; detaching restores the
        static path byte-for-byte (gated by
        ``benchmarks/test_read_scheduling.py``).
        """
        self.scheduler = scheduler
        scheduler.bind(self)

    def detach_scheduler(self):
        """Detach the read scheduler; striped reads return to the static
        ordering.  Returns the scheduler (counters intact) or None."""
        scheduler = self.scheduler
        if scheduler is not None:
            self.scheduler = None
            scheduler.unbind()
        return scheduler

    @contextlib.contextmanager
    def tenant_context(self, tenant: str | None):
        """Attribute ops executed inside the block to ``tenant``.

        Used by the service plane's frontend handlers: every
        :class:`~repro.metrics.collector.OpReport` (and, when tracing, the
        root op span) produced inside the block carries the tenant id, and
        SLO failures recorded for public ops raised inside it roll up to the
        tenant too.  Pure attribution — no clock movement, no RNG draws —
        and with ``tenant=None`` (or outside any block) reports are
        byte-identical to a tenant-free build.  Not reentrant: scheme ops do
        not nest, and neither do their tenant contexts.
        """
        prev = self._op_tenant
        self._op_tenant = tenant
        try:
            yield self
        finally:
            self._op_tenant = prev

    @property
    def provider_names(self) -> list[str]:
        return self.api.names()

    def provider(self, name: str) -> SimulatedProvider:
        return self.api.provider(name)

    # ------------------------------------------------------- phase execution
    def _estimate_latency(self, name: str, size: int, direction: str = "down") -> float:
        """Deterministic latency estimate used for provider ranking."""
        lat = self.provider(name).latency
        bw = lat.download_bw if direction == "down" else lat.upload_bw
        linkbw = self.link.downlink if direction == "down" else self.link.uplink
        return lat.rtt + size / min(bw, linkbw)

    def _rank_providers(
        self,
        names: list[str],
        size: int = 0,
        direction: str = "down",
        adaptive: bool = False,
    ) -> list[str]:
        """Names sorted fastest-first for a transfer of ``size`` bytes.

        With ``adaptive`` the static estimate is scaled by each provider's
        health penalty, so a browned-out or error-prone provider loses its
        preferred-replica slot even though its nominal latency model says it
        should be fastest.
        """

        def score(n: str) -> float:
            est = self._estimate_latency(n, size, direction)
            if adaptive:
                health = self.health.get(n)
                if health is not None:
                    est *= health.penalty(self.resilience.health_error_weight)
            return est

        return sorted(names, key=score)

    def _provider_usable(self, name: str) -> bool:
        """Available right now and not fast-failed by its circuit breaker."""
        if not self.provider(name).is_available():
            return False
        breaker = self._breakers.get(name)
        return breaker is None or breaker.would_allow(self.clock.now)

    def _is_stale(self, provider: str, container: str, key: str) -> bool:
        """True when the provider missed writes to this key during an outage."""
        log = self._write_logs.get(provider)
        if not log:
            return False
        return any(
            e.container == container and e.key == key for e in log.peek()
        )

    @staticmethod
    def _delayed(spec: TransferSpec, extra: float) -> TransferSpec:
        """Shift a transfer's start by ``extra`` seconds of serialized waiting."""
        if extra <= 0.0:
            return spec
        return replace(spec, start_delay=spec.start_delay + extra)

    def _expected_latency(self, outcome: OpOutcome) -> float:
        """Clean-model latency expectation for one completed request.

        Uses the provider's *base* latency (never the brownout-degraded one):
        the health tracker compares what the client observed against what a
        healthy provider would have delivered, so brownouts register as
        slowdown even though no request errors.
        """
        lat = self.provider(outcome.op.provider).latency
        if outcome.op.kind == "put":
            size = len(outcome.op.data or b"")
            return lat.rtt + size / min(lat.upload_bw, self.link.uplink)
        if outcome.op.kind == "get":
            size = len(outcome.data or b"")
            return lat.rtt + size / min(lat.download_bw, self.link.downlink)
        return lat.rtt

    def _note_breaker(self, breaker: CircuitBreaker, before: str) -> None:
        if breaker.state != before:
            self.collector.bump(f"breaker_{breaker.state}")

    def _feed_latency(self, outcomes: list[OpOutcome]) -> None:
        """Feed completed requests' latencies into the health EWMAs."""
        for o in outcomes:
            if o.ok and o.finish > 0.0:
                health = self.health.get(o.op.provider)
                if health is not None:
                    health.record_latency(o.finish, self._expected_latency(o))

    def _note_hedge_waste(
        self, outcome: OpOutcome, cancelled_after: float
    ) -> None:
        """Account a lost hedge leg's wire time as waste, not latency.

        The loser's completion time is counterfactual — the client cancelled
        it the moment the winner answered, so feeding it into the provider's
        latency EWMA would poison health ranking with a number nobody
        observed.  What *was* real is the wire time until cancellation:
        ``min(finish, cancelled_after)`` seconds of wasted provider work,
        recorded in the ``hedge_wasted_seconds`` histogram and surfaced to
        the attribution analyzer as a ``hedge.wasted`` trace event.

        That observed wait is also a *censored* latency sample — "still
        pending after this long" — and it is the only signal health can get
        about a primary that keeps losing hedges (its true completions are
        never observed once hedging routes around it).  Feeding the censored
        lower bound keeps the slowdown EWMA adapting to fresh brownouts
        without leaking the counterfactual finish time.
        """
        if not outcome.ok or outcome.finish <= 0.0 or cancelled_after <= 0.0:
            return
        wasted = min(outcome.finish, cancelled_after)
        self.registry.histogram(
            "hedge_wasted_seconds", provider=outcome.op.provider
        ).observe(wasted)
        health = self.health.get(outcome.op.provider)
        if health is not None:
            health.record_latency(wasted, self._expected_latency(outcome))
        if self.tracer.enabled:
            self.tracer.event(
                "hedge.wasted", provider=outcome.op.provider, wasted=wasted
            )

    def _run_phase(
        self,
        ops: list[CloudOp],
        advance: bool = True,
        bypass_breakers: bool = False,
        record_latency: bool = True,
        span_offset: float = 0.0,
    ) -> PhaseResult:
        """Execute one phase of concurrent provider requests.

        State changes apply instantly; wire time is computed by batching all
        transfer specs through the client link.  Mutations aimed at an
        unavailable provider are recorded in its write log.  When ``advance``
        the clock moves to the phase's end (quorum schemes advance manually).

        Resilience hooks: each involved provider's circuit breaker is
        consulted once per phase — a denied provider fast-fails every op
        aimed at it (:class:`CircuitOpenError`, zero wire cost, mutations
        write-logged).  Transient failures retry under the scheme's
        :class:`~repro.core.resilience.RetryPolicy`, with backoff waits and
        failed-attempt round trips serialized into the op's transfer spec.
        ``bypass_breakers`` is set by the consistency update, whose forced
        replay is itself the half-open probe that re-admits a healed
        provider.

        Hedged reads run both legs through here with ``record_latency=False``
        (only the race winner's latency may feed health EWMAs — the loser's
        completion time is counterfactual) and give the delayed backup leg a
        ``span_offset`` so its trace spans and observatory arrivals sit at
        the simulated time the leg actually fired, not the phase start.
        Both knobs are pure observation: simulated timings are untouched.
        """
        outcomes: list[OpOutcome] = []
        uploads: list[tuple[int, TransferSpec]] = []
        downloads: list[tuple[int, TransferSpec]] = []
        bytes_up = 0
        bytes_down = 0
        now = self.clock.now
        policy = self.retry_policy
        # Per-op attempt counts for request spans; only kept while tracing.
        attempt_counts: dict[int, int] | None = (
            {} if self.tracer.enabled else None
        )

        # One breaker decision per provider per phase, so a half-open probe
        # admits the provider's whole phase (and its outcome settles the
        # breaker) rather than flip-flopping per request.
        allowed: dict[str, bool] = {}
        for name in {op.provider for op in ops}:
            breaker = self._breakers.get(name)
            if breaker is None or bypass_breakers:
                allowed[name] = True
                continue
            before = breaker.state
            allowed[name] = breaker.allow(now)
            self._note_breaker(breaker, before)

        for i, op in enumerate(ops):
            # Scripted crash injection: die *between* cloud ops, before this
            # one applies — earlier ops in the phase already mutated provider
            # state (a torn write), nothing after this line runs, and the
            # clock never advances past the kill point.
            if self._crash is not None and self._crash.tick():
                raise ClientCrash(self._crash.ops_seen, op.provider, op.kind)
            provider = self.provider(op.provider)
            health = self.health.get(op.provider)
            # Bypass skips the *gate* only; outcomes still feed the breaker,
            # so a successful consistency-update replay closes it.
            breaker = self._breakers.get(op.provider)
            if not allowed[op.provider]:
                # Client-side fast fail: no request leaves the machine.
                self._log_missed_mutation(op)
                self.collector.bump("breaker_fast_fail")
                outcomes.append(
                    OpOutcome(op=op, ok=False, error=CircuitOpenError(op.provider, now))
                )
                continue
            lat = provider.effective_latency()
            data: bytes | None = None
            error: Exception | None = None
            penalty = 0.0  # serialized failed-attempt RTTs + backoff waits
            backoff_spent = 0.0
            for attempt in range(policy.max_attempts):
                try:
                    data = self._apply_op(provider, op)
                    error = None
                    break
                except TransientProviderError as exc:
                    error = exc
                    if health is not None:
                        health.record_attempt(False)
                    # Each failed attempt burns a round trip before the
                    # client can react; it serializes with the retry chain.
                    rtt = lat.sample_rtt(self.rng)
                    uploads.append(
                        (i, TransferSpec(start_delay=penalty + rtt, size_bytes=0.0))
                    )
                    penalty += rtt
                    if attempt + 1 >= policy.max_attempts:
                        break
                    if (
                        policy.op_deadline is not None
                        and penalty >= policy.op_deadline
                    ):
                        break  # whole-op budget already burnt by retries
                    wait = policy.backoff(attempt, self._retry_rng)
                    if backoff_spent + wait > policy.deadline:
                        break  # backoff budget exhausted: give up early
                    if (
                        policy.op_deadline is not None
                        and penalty + wait > policy.op_deadline
                    ):
                        break  # next wait would blow the per-op deadline
                    backoff_spent += wait
                    penalty += wait
                    self.collector.bump("retries")
                    if self._acc is not None:
                        self._acc.retries += 1
                    if attempt_counts is not None:
                        # The wait sits at the end of this op's serialized
                        # penalty chain, which starts at the phase start.
                        self.tracer.add(
                            "retry.wait",
                            now + span_offset + penalty - wait,
                            now + span_offset + penalty,
                            provider=op.provider,
                            attempt=attempt,
                        )
                except ProviderUnavailable as exc:
                    error = exc
                    if health is not None:
                        health.record_attempt(False)
                    break
                except CloudError as exc:
                    error = exc
                    break
            if attempt_counts is not None:
                attempt_counts[i] = attempt + 1
            if error is not None:
                if isinstance(error, (ProviderUnavailable, TransientProviderError)):
                    # Mutations the provider missed — outage or exhausted
                    # retries alike — are logged for the consistency update.
                    self._log_missed_mutation(op)
                # NoSuchObject is a definitive answer from a healthy
                # provider (the scrubber probes keys that may be lost); it
                # must not push the breaker toward open.
                if breaker is not None and not isinstance(error, NoSuchObject):
                    before = breaker.state
                    breaker.record_failure(now)
                    self._note_breaker(breaker, before)
                outcomes.append(OpOutcome(op=op, ok=False, error=error))
                # Failure detection costs one control round-trip.
                uploads.append(
                    (
                        i,
                        TransferSpec(
                            start_delay=penalty + lat.sample_rtt(self.rng),
                            size_bytes=0.0,
                        ),
                    )
                )
                continue
            if health is not None:
                health.record_attempt(True)
            if breaker is not None:
                before = breaker.state
                breaker.record_success(now)
                self._note_breaker(breaker, before)
            outcomes.append(OpOutcome(op=op, ok=True, data=data))
            if op.kind == "put":
                size = len(op.data or b"")
                uploads.append((i, self._delayed(lat.upload_spec(size, self.rng), penalty)))
                bytes_up += size
            elif op.kind == "get":
                size = len(data or b"")
                downloads.append((i, self._delayed(lat.download_spec(size, self.rng), penalty)))
                bytes_down += size
            else:  # control-plane request
                uploads.append((i, self._delayed(lat.control_spec(self.rng), penalty)))

        elapsed = 0.0
        critical_rtt = 0.0
        for direction, linkbw in ((uploads, self.link.uplink), (downloads, self.link.downlink)):
            if not direction:
                continue
            results = simulate_transfers([s for _, s in direction], linkbw)
            for ((idx, spec), res) in zip(direction, results):
                outcomes[idx].finish = max(outcomes[idx].finish, res.finish_time)
                if res.finish_time > elapsed:
                    elapsed = res.finish_time
                    critical_rtt = spec.start_delay

        # Feed observed latency into the health trackers: the ratio against
        # the clean expectation is what surfaces brownouts to the client.
        # Hedge legs defer this to the race winner (see _hedged_replicated_get).
        if record_latency:
            self._feed_latency(outcomes)

        if self.observatory is not None:
            self.observatory.on_phase(now + span_offset, outcomes)

        if attempt_counts is not None:
            # Backfilled per-request child spans: each request's finish is
            # only known once the whole phase's transfers are simulated.
            for i, o in enumerate(outcomes):
                if isinstance(o.error, CircuitOpenError):
                    self.tracer.add(
                        "breaker.fast_fail",
                        now + span_offset,
                        now + span_offset,
                        provider=o.op.provider,
                        kind=o.op.kind,
                    )
                    continue
                attrs = {
                    "provider": o.op.provider,
                    "kind": o.op.kind,
                    "ok": o.ok,
                    "attempts": attempt_counts.get(i, 1),
                }
                if o.error is not None:
                    attrs["error"] = type(o.error).__name__
                self.tracer.add(
                    "request",
                    now + span_offset,
                    now + span_offset + o.finish,
                    **attrs,
                )

        if advance and elapsed > 0:
            self.clock.advance(elapsed)

        result = PhaseResult(
            outcomes=outcomes,
            elapsed=elapsed,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
        )
        if self._acc is not None:
            self._acc.bytes_up += bytes_up
            self._acc.bytes_down += bytes_down
            self._acc.cloud_ops += len(ops)
            self._acc.providers.update(op.provider for op in ops)
            # Critical-path attribution: the phase ends with its slowest
            # transfer; that transfer's RTT is waiting, the rest is bytes.
            self._acc.rtt_wait += min(critical_rtt, elapsed)
            self._acc.transfer_time += max(elapsed - critical_rtt, 0.0)
        return result

    @staticmethod
    def _apply_op(provider: SimulatedProvider, op: CloudOp) -> bytes | None:
        if op.kind == "put":
            provider.put(op.container, op.key, op.data or b"")
            return None
        if op.kind == "get":
            return provider.get(op.container, op.key)
        if op.kind == "remove":
            provider.remove(op.container, op.key)
            return None
        if op.kind == "list":
            listing = provider.list(op.container)
            return "\n".join(listing).encode()
        if op.kind == "create":
            provider.create(op.container, exist_ok=True)
            return None
        if op.kind == "head":
            provider.head(op.container, op.key)
            return None
        raise AssertionError(f"unreachable op kind {op.kind}")  # pragma: no cover

    def _log_missed_mutation(self, op: CloudOp) -> None:
        if op.kind == "put":
            self._write_logs[op.provider].log_put(
                op.container, op.key, op.data or b"", self.clock.now
            )
        elif op.kind == "remove":
            self._write_logs[op.provider].log_remove(
                op.container, op.key, self.clock.now
            )
        else:
            return
        self._note_write_log(op.provider)
        if self.tracer.enabled:
            self.tracer.event(
                "write_log.fallback",
                provider=op.provider,
                kind=op.kind,
                key=op.key,
            )

    def _note_write_log(self, provider: str) -> None:
        """Publish one logged mutation and the provider's pending depth."""
        log = self._write_logs[provider]
        self.registry.counter("write_log_entries_total", provider=provider).inc()
        self.registry.gauge("write_log_pending", provider=provider).set(len(log))
        self.registry.gauge("writelog_pending_bytes", provider=provider).set(
            log.pending_bytes()
        )
        if log.memory_limit_bytes is not None:
            self.registry.gauge("writelog_spilled_bytes", provider=provider).set(
                log.spilled_bytes()
            )

    # -------------------------------------------------------------- recovery
    def pending_log(self, provider: str) -> WriteLog:
        return self._write_logs[provider]

    def adopt_write_logs(self, logs: dict[str, WriteLog]) -> None:
        """Inherit a crashed predecessor's write logs.

        The write logs are client-local *durable* state, exactly like the
        intent journal: they survive the process.  A replacement client
        pointed at the same Cloud-of-Clouds adopts them so the consistency
        update still owes every mutation the dead client logged.  Entries
        this client already logged itself (container creates from
        ``__init__`` under an outage) are folded in on top, last-wins.
        """
        for name, inherited in logs.items():
            own = self._write_logs.get(name)
            if own is None or inherited is own:
                continue
            for e in own.peek():
                if e.kind == "create":
                    inherited.log_create(e.container, e.logged_at)
                elif e.kind == "put":
                    inherited.log_put(e.container, e.key, e.data or b"", e.logged_at)
                else:
                    inherited.log_remove(e.container, e.key, e.logged_at)
            self._write_logs[name] = inherited
            self.registry.gauge("write_log_pending", provider=name).set(
                len(inherited)
            )
            self.registry.gauge("writelog_pending_bytes", provider=name).set(
                inherited.pending_bytes()
            )

    def heal_returned(self) -> list[OpReport]:
        """Replay write logs of every provider that has come back.

        This is the paper's consistency update.  Returns one ``heal`` report
        per healed provider; recovery for a provider is complete when its log
        is empty afterwards (a provider failing *again* mid-replay keeps the
        unreplayed tail logged).
        """
        reports: list[OpReport] = []
        for name, log in self._write_logs.items():
            if not log or not self.provider(name).is_available():
                continue
            reports.append(self._heal_one(name, log))
        return reports

    @_public_op
    def _heal_one(self, name: str, log: WriteLog) -> OpReport:
        """Standalone consistency update with its own ``heal`` report."""
        self._begin_op()
        self._heal_phase(name, log)
        report = self._end_op("heal", f"provider:{name}")
        self.collector.add(report)
        return report

    def _heal_phase(self, name: str, log: WriteLog) -> None:
        """Replay one provider's write log inside the current accounting.

        Called standalone by :meth:`_heal_one` or inline from
        :meth:`_heal_before_touching`, where the replay cost is attributed
        to the foreground operation that forced it.
        """
        # Replay from a *peek*, discarding each entry only once its replay op
        # succeeded: a client crash mid-replay then leaves the unapplied tail
        # in the durable log (re-replaying an applied put/remove is
        # idempotent), instead of losing everything a drain() took out.
        entries = log.peek()
        ops: list[CloudOp] = [CloudOp(name, "create", self.container)]
        op_entries: list[LoggedWrite | None] = [None]
        for e in entries:
            if e.kind == "create":
                continue  # the leading create op already covers it
            if e.kind == "put":
                ops.append(CloudOp(name, "put", e.container, e.key, e.data))
                op_entries.append(e)
            else:
                # Removing a key the provider never saw is a no-op; only
                # issue the delete when the object exists there.
                if self.provider(name).store.has(e.container, e.key):
                    ops.append(CloudOp(name, "remove", e.container, e.key))
                    op_entries.append(e)
                else:
                    log.discard(e.container, e.key)
        # The replay ignores circuit breakers: it only runs once the provider
        # is available again, and its outcome is the decisive health probe —
        # a successful replay closes the breaker, a failure re-opens it.
        # Respecting an open breaker here would fast-fail the drained log
        # back into itself without advancing the clock (a livelock).
        with self.tracer.span("heal.replay", provider=name) as sp:
            phase = self._run_phase(ops, bypass_breakers=True)
            replayed = 0
            for e, o in zip(op_entries, phase.outcomes):
                if e is None:
                    if o.ok:
                        for ce in entries:
                            if ce.kind == "create":
                                log.discard(ce.container, ce.key)
                    continue
                if o.ok:
                    # A failed op already re-logged itself (last-wins on the
                    # same key), so only successes leave the log.
                    log.discard(e.container, e.key)
                    replayed += 1
            sp.set(entries=len(entries), replayed=replayed)
        if replayed:
            self.registry.counter("heal_replayed_total", provider=name).inc(replayed)
        # A replay that failed partway re-logs the unreplayed tail, so the
        # pending gauges reflect whatever is still owed after this pass.
        self.registry.gauge("write_log_pending", provider=name).set(len(log))
        self.registry.gauge("writelog_pending_bytes", provider=name).set(
            log.pending_bytes()
        )
        if log.memory_limit_bytes is not None:
            self.registry.gauge("writelog_spilled_bytes", provider=name).set(
                log.spilled_bytes()
            )

    def _heal_before_touching(self, providers: set[str]) -> None:
        """Consistency-update any returned-but-stale provider we are about to use."""
        for name in providers:
            log = self._write_logs.get(name)
            if log and self.provider(name).is_available():
                if self._acc is not None:
                    self._heal_phase(name, log)
                else:
                    self._heal_one(name, log)

    # ------------------------------------------------------ report plumbing
    def _begin_op(self) -> None:
        if self._acc is not None:
            raise RuntimeError("nested scheme operations are not supported")
        self._acc = _OpAcc(t0=self.clock.now)
        if self.tracer.enabled:
            # Root span for this operation: opened now so every request /
            # retry / heal span recorded inside nests under it; named and
            # closed by _end_op once the op kind is known.
            self._op_span = self.tracer.span("op")
            self._op_span.__enter__()

    def _mark_degraded(self) -> None:
        if self._acc is not None:
            self._acc.degraded = True

    def _abort_op_span(self) -> None:
        """Close a dangling root span when a public op raises."""
        span = self._op_span
        if span is not None:
            self._op_span = None
            span.record.name = "op.error"
            span.record.set(outcome="error")
            span.__exit__(None, None, None)

    def _end_op(self, op: str, path: str) -> OpReport:
        acc = self._acc
        if acc is None:
            raise RuntimeError("_end_op without _begin_op")
        self._acc = None
        report = OpReport(
            op=op,
            path=path,
            elapsed=self.clock.now - acc.t0,
            bytes_up=acc.bytes_up,
            bytes_down=acc.bytes_down,
            providers=tuple(sorted(acc.providers)),
            degraded=acc.degraded,
            cloud_ops=acc.cloud_ops,
            rtt_wait=acc.rtt_wait,
            transfer_time=acc.transfer_time,
            retries=acc.retries,
            hedged=acc.hedged,
            tenant=self._op_tenant,
        )
        span = self._op_span
        trace_id = None
        if span is not None:
            self._op_span = None
            trace_id = span.record.span_id
            # The root span carries the full OpReport so a JSON-lines trace
            # is self-contained: RunReport.from_trace rebuilds the report
            # stream from these attributes alone.
            span.record.name = f"op.{op}"
            span.record.set(
                op=op,
                path=path,
                elapsed=report.elapsed,
                bytes_up=report.bytes_up,
                bytes_down=report.bytes_down,
                providers=list(report.providers),
                degraded=report.degraded,
                cloud_ops=report.cloud_ops,
                rtt_wait=report.rtt_wait,
                transfer_time=report.transfer_time,
                retries=report.retries,
                hedged=report.hedged,
            )
            if report.tenant is not None:
                # Only stamped when attributed, so tenant-free traces stay
                # byte-identical to pre-service-plane ones.
                span.record.set(tenant=report.tenant)
            span.__exit__(None, None, None)
        if self.slo is not None:
            self.slo.record_op(report, self.clock.now)
        if self.observatory is not None:
            self.observatory.on_op(report, trace_id)
        return report

    # ----------------------------------------------------- placement helpers
    def _fragment_key(self, path: str, index: int, version: int) -> str:
        return f"{path}#v{version}.{index}"

    @staticmethod
    def _digest(data: bytes) -> str:
        """Fragment integrity digest (HAIL-style verification, cited [8])."""
        return hashlib.sha256(data).hexdigest()

    def _record_digest(self, key: str, data) -> str:
        """Digest ``data`` once at write time and remember it for ``key``."""
        digest = self._digest(data)
        self._digest_cache.record(key, data, digest)
        return digest

    def _digest_fragments(self, keys: list[str], fragments) -> tuple[str, ...]:
        """Digest a fragment batch, hashing concurrently when it is large.

        ``hashlib`` releases the GIL for sizeable buffers, so sibling
        fragments of one striped write hash in parallel on real cores.  The
        result is order-preserving and value-identical to hashing serially;
        only wall-clock changes, never simulated time or digest content.
        """
        if (
            _DIGEST_WORKERS > 1
            and sum(len(f) for f in fragments) >= _PARALLEL_DIGEST_MIN_BYTES
        ):
            digests = list(_digest_pool().map(self._digest, fragments))
        else:
            digests = [self._digest(f) for f in fragments]
        for key, frag, digest in zip(keys, fragments, digests):
            self._digest_cache.record(key, frag, digest)
        return tuple(digests)

    def _verify_digest(self, key: str, data, expected: str) -> bool:
        """Check ``data`` against ``expected``, skipping the hash when the
        returned buffer is the exact object digested at write time."""
        if self._digest_cache.matches(key, data, expected):
            return True
        if self._digest(data) != expected:
            return False
        self._digest_cache.record(key, data, expected)
        return True

    def _write_replicated(
        self, key_base: str, data: bytes, providers: list[str], version: int
    ) -> tuple[list[tuple[str, int]], tuple[str, ...]]:
        """Put identical copies on each provider.

        Returns ``(placements, digests)`` — one digest per replica slot so
        reads can detect provider-side corruption.  Copies are written in
        parallel (they contend on the uplink — the DuraCloud effect).
        Unavailable providers are write-logged, so the placement list always
        covers every intended replica.
        """
        self._heal_before_touching(set(providers))
        key = f"{key_base}#v{version}"
        self._journal_plan(
            version=version,
            codec_name="replication",
            replicated=True,
            min_needed=1,
            sites=tuple((p, key) for p in providers),
        )
        ops = [CloudOp(p, "put", self.container, key, data) for p in providers]
        if self.sequential_replication:
            for op in ops:
                self._run_phase([op])
        else:
            self._run_phase(ops)
        digest = self._record_digest(key, data)
        return [(p, i) for i, p in enumerate(providers)], (digest,) * len(providers)

    def _read_replicated(
        self,
        key_base: str,
        size: int,
        providers: list[str],
        version: int,
        digest: str | None = None,
    ) -> tuple[bytes, bool]:
        """Read one replica, fastest-available first; degraded on fallback.

        When ``digest`` is given every fetched copy is verified; a corrupt
        replica is treated like an unavailable one and the next copy serves
        (HAIL's availability-through-verification behaviour).

        Ranking is health-adaptive (a browned-out replica loses its
        preferred slot) and, when
        :attr:`~repro.core.resilience.ResilienceConfig.hedge_reads` is on
        and two candidates exist, a backup request fires at the next-ranked
        replica once the primary overruns its estimated p95 latency — the
        first intact response wins.
        """
        key = f"{key_base}#v{version}"
        ranked = self._rank_providers(list(providers), size, "down", adaptive=True)
        degraded = False
        last_error: Exception | None = None

        candidates = [
            n
            for n in ranked
            if self._provider_usable(n)
            and not self._is_stale(n, self.container, key)
        ]
        degraded = len(candidates) < len(ranked)
        if self.resilience.hedge_reads and len(candidates) >= 2:
            hedged = self._hedged_replicated_get(key, size, candidates, digest)
            if hedged is not None:
                data, hedge_degraded = hedged
                degraded = degraded or hedge_degraded
                if degraded:
                    self._mark_degraded()
                return data, degraded
            # Both hedge legs failed; fall back to the remaining replicas.
            degraded = True
            candidates = candidates[2:]

        for name in candidates:
            if not self._provider_usable(name) or self._is_stale(
                name, self.container, key
            ):
                degraded = True
                continue
            phase = self._run_phase([CloudOp(name, "get", self.container, key)])
            outcome = phase.outcomes[0]
            if outcome.ok and outcome.data is not None:
                if digest is not None and not self._verify_digest(
                    key, outcome.data, digest
                ):
                    degraded = True  # corrupt copy: fall through to the next
                    continue
                if degraded:
                    self._mark_degraded()
                return outcome.data, degraded
            degraded = True
            last_error = outcome.error
        detail = f" ({last_error})" if last_error is not None else ""
        raise DataUnavailable(
            key_base, f"no intact replica reachable on {providers}{detail}"
        )

    def _hedged_replicated_get(
        self, key: str, size: int, candidates: list[str], digest: str | None
    ) -> tuple[bytes, bool] | None:
        """Primary request plus a delayed backup; first intact response wins.

        Models request hedging on the sim clock: the primary phase runs
        without advancing time; if its response would land after the hedge
        trigger delay (estimated p95 for this transfer) — or it failed — the
        backup fires and the clock advances to the *winner's* finish.  The
        loser is cancelled, so its wire time is never waited on, but both
        requests were issued: providers metered both, and both count as
        cloud ops (hedging's real cost).

        Returns ``(data, degraded)`` or ``None`` when both legs failed.
        """
        primary, backup = candidates[0], candidates[1]
        cfg = self.resilience
        factor = cfg.hedge_min_delay_factor
        health = self.health.get(primary)
        if health is not None:
            factor = max(health.p95_slowdown(cfg.hedge_quantile_dev), factor)
        hedge_delay = self._estimate_latency(primary, size, "down") * factor

        # Both legs run with record_latency=False: only the race *winner's*
        # latency may feed the health EWMAs.  The loser is cancelled at the
        # winner's finish, so its completion time is counterfactual — feeding
        # it would poison health ranking (and hedge against a browned-out
        # backup would mark the backup slow for latency nobody waited on).
        p_phase = self._run_phase(
            [CloudOp(primary, "get", self.container, key)],
            advance=False,
            record_latency=False,
        )
        p = p_phase.outcomes[0]
        p_ok = (
            p.ok
            and p.data is not None
            and (digest is None or self._verify_digest(key, p.data, digest))
        )
        if p_ok and p_phase.elapsed <= hedge_delay:
            if p_phase.elapsed > 0:
                self.clock.advance(p_phase.elapsed)
            self._feed_latency(p_phase.outcomes)
            return p.data, False

        # Primary is slow, failed or corrupt: fire the backup.  A detected
        # failure releases the hedge immediately; a silently slow primary
        # only releases it at the trigger delay.
        self.collector.bump("hedged_reads")
        if self._acc is not None:
            self._acc.hedged = True
        if self.tracer.enabled:
            self.tracer.event(
                "hedge.fired", primary=primary, backup=backup, delay=hedge_delay
            )
        backup_start = hedge_delay if p_ok else min(hedge_delay, p_phase.elapsed)
        # span_offset places the backup leg's trace span and observatory
        # arrival at the sim time the leg actually fired, not the phase start.
        b_phase = self._run_phase(
            [CloudOp(backup, "get", self.container, key)],
            advance=False,
            record_latency=False,
            span_offset=backup_start,
        )
        b = b_phase.outcomes[0]
        b_ok = (
            b.ok
            and b.data is not None
            and (digest is None or self._verify_digest(key, b.data, digest))
        )
        b_finish = backup_start + b_phase.elapsed

        if p_ok and (not b_ok or p_phase.elapsed <= b_finish):
            if p_phase.elapsed > 0:
                self.clock.advance(p_phase.elapsed)
            self._feed_latency(p_phase.outcomes)
            # The backup was on the wire from backup_start until the primary
            # answered; that slice is wasted provider work, not latency.
            self._note_hedge_waste(b, max(0.0, p_phase.elapsed - backup_start))
            return p.data, False
        if b_ok:
            self.collector.bump("hedge_wins")
            if self.tracer.enabled:
                self.tracer.event("hedge.win", provider=backup)
            if b_finish > 0:
                self.clock.advance(b_finish)
            self._feed_latency(b_phase.outcomes)
            self._note_hedge_waste(p, b_finish)
            # Degraded only when the primary actually failed — a hedge that
            # merely outran a slow-but-healthy primary is a normal read.
            return b.data, not p_ok
        # Both legs failed: charge the time burned finding out.
        lost = max(p_phase.elapsed, b_finish)
        if lost > 0:
            self.clock.advance(lost)
        return None

    def _encode_fragments(
        self, codec: ErasureCodec, data: bytes
    ) -> list[bytes | memoryview]:
        """Every striped encode funnels through here: traced span plus the
        ``codec_encode_bytes_total`` counter, labelled with the codec class
        and the GF kernel strategy active for this process."""
        with self.tracer.span(
            "codec.encode", codec=type(codec).__name__, size=len(data)
        ):
            fragments = codec.encode_views(data)
        self.registry.counter(
            "codec_encode_bytes_total",
            codec=type(codec).__name__,
            kernel=gfkernel.active_strategy(),
        ).inc(len(data))
        return fragments

    def _write_striped(
        self,
        key_base: str,
        data: bytes,
        codec: ErasureCodec,
        providers: list[str],
        version: int,
    ) -> tuple[list[tuple[str, int]], tuple[str, ...]]:
        """Encode and scatter fragments, one per provider, in parallel.

        Returns ``(placements, per-fragment digests)``."""
        if len(providers) != codec.n:
            raise ValueError(
                f"{codec!r} needs {codec.n} providers, got {len(providers)}"
            )
        self._heal_before_touching(set(providers))
        self._journal_plan(
            version=version,
            codec_name=type(codec).__name__,
            replicated=False,
            min_needed=codec.k,
            sites=tuple(
                (p, self._fragment_key(key_base, i, version))
                for i, p in enumerate(providers)
            ),
        )
        fragments = self._encode_fragments(codec, data)
        ops = [
            CloudOp(p, "put", self.container, self._fragment_key(key_base, i, version), fragments[i])
            for i, p in enumerate(providers)
        ]
        self._run_phase(ops)
        digests = self._digest_fragments(
            [self._fragment_key(key_base, i, version) for i in range(len(fragments))],
            fragments,
        )
        if isinstance(data, bytes):
            self._payload_cache.record(f"{key_base}#v{version}", fragments, data)
        return [(p, i) for i, p in enumerate(providers)], digests

    def _read_striped(
        self,
        key_base: str,
        size: int,
        codec: ErasureCodec,
        placements: list[tuple[str, int]],
        version: int,
        prefer_systematic: bool = True,
        digests: tuple[str, ...] | None = None,
    ) -> tuple[bytes, bool]:
        """Fetch k fragments and decode; reconstruct through parity when
        a preferred provider is out (the degraded read of §III-C).

        With ``digests``, every fetched fragment is verified and a corrupt
        one counts as an erasure — reconstruction routes around silent
        provider-side corruption exactly like an outage."""
        by_index = {idx: prov for prov, idx in placements}
        if len(by_index) < codec.k:
            raise DataUnavailable(key_base, "placement lost too many fragments")

        def usable(idx: int) -> bool:
            prov = by_index[idx]
            key = self._fragment_key(key_base, idx, version)
            return self._provider_usable(prov) and not self._is_stale(
                prov, self.container, key
            )

        def verified(idx: int, data: bytes) -> bool:
            if digests is None or idx >= len(digests):
                return True
            key = self._fragment_key(key_base, idx, version)
            return self._verify_digest(key, data, digests[idx])

        order = sorted(by_index)  # systematic data fragments first
        if not prefer_systematic:
            order = self._rank_providers_by_index(by_index, size, codec)
        preferred = order[: codec.k]
        # Degraded means a fragment the static policy wanted was out of
        # reach — the scheduler routing around a *queued* provider is an
        # optimisation, not degradation, so the flag keeps its meaning.
        degraded = any(not usable(i) for i in preferred)
        decision = None
        if self.scheduler is not None:
            decision = self.scheduler.decide(
                key_base, by_index, size, codec, usable,
                systematic=prefer_systematic,
            )
            if len(decision.order) >= codec.k:
                order = list(decision.order)
                self._note_sched_decision(decision, by_index)
            else:
                decision = None  # too few usable; static path raises below
        chosen = [i for i in order if usable(i)][: codec.k]
        if len(chosen) < codec.k:
            raise DataUnavailable(
                key_base,
                f"only {len(chosen)} of {codec.k} required fragments reachable",
            )
        fragments: dict[int, bytes] = {}
        rejected: set[int] = set()
        if decision is not None and decision.hedge is not None:
            fragments, rejected, hedge_degraded = self._striped_hedged_fetch(
                key_base, version, by_index, chosen, decision.hedge, verified
            )
            degraded = degraded or hedge_degraded
        else:
            ops = [
                CloudOp(
                    by_index[i], "get", self.container, self._fragment_key(key_base, i, version)
                )
                for i in chosen
            ]
            phase = self._run_phase(ops)
            for idx, outcome in zip(chosen, phase.outcomes):
                if outcome.ok and outcome.data is not None:
                    if verified(idx, outcome.data):
                        fragments[idx] = outcome.data
                    else:
                        rejected.add(idx)
        if len(fragments) < codec.k:
            # Outage-boundary races and corrupt fragments both land here:
            # top up from the remaining healthy placements.  Replacements
            # fetch in parallel batches sized to the shortfall — a read that
            # lost f fragments pays ceil(f / need) extra round trips, not f.
            remaining = [
                i
                for i in order
                if i not in fragments and i not in rejected and usable(i)
            ]
            while len(fragments) < codec.k and remaining:
                need = codec.k - len(fragments)
                batch, remaining = remaining[:need], remaining[need:]
                retry = self._run_phase(
                    [
                        CloudOp(
                            by_index[i],
                            "get",
                            self.container,
                            self._fragment_key(key_base, i, version),
                        )
                        for i in batch
                    ]
                )
                for i, outcome in zip(batch, retry.outcomes):
                    data = outcome.data
                    if outcome.ok and data is not None and verified(i, data):
                        fragments[i] = data
            degraded = True
        if len(fragments) < codec.k:
            raise DataUnavailable(key_base, "lost fragments mid-read")
        if degraded:
            self._mark_degraded()
        cached = self._payload_cache.lookup(f"{key_base}#v{version}", fragments)
        if cached is not None:
            # Every fetched fragment is the exact object encoded at write
            # time, so the decode result is provably the cached payload.
            return cached, degraded
        with self.tracer.span("codec.decode", codec=type(codec).__name__, size=size):
            data = codec.decode(fragments, size)
        self.registry.counter(
            "codec_decode_bytes_total", codec=type(codec).__name__
        ).inc(size)
        return data, degraded

    def _rmw_striped(
        self,
        entry: FileEntry,
        offset: int,
        patch: bytes,
        new_content: bytes,
        codec: ErasureCodec,
    ) -> FileEntry:
        """In-place partial update of a striped object (same size).

        This is the erasure-code write-amplification the paper hammers on:
        updating a sub-fragment region requires reading the old affected data
        fragments plus every parity fragment, then writing them all back —
        for RAID5 and a small patch, *"a total of 4 accesses, including
        traffic of 2 reads and 2 writes over the network"*.

        The object's size (hence shard boundaries) must be unchanged;
        growth is handled by the caller as a full restripe.
        """
        if len(new_content) != entry.size:
            raise ValueError("_rmw_striped requires an in-place (same-size) update")
        by_index = dict(entry.placements)
        providers_by_index = {idx: prov for prov, idx in entry.placements}
        if len(by_index) != codec.n:
            raise ValueError(
                f"entry {entry.path!r} has {len(by_index)} placements, codec needs {codec.n}"
            )
        frag_len = codec.fragment_size(entry.size)
        if frag_len == 0:
            return entry
        lo = offset // frag_len
        hi = (offset + max(len(patch), 1) - 1) // frag_len
        affected = [i for i in range(codec.k) if lo <= i <= hi]
        parities = list(range(codec.k, codec.n))
        touched = affected + parities
        self._heal_before_touching({providers_by_index[i] for i in touched})
        # In-place RMW overwrites the *current* version's fragments, so a
        # crash mid-op can never be rolled back (the old bytes are partially
        # gone).  min_needed=0 pins recovery to roll forward from the
        # journaled post-update payload.
        self._journal_plan(
            version=entry.version,
            codec_name=type(codec).__name__,
            replicated=False,
            min_needed=0,
            sites=tuple(
                (
                    providers_by_index[i],
                    self._fragment_key(entry.path, i, entry.version),
                )
                for i in touched
            ),
        )

        # Phase 1: read old affected data fragments and old parities.
        read_ops = [
            CloudOp(
                providers_by_index[i],
                "get",
                self.container,
                self._fragment_key(entry.path, i, entry.version),
            )
            for i in touched
        ]
        read_phase = self._run_phase(read_ops)
        if not read_phase.ok():
            self._mark_degraded()

        # Phase 2: write the new affected fragments + parities.  Fragment
        # content comes from re-encoding the composed object; unaffected data
        # fragments are bit-identical because size and boundaries are fixed.
        fragments = self._encode_fragments(codec, new_content)
        write_ops = [
            CloudOp(
                providers_by_index[i],
                "put",
                self.container,
                self._fragment_key(entry.path, i, entry.version),
                fragments[i],
            )
            for i in touched
        ]
        self._run_phase(write_ops)
        # Re-record digests for the rewritten keys only: their stores now hold
        # the fresh buffers.  Untouched data fragments keep their old stored
        # object — and their old digest, since size and boundaries are fixed.
        # (Recording a never-stored buffer would let its id be recycled while
        # the cache entry lives, breaking the identity-skip soundness.)
        touched_set = set(touched)
        new_digests = []
        for i, f in enumerate(fragments):
            if i in touched_set:
                key = self._fragment_key(entry.path, i, entry.version)
                new_digests.append(self._record_digest(key, f))
            elif entry.digests is not None and i < len(entry.digests):
                new_digests.append(entry.digests[i])
            else:
                new_digests.append(self._digest(f))
        # The rewritten keys freed their old stored objects, so the stale
        # payload entry must go; re-record only when every fragment was
        # rewritten (otherwise some recorded ids would be dangling views).
        self._payload_cache.discard(f"{entry.path}#v{entry.version}")
        if isinstance(new_content, bytes) and len(touched_set) == codec.n:
            self._payload_cache.record(
                f"{entry.path}#v{entry.version}", fragments, new_content
            )
        return replace(entry, modified=self.clock.now, digests=tuple(new_digests))

    def _note_sched_decision(self, decision, by_index: dict[int, str]) -> None:
        """Account one scheduler routing decision (metrics + trace event)."""
        self.registry.counter("sched_decisions_total").inc()
        if decision.parity_picks:
            self.registry.counter("sched_parity_fragments_total").inc(
                decision.parity_picks
            )
        if decision.rotated:
            self.registry.counter("sched_rotations_total").inc()
        if decision.hedge is not None:
            self.registry.histogram(
                "sched_queue_wait_seconds",
                provider=by_index[decision.hedge.gating],
            ).observe(decision.hedge.wait)
        if self.tracer.enabled:
            self.tracer.event(
                "sched.decision",
                key=decision.key,
                chosen=list(decision.chosen),
                parity=decision.parity_picks,
                rotated=decision.rotated,
                hedge=(
                    None
                    if decision.hedge is None
                    else {
                        "backup": decision.hedge.backup,
                        "gating": decision.hedge.gating,
                        "wait": decision.hedge.wait,
                        "cost": decision.hedge.cost,
                    }
                ),
            )

    def _striped_hedged_fetch(
        self,
        key_base: str,
        version: int,
        by_index: dict[int, str],
        chosen: list[int],
        hedge,
        verified,
    ) -> tuple[dict[int, bytes], set[int], bool]:
        """Fetch ``chosen`` fragments plus a concurrent backup fragment;
        advance the clock only to the winning subset's finish.

        Capacity-aware hedging (see :mod:`repro.core.scheduling`): the
        scheduler already decided the gating provider's estimated queue
        wait exceeds the backup's wire+decode cost, so both legs fire at
        once and the first complete k-subset serves.  Mirrors
        :meth:`_hedged_replicated_get`'s accounting — only outcomes that
        were actually waited on feed the health EWMAs; the cancelled leg's
        wire time is recorded as hedge waste.

        Returns ``(fragments, rejected, degraded)``; a failed or corrupt
        fetch falls back to merged bookkeeping and lets the caller's top-up
        loop finish the read.
        """
        gating, backup = hedge.gating, hedge.backup
        main = self._run_phase(
            [
                CloudOp(
                    by_index[i],
                    "get",
                    self.container,
                    self._fragment_key(key_base, i, version),
                )
                for i in chosen
            ],
            advance=False,
            record_latency=False,
        )
        self.collector.bump("hedged_reads")
        self.registry.counter("sched_hedges_total").inc()
        if self._acc is not None:
            self._acc.hedged = True
        if self.tracer.enabled:
            self.tracer.event(
                "hedge.fired",
                primary=by_index[gating],
                backup=by_index[backup],
                delay=0.0,
            )
        b_phase = self._run_phase(
            [
                CloudOp(
                    by_index[backup],
                    "get",
                    self.container,
                    self._fragment_key(key_base, backup, version),
                )
            ],
            advance=False,
            record_latency=False,
        )
        b = b_phase.outcomes[0]
        outcomes = dict(zip(chosen, main.outcomes))

        def good(i: int, o) -> bool:
            return o.ok and o.data is not None and verified(i, o.data)

        main_good = all(good(i, o) for i, o in outcomes.items())
        others_good = all(good(i, o) for i, o in outcomes.items() if i != gating)
        b_good = good(backup, b)
        if main_good or (b_good and others_good):
            others = max(
                (o.finish for i, o in outcomes.items() if i != gating),
                default=0.0,
            )
            main_done = main.elapsed
            alt_done = max(others, b_phase.elapsed) if b_good else math.inf
            if main_good and main_done <= alt_done:
                # The chosen subset answered first: normal read, backup leg
                # cancelled at the winner's finish.
                if main_done > 0:
                    self.clock.advance(main_done)
                self._feed_latency(main.outcomes)
                self._note_hedge_waste(b, main_done)
                return {i: o.data for i, o in outcomes.items()}, set(), False
            # The backup subset completed first (or the gating fragment
            # failed outright): decode around the gating provider.
            self.collector.bump("hedge_wins")
            self.registry.counter("sched_hedge_wins_total").inc()
            if self.tracer.enabled:
                self.tracer.event("hedge.win", provider=by_index[backup])
            if alt_done > 0:
                self.clock.advance(alt_done)
            self._feed_latency(
                [o for i, o in outcomes.items() if i != gating] + [b]
            )
            self._note_hedge_waste(outcomes[gating], alt_done)
            fragments = {i: o.data for i, o in outcomes.items() if i != gating}
            fragments[backup] = b.data
            # Degraded only when the gating fragment actually failed — a
            # backup that merely outran a queued provider is a normal read.
            return fragments, set(), not main_good
        # A non-gating fragment failed or was corrupt: no subset won.  Wait
        # out both legs, keep every intact fragment, and let the top-up
        # logic recover — same degraded semantics as the unhedged path.
        done = max(main.elapsed, b_phase.elapsed)
        if done > 0:
            self.clock.advance(done)
        self._feed_latency(main.outcomes)
        self._feed_latency(b_phase.outcomes)
        fragments, rejected = {}, set()
        for i, o in [*outcomes.items(), (backup, b)]:
            if o.ok and o.data is not None:
                if verified(i, o.data):
                    fragments[i] = o.data
                else:
                    rejected.add(i)
        return fragments, rejected, True

    def _rank_providers_by_index(
        self, by_index: dict[int, str], size: int, codec: ErasureCodec
    ) -> list[int]:
        """Fragment indices sorted by estimated fetch time, fastest first.

        Static (clean latency model only) by default; with a read
        scheduler attached the load-aware score takes over, so the same
        ranking DepSky-CA and FMSR reads use inherits queue awareness.
        """
        frag_size = codec.fragment_size(size)
        if self.scheduler is not None:
            return sorted(
                by_index,
                key=lambda i: (
                    self.scheduler.score_provider(by_index[i], frag_size),
                    i,
                ),
            )
        return sorted(
            by_index,
            key=lambda i: self._estimate_latency(by_index[i], frag_size, "down"),
        )

    def _remove_placements(
        self, key_base: str, placements: list[tuple[str, int]], version: int, replicated: bool
    ) -> None:
        self._heal_before_touching({p for p, _ in placements})
        ops = []
        for prov, idx in placements:
            key = (
                f"{key_base}#v{version}"
                if replicated
                else self._fragment_key(key_base, idx, version)
            )
            ops.append(CloudOp(prov, "remove", self.container, key))
        self._run_phase(ops)

    # --------------------------------------------------- metadata management
    @abstractmethod
    def _meta_write_targets(self) -> list[str]:
        """Providers that receive directory metadata groups (scheme policy)."""

    def _meta_codec(self) -> ErasureCodec | None:
        """Codec for metadata groups; None means plain replication."""
        return None

    def _persist_metadata(self, directory: str) -> None:
        """Write-through the directory's metadata group (version = clock tick)."""
        blob = self.meta.encode_dir(directory)
        key_base = group_key(directory)
        targets = self._meta_write_targets()
        codec = self._meta_codec()
        # Journal the redo image before the group write scatters: a crash
        # mid-persist can tear a striped group beyond k-of-n reconstruction,
        # and recovery then reads this copy instead (see recover_namespace).
        if (
            self.journal is not None
            and self._jctx is not None
            and self._jctx.seq is not None
        ):
            self.journal.attach_meta(self._jctx.seq, directory, blob)
        # Metadata groups are identified by key alone (no version suffix):
        # the newest write wins, exactly like the paper's metadata updates.
        if codec is None:
            self._heal_before_touching(set(targets))
            ops = [CloudOp(p, "put", self.container, key_base, blob) for p in targets]
        else:
            self._heal_before_touching(set(targets))
            fragments = self._encode_fragments(codec, blob)
            ops = [
                CloudOp(p, "put", self.container, f"{key_base}.{i}", fragments[i])
                for i, p in enumerate(targets)
            ]
        if self.sequential_replication and codec is None:
            for op in ops:
                self._run_phase([op])
        else:
            self._run_phase(ops)
        self.meta.touch(directory)
        self._meta_sizes[directory] = len(blob)

    def _fetch_metadata(self, directory: str) -> None:
        """Charge a metadata-group read on a client-cache miss."""
        if self.meta.is_cached(directory):
            return
        size = self._meta_sizes.get(directory)
        if size is None:
            # Never persisted (empty directory): nothing to fetch.
            self.meta.touch(directory)
            return
        key_base = group_key(directory)
        targets = self._meta_write_targets()
        codec = self._meta_codec()
        try:
            if codec is None:
                self._read_replicated_meta(key_base, targets)
            else:
                placements = [(p, i) for i, p in enumerate(targets)]
                self._read_striped_meta(key_base, size, codec, placements)
        except DataUnavailable:
            # Metadata group unreachable in the cloud; the in-client
            # namespace remains authoritative, so degrade but continue.
            self._mark_degraded()
        self.meta.touch(directory)

    def _read_replicated_meta(self, key: str, providers: list[str]) -> None:
        ranked = self._rank_providers(list(providers), 0, "down", adaptive=True)
        for name in ranked:
            if not self._provider_usable(name) or self._is_stale(
                name, self.container, key
            ):
                self._mark_degraded()
                continue
            phase = self._run_phase([CloudOp(name, "get", self.container, key)])
            if phase.outcomes[0].ok:
                return
            self._mark_degraded()
        raise DataUnavailable(key, f"no metadata replica reachable on {providers}")

    def _read_striped_meta(
        self,
        key_base: str,
        size: int,
        codec: ErasureCodec,
        placements: list[tuple[str, int]],
    ) -> None:
        by_index = {idx: prov for prov, idx in placements}
        order = sorted(by_index)
        usable = [
            i
            for i in order
            if self._provider_usable(by_index[i])
            and not self._is_stale(by_index[i], self.container, f"{key_base}.{i}")
        ]
        if any(i not in usable for i in order[: codec.k]):
            self._mark_degraded()
        chosen = usable[: codec.k]
        if len(chosen) < codec.k:
            raise DataUnavailable(key_base, "metadata stripe unreachable")
        ops = [
            CloudOp(by_index[i], "get", self.container, f"{key_base}.{i}")
            for i in chosen
        ]
        self._run_phase(ops)

    # ------------------------------------------------- namespace recovery
    @_public_op
    def recover_namespace(self) -> OpReport:
        """Rebuild the in-client namespace from the cloud metadata groups.

        This is what a restarted client (or a second machine pointed at the
        same Cloud-of-Clouds) runs before serving: list the metadata-group
        objects, fetch each through the scheme's own redundancy, and merge
        the entries.  Everything is charged like normal traffic.

        Returns a ``recover`` report; afterwards :attr:`namespace` holds
        every file a previous client persisted metadata for.
        """
        self._begin_op()
        codec = self._meta_codec()
        targets = self._meta_write_targets()
        # Consistency-update any returned-but-stale metadata provider first:
        # a replica that missed group writes during an outage must not serve
        # the recovery read (its blob predates the writes its log owes).
        self._heal_before_touching(set(targets))
        group_keys = self._list_meta_group_keys(targets, striped=codec is not None)
        for base_key in sorted(group_keys):
            directory = base_key[len("__meta__"):]
            fallback = self._journaled_meta_blob(directory)
            try:
                blob = self._fetch_meta_blob(base_key, codec, targets)
            except ValueError:
                # Torn striped group: a crash mid-persist left fragments of
                # two generations and no k-subset decodes.  The pending
                # intent journaled the redo image — the one consistent copy.
                if fallback is None:
                    raise
                blob = fallback
            if blob is None:
                blob = fallback
            if blob is None:
                continue
            try:
                entries = self.meta.apply_group(blob)
            except ValueError:
                # Same tear, subtler face: equal-length mixed fragments
                # decode into bytes that are not a metadata group.
                if fallback is None or fallback == blob:
                    raise
                blob = fallback
                entries = self.meta.apply_group(blob)
            if entries:
                self._meta_sizes[directory] = len(blob)
                self.meta.touch(directory)
        self._after_namespace_recovery()
        report = self._end_op("recover", "namespace")
        self.collector.add(report)
        return report

    def _after_namespace_recovery(self) -> None:
        """Hook for schemes that keep per-object client state (NCCloud)."""

    def _journaled_meta_blob(self, directory: str) -> bytes | None:
        """Redo image of ``directory``'s group from a pending intent, if any."""
        if self.journal is None:
            return None
        for intent in self.journal.pending():
            blob = intent.meta_blobs.get(directory)
            if blob is not None:
                return blob
        return None

    def _list_meta_group_keys(self, targets: list[str], striped: bool) -> set[str]:
        """Metadata-group base keys, from the first listable provider.

        Group writes still owed to *unreachable* providers sit in their
        write logs; those keys are unioned in so a group whose publish never
        reached any listable provider is still recovered (from the durable
        log) rather than silently dropped.
        """
        logged: set[str] = set()
        for log in self._write_logs.values():
            for e in log.peek():
                if e.kind == "put" and is_group_key(e.key):
                    logged.add(self._meta_base_key(e.key, striped))
        for name in self._rank_providers(list(targets), 0, "down"):
            if not self.provider(name).is_available():
                continue
            phase = self._run_phase([CloudOp(name, "list", self.container)])
            outcome = phase.outcomes[0]
            if not outcome.ok or outcome.data is None:
                continue
            keys = outcome.data.decode().split("\n") if outcome.data else []
            groups: set[str] = set(logged)
            for key in keys:
                if not key.startswith("__meta__"):
                    continue
                groups.add(self._meta_base_key(key, striped))
            return groups
        if logged:
            return logged
        raise DataUnavailable("namespace", f"no metadata provider listable in {targets}")

    @staticmethod
    def _meta_base_key(key: str, striped: bool) -> str:
        if striped:
            base, dot, _idx = key.rpartition(".")
            return base if dot else key
        return key

    def _fetch_meta_blob(
        self, base_key: str, codec: ErasureCodec | None, targets: list[str]
    ) -> bytes | None:
        """Fetch and reassemble one metadata group's blob (None if gone).

        Replicas that missed writes (stale: a pending write-log entry
        supersedes their stored blob) never serve; when no clean stored copy
        is reachable, the newest *logged* payload — the durable client-local
        record of the unreplayed publish — serves instead.
        """
        if codec is None:
            for name in self._rank_providers(list(targets), 0, "down"):
                if not self.provider(name).is_available() or self._is_stale(
                    name, self.container, base_key
                ):
                    continue
                phase = self._run_phase(
                    [CloudOp(name, "get", self.container, base_key)]
                )
                outcome = phase.outcomes[0]
                if outcome.ok and outcome.data is not None:
                    return outcome.data
            return self._newest_logged_meta(base_key, targets)
        fragments: dict[int, bytes] = {}
        for i, name in enumerate(targets):
            if len(fragments) >= codec.k:
                break
            if self._is_stale(name, self.container, f"{base_key}.{i}"):
                # The provider's stored fragment predates the pending logged
                # write; the logged payload is the current one.
                pending = self._logged_payload(name, f"{base_key}.{i}")
                if pending is not None:
                    fragments[i] = pending
                continue
            if not self.provider(name).is_available():
                pending = self._logged_payload(name, f"{base_key}.{i}")
                if pending is not None:
                    fragments[i] = pending
                continue
            phase = self._run_phase(
                [CloudOp(name, "get", self.container, f"{base_key}.{i}")]
            )
            outcome = phase.outcomes[0]
            if outcome.ok and outcome.data is not None:
                fragments[i] = outcome.data
        if len(fragments) < codec.k:
            return None
        frag_len = len(next(iter(fragments.values())))
        # Group blobs are JSON: decode at full capacity and strip the zero
        # padding (JSON never ends in NUL bytes).
        blob = codec.decode(fragments, frag_len * codec.k)
        return blob.rstrip(b"\x00")

    def _newest_logged_meta(self, key: str, targets: list[str]) -> bytes | None:
        """Most recently logged (unreplayed) publish of a replicated group."""
        best: tuple[float, bytes] | None = None
        for name in targets:
            log = self._write_logs.get(name)
            if not log:
                continue
            for e in log.peek():
                if (
                    e.kind == "put"
                    and e.container == self.container
                    and e.key == key
                    and e.data is not None
                    and (best is None or e.logged_at >= best[0])
                ):
                    best = (e.logged_at, e.data)
        return None if best is None else best[1]

    # ------------------------------------------------------------ public API
    @_public_op
    def put(self, path: str, data: bytes) -> OpReport:
        """Create or overwrite a whole file."""
        path = normalize_path(path)
        self._begin_op()
        prev = self.namespace.lookup(path)
        data = bytes(data)
        self._journal_arm("put", path, prev, data)
        entry = self._put_file(path, data, prev)
        self.namespace.upsert(entry)
        if prev is not None and self._placement_changed(prev, entry):
            self._remove_stale_fragments(prev)
        self._persist_metadata(dirname(path))
        self._journal_commit()
        report = self._end_op("put", path)
        self.collector.add(report)
        return report

    @_public_op
    def get(self, path: str) -> tuple[bytes, OpReport]:
        """Read a whole file (degraded reconstruction during outages)."""
        path = normalize_path(path)
        self._begin_op()
        self._fetch_metadata(dirname(path))
        entry = self.namespace.get(path)
        data, _degraded = self._read_file(entry)
        if not isinstance(data, bytes):
            data = bytes(data)  # materialize zero-copy buffers at the API edge
        self.namespace.upsert(entry.touched())
        report = self._end_op("get", path)
        self.collector.add(report)
        if len(data) != entry.size:
            raise AssertionError(
                f"scheme returned {len(data)} bytes for {path}, expected {entry.size}"
            )
        return data, report

    @_public_op
    def update(self, path: str, offset: int, patch: bytes) -> OpReport:
        """Partial write at ``offset`` (the paper's small-update case)."""
        path = normalize_path(path)
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._begin_op()
        entry = self.namespace.get(path)
        old = self._peek_content(entry)
        new_size = max(entry.size, offset + len(patch))
        buf = bytearray(new_size)
        buf[: entry.size] = old
        buf[offset : offset + len(patch)] = patch
        new_content = bytes(buf)
        self._journal_arm("update", path, entry, new_content)
        new_entry = self._update_file(entry, offset, patch, new_content)
        self.namespace.upsert(new_entry)
        if self._placement_changed(entry, new_entry):
            self._remove_stale_fragments(entry)
        self._persist_metadata(dirname(path))
        self._journal_commit()
        report = self._end_op("update", path)
        self.collector.add(report)
        return report

    @_public_op
    def remove(self, path: str) -> OpReport:
        """Delete a file everywhere."""
        path = normalize_path(path)
        self._begin_op()
        entry = self.namespace.remove(path)
        self._journal_arm("remove", path, entry, None)
        # Removes know their plan up front: the keys being deleted.  A
        # crashed remove always rolls forward (the client already acked
        # nothing, and half-deleted redundancy is worthless).
        codec = self._codec_for(entry)
        self._journal_plan(
            version=entry.version,
            codec_name=entry.codec,
            replicated=codec is None,
            min_needed=0,
            sites=tuple(
                (prov, self._placement_storage_key(entry, idx, codec is None))
                for prov, idx in entry.placements
            ),
        )
        self._payload_cache.discard(f"{entry.path}#v{entry.version}")
        self._remove_file(entry)
        self._persist_metadata(dirname(path))
        self._journal_commit()
        report = self._end_op("remove", path)
        self.collector.add(report)
        return report

    @_public_op
    def stat(self, path: str) -> tuple[FileEntry, OpReport]:
        """Metadata lookup (the access type dominating real workloads)."""
        path = normalize_path(path)
        self._begin_op()
        self._fetch_metadata(dirname(path))
        entry = self.namespace.get(path)
        report = self._end_op("stat", path)
        self.collector.add(report)
        return entry, report

    @_public_op
    def listdir(self, directory: str) -> tuple[list[str], OpReport]:
        """Directory listing through the metadata group."""
        self._begin_op()
        self._fetch_metadata(directory if directory == "/" else normalize_path(directory))
        names = self.namespace.list_dir(directory)
        report = self._end_op("list", directory)
        self.collector.add(report)
        return names, report

    # ------------------------------------------------- content introspection
    def _peek_content(self, entry: FileEntry) -> bytes:
        """The client's own view of current file content (no wire cost).

        Used by ``update`` to compose the post-update object: the writer
        already holds the file it is modifying, so materialising it from the
        simulator's stores is bookkeeping, not a billed transfer.
        """
        fragments: dict[int, bytes] = {}
        codec = self._codec_for(entry)
        for prov, idx in entry.placements:
            store = self.provider(prov).store
            key = (
                f"{entry.path}#v{entry.version}"
                if codec is None
                else self._fragment_key(entry.path, idx, entry.version)
            )
            # A pending write-log entry supersedes whatever the provider
            # currently stores: the stored object is stale until the
            # consistency update replays the log.
            logged = self._logged_payload(prov, key)
            if logged is not None:
                fragments[idx] = logged
            elif store.has(self.container, key):
                fragments[idx] = store.get(self.container, key).data
        if codec is None:
            if not fragments:
                raise DataUnavailable(entry.path, "no replica content found")
            return next(iter(fragments.values()))
        return codec.decode(fragments, entry.size)

    def _logged_payload(self, provider: str, key: str) -> bytes | None:
        log = self._write_logs.get(provider)
        if not log:
            return None
        for e in log.peek():
            if e.container == self.container and e.key == key and e.kind == "put":
                return e.data
        return None

    @staticmethod
    def _placement_changed(old: FileEntry, new: FileEntry) -> bool:
        return (
            old.version != new.version
            or old.placements != new.placements
            or old.codec != new.codec
        )

    def _remove_stale_fragments(self, old: FileEntry) -> None:
        """Garbage-collect the previous version's objects."""
        self._payload_cache.discard(f"{old.path}#v{old.version}")
        codec = self._codec_for(old)
        self._remove_placements(
            old.path, list(old.placements), old.version, replicated=codec is None
        )

    # --------------------------------------------------------- scheme policy
    @abstractmethod
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        """Codec used for this entry's data (None = replication)."""

    @abstractmethod
    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        """Place a new version of ``path``; returns the new entry."""

    @abstractmethod
    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        """Fetch and reconstruct content; returns (data, degraded)."""

    @abstractmethod
    def _remove_file(self, entry: FileEntry) -> None:
        """Delete the entry's objects from the clouds."""

    def _update_file(
        self, entry: FileEntry, offset: int, patch: bytes, new_content: bytes
    ) -> FileEntry:
        """Default partial-update: rewrite the whole object."""
        return self._put_file(entry.path, new_content, entry)

    # ------------------------------------------------------- maintenance plane
    def attach_maintenance(self, config=None, *, loop=None, ledger=None):
        """Attach a background :class:`~repro.maintenance.MaintenancePlane`.

        Builds the plane (anti-entropy scrubber, budgeted repair scheduler,
        live migration engine) on this scheme's clock and starts its
        recurring scrub schedule.  Detached (the default), every foreground
        path is byte-identical to a maintenance-free build: no extra RNG
        draws, no clock movement, no metric emissions — the same zero-cost
        bar the tracer and SLO tracker meet.  Returns the plane.
        """
        from repro.maintenance.plane import MaintenancePlane

        if self.maintenance is not None:
            raise RuntimeError("a maintenance plane is already attached")
        plane = MaintenancePlane(self, config=config, loop=loop, ledger=ledger)
        self.maintenance = plane
        plane.start()
        return plane

    def detach_maintenance(self):
        """Stop and unhook the maintenance plane (returns it, or None)."""
        plane = self.maintenance
        if plane is not None:
            plane.stop()
            self.maintenance = None
        return plane

    # ------------------------------------------- crash consistency (journal)
    def attach_journal(self, journal: IntentJournal | None = None) -> IntentJournal:
        """Attach a write-ahead :class:`~repro.fs.journal.IntentJournal`.

        With a journal attached, every mutating public op records an intent
        before its first fragment put and commits it after the namespace
        publish, giving :meth:`recover` the evidence to roll a crashed op
        forward or back.  The journal is pure bookkeeping — attaching one
        leaves simulated timings byte-identical (no RNG draws, no clock
        movement).  Pass an existing journal to model a durable client-local
        log surviving a crash (the chaos engine hands the dead client's
        journal to its replacement).
        """
        if self.journal is not None:
            raise RuntimeError("a journal is already attached")
        self.journal = journal if journal is not None else IntentJournal()
        self._publish_journal_gauges()
        return self.journal

    def install_crash_schedule(self, schedule: CrashSchedule | None) -> None:
        """Arm (or, with None, disarm) scripted crash injection.

        The schedule's op counter ticks once per cloud op entering
        :meth:`_run_phase`; a matching crash point raises
        :class:`~repro.faults.crash.ClientCrash` *before* that op applies.
        The schedule object is owned by the caller so the counter survives
        client rebuilds.
        """
        self._crash = schedule

    def _journal_arm(
        self,
        kind: str,
        path: str,
        prev: FileEntry | None,
        payload: bytes | None,
    ) -> None:
        """Open the journal context for the mutating op now in flight."""
        if self.journal is None:
            return
        self._jctx = _JournalCtx(kind=kind, path=path, prev=prev, payload=payload)

    def _journal_plan(
        self,
        *,
        version: int,
        codec_name: str,
        replicated: bool,
        min_needed: int,
        sites: tuple[tuple[str, str], ...],
    ) -> None:
        """Record the armed op's placement plan as a pending intent.

        Called by the write helpers once sites are known, immediately before
        the first fragment put.  First plan wins: the metadata-group write
        that follows the data write reuses the same helpers, and must not
        journal a second intent.
        """
        ctx = self._jctx
        if ctx is None or ctx.seq is not None or self.journal is None:
            return
        intent = self.journal.begin(
            kind=ctx.kind,
            path=ctx.path,
            version=version,
            codec=codec_name,
            replicated=replicated,
            min_needed=min_needed,
            sites=sites,
            payload=ctx.payload,
            prev=ctx.prev,
            logged_at=self.clock.now,
        )
        ctx.seq = intent.seq
        self.registry.counter("journal_intents_total", op=ctx.kind).inc()
        self._publish_journal_gauges()

    def _journal_commit(self) -> None:
        """The op published its namespace entry: fulfil the intent."""
        ctx = self._jctx
        self._jctx = None
        if ctx is None or ctx.seq is None or self.journal is None:
            return
        self.journal.commit(ctx.seq)
        self.registry.counter("journal_commits_total").inc()
        self._publish_journal_gauges()

    def _publish_journal_gauges(self) -> None:
        if self.journal is None:
            return
        self.registry.gauge("journal_pending").set(len(self.journal))
        self.registry.gauge("journal_payload_bytes").set(
            self.journal.payload_bytes()
        )

    def recover(self) -> dict:
        """Crash recovery: resolve pending journal intents, sweep orphans.

        Run by a restarted client after :meth:`recover_namespace`.  For each
        unresolved intent, recovery counts how many planned placements
        landed and decides:

        - **roll forward** (``landed >= min_needed``, pending put/update):
          redo the op from the journaled payload via :meth:`put` — the new
          version becomes authoritative and is fully redundant;
        - **roll back** (too few landed): restore the pre-op namespace entry
          (or absence) and republish the directory's metadata group;
        - **remove intents** always complete the removal (``min_needed=0``);
        - **aborted** intents (op failed cleanly before the crash) need no
          namespace action — their stray fragments are orphans.

        Afterwards a full orphan sweep lists every reachable provider and
        deletes keys no namespace entry (nor metadata group, nor
        scheme-private key via :meth:`_extra_expected_keys`) accounts for —
        routed through the maintenance plane's budgeted scheduler when one
        is attached, inline otherwise.  The journal drains to empty.

        Returns a JSON-friendly summary of the actions taken.
        """
        if self.journal is None:
            raise RuntimeError("recover() requires an attached journal")
        # Recovery itself must not trip scripted crash points: the schedule
        # counts foreground ops, and a recovery that died mid-flight would
        # simply run again from the same journal.
        schedule, self._crash = self._crash, None
        summary: dict = {
            "rolled_forward": [],
            "rolled_back": [],
            "removals_completed": [],
            "aborted_gc": [],
            "orphans_removed": {},
        }
        try:
            for intent in self.journal.pending():
                action = self._recover_intent(intent)
                summary[action].append(intent.describe())
                self.journal.resolve(intent.seq)
                if action == "rolled_forward":
                    self.registry.counter("journal_rollforward_total").inc()
                elif action == "rolled_back":
                    self.registry.counter("journal_rollback_total").inc()
            summary["orphans_removed"] = self._sweep_orphans()
            self._publish_journal_gauges()
        finally:
            self._crash = schedule
        return summary

    def _recover_intent(self, intent) -> str:
        """Resolve one journaled intent; returns the summary bucket name."""
        if intent.state == "aborted":
            # The op already failed in front of its caller; nothing to redo.
            # Whatever it scattered is swept as orphans.
            return "aborted_gc"
        if intent.kind == "remove":
            # A crashed remove always completes: the file was already gone
            # from the client's namespace when the plan was journaled.
            current = self.namespace.lookup(intent.path)
            if current is not None and current.version <= intent.version:
                self.remove(intent.path)
            return "removals_completed"
        landed = self._count_landed(intent)
        if landed >= intent.min_needed:
            # Enough of the new version exists that redoing the op from the
            # journaled payload is the cheaper truth (and for in-place RMW,
            # min_needed=0, the only correct one).
            self.put(intent.path, intent.payload)
            return "rolled_forward"
        self._rollback_intent(intent)
        return "rolled_back"

    def _count_landed(self, intent) -> int:
        """Planned placements that durably left the client before the crash.

        A placement counts when the provider's store holds the planned key
        (a client-side peek, no wire cost) **or** the provider's durable
        write log retains the put awaiting replay — a logged fragment is as
        committed as a landed one, since the log survives the crash and the
        consistency update will deliver it.  Counting logged placements is
        what makes the roll-forward/back decision safe: once a scheme op
        finishes scattering, every site is landed-or-logged, so a crash in
        the later windows (stale-fragment removal, metadata persist — where
        the *previous* version is already being destroyed) always resolves
        forward.  Unreachable providers with nothing logged count as not
        landed — recovery cannot lean on bytes it cannot fetch.
        """
        landed = 0
        for prov, key in intent.sites:
            try:
                provider = self.provider(prov)
            except KeyError:
                continue
            if self._logged_payload(prov, key) is not None:
                landed += 1
            elif provider.is_available() and provider.store.has(self.container, key):
                landed += 1
        return landed

    def _rollback_intent(self, intent) -> None:
        """Restore the pre-op namespace entry and republish its group."""
        self._begin_op()
        if intent.prev is not None:
            self.namespace.upsert(intent.prev)
        else:
            try:
                self.namespace.remove(intent.path)
            except FileNotFoundError:
                pass
        self._persist_metadata(dirname(intent.path))
        report = self._end_op("recover", intent.path)
        self.collector.add(report)

    def _extra_expected_keys(self) -> set[str]:
        """Scheme-private storage keys the orphan sweep must not touch."""
        return set()

    def _expected_keys(self) -> set[str]:
        """Every storage key the current namespace accounts for."""
        expected: set[str] = set()
        for path in self.namespace.paths():
            entry = self.namespace.lookup(path)
            if entry is None:
                continue
            codec = self._codec_for(entry)
            for prov, idx in entry.placements:
                expected.add(
                    self._placement_storage_key(entry, idx, codec is None)
                )
        expected |= self._extra_expected_keys()
        return expected

    def _sweep_orphans(self) -> dict[str, int]:
        """Delete unaccounted keys from every reachable provider.

        Keys with a pending write-log entry are skipped (the consistency
        update owns them); metadata-group keys are always kept.  With a
        maintenance plane attached the deletions are enqueued on its
        budgeted orphan sweeper instead of issued inline.
        """
        expected = self._expected_keys()
        removed: dict[str, int] = {}
        plane = self.maintenance
        for p in self.api.providers():
            name = p.name
            if not p.is_available():
                continue
            self._begin_op()
            phase = self._run_phase([CloudOp(name, "list", self.container)])
            outcome = phase.outcomes[0]
            keys = (
                outcome.data.decode().split("\n")
                if outcome.ok and outcome.data
                else []
            )
            log = self._write_logs.get(name)
            orphans = [
                k
                for k in keys
                if k
                and not is_group_key(k)
                and k not in expected
                and not (log is not None and log.has_pending(self.container, k))
            ]
            if orphans and plane is not None and plane.orphans is not None:
                for k in orphans:
                    plane.orphans.enqueue(name, self.container, k)
            elif orphans:
                phase = self._run_phase(
                    [CloudOp(name, "remove", self.container, k) for k in orphans]
                )
                ok = sum(1 for o in phase.outcomes if o.ok)
                if ok:
                    removed[name] = ok
                    self.registry.counter(
                        "orphan_gc_removed_total", provider=name
                    ).inc(ok)
            report = self._end_op("recover", f"orphan-sweep:{name}")
            self.collector.add(report)
        return removed

    def _placement_storage_key(self, entry: FileEntry, idx: int, replicated: bool) -> str:
        return (
            f"{entry.path}#v{entry.version}"
            if replicated
            else self._fragment_key(entry.path, idx, entry.version)
        )

    def _expected_digest(self, entry: FileEntry, idx: int) -> str | None:
        if entry.digests and idx < len(entry.digests):
            return entry.digests[idx]
        return None

    def _min_needed(self, entry: FileEntry, codec: ErasureCodec | None) -> int:
        """Intact placements required to reconstruct ``entry``'s payload."""
        return 1 if codec is None else codec.k

    @_public_op
    def verify_object(self, path: str, deep: bool = True) -> ObjectAudit:
        """Audit every placement of ``path`` (one ``scrub`` op).

        Deep verification fetches each fragment/replica and checks it against
        the write-time digest, so silent corruption and truncation surface as
        ``corrupt`` findings; ``deep=False`` only probes existence (``head``),
        which is cheaper but blind to bit rot.  Placements on unavailable
        providers are reported ``unreachable``; keys superseded by a pending
        write-log entry are ``stale`` (the consistency update owns them).
        All traffic is charged like any other operation.
        """
        path = normalize_path(path)
        self._begin_op()
        entry = self.namespace.get(path)
        audit = self._audit_entry(entry, deep)
        report = self._end_op("scrub", path)
        self.collector.add(report)
        return audit

    def _audit_entry(self, entry: FileEntry, deep: bool) -> ObjectAudit:
        """Audit one entry inside the current op accounting."""
        codec = self._codec_for(entry)
        replicated = codec is None
        min_needed = self._min_needed(entry, codec)
        findings: list[VerifyFinding] = []
        probe_sites: list[tuple[str, int, str]] = []
        for prov, idx in entry.placements:
            key = self._placement_storage_key(entry, idx, replicated)
            if self._is_stale(prov, self.container, key):
                findings.append(VerifyFinding(entry.path, prov, key, "stale", idx))
            elif not self._provider_usable(prov):
                findings.append(
                    VerifyFinding(entry.path, prov, key, "unreachable", idx)
                )
            else:
                probe_sites.append((prov, idx, key))
        checked = 0
        bytes_verified = 0
        if probe_sites:
            kind = "get" if deep else "head"
            phase = self._run_phase(
                [CloudOp(prov, kind, self.container, key) for prov, _, key in probe_sites]
            )
            for (prov, idx, key), outcome in zip(probe_sites, phase.outcomes):
                checked += 1
                if not outcome.ok:
                    found = (
                        "missing"
                        if isinstance(outcome.error, NoSuchObject)
                        else "unreachable"
                    )
                    findings.append(VerifyFinding(entry.path, prov, key, found, idx))
                    continue
                if deep and outcome.data is not None:
                    bytes_verified += len(outcome.data)
                    expected = self._expected_digest(entry, idx)
                    if expected is not None and not self._verify_digest(
                        key, outcome.data, expected
                    ):
                        findings.append(
                            VerifyFinding(entry.path, prov, key, "corrupt", idx)
                        )
        if findings:
            self._mark_degraded()
        return ObjectAudit(
            path=entry.path,
            version=entry.version,
            findings=tuple(findings),
            checked=checked,
            bytes_verified=bytes_verified,
            total=len(entry.placements),
            min_needed=min_needed,
        )

    @_public_op
    def repair_object(self, path: str, audit: ObjectAudit | None = None) -> RepairResult:
        """Restore full redundancy for ``path`` (one ``repair`` op).

        Re-reads the object through the scheme's own degraded-read path
        (digest-verified, so persistent corruption cannot poison the source),
        then rewrites only the damaged placements — a replica re-put, or a
        re-encode of exactly the affected fragments.  A stale ``audit`` (from
        an earlier scrub of a different version) is re-taken in place.

        Two classes of placement are deliberately *skipped*:

        - keys with a pending write-log entry — replay draining and a repair
          of the same key would race to double-write, so the consistency
          update keeps ownership (see :meth:`WriteLog.has_pending
          <repro.core.recovery.WriteLog.has_pending>`);
        - placements on currently unreachable providers — nothing can be
          written there; the scheduler re-queues the object.

        Raises :class:`DataUnavailable` when too few intact placements
        remain to reconstruct the payload (genuine data loss).
        """
        path = normalize_path(path)
        self._begin_op()
        entry = self.namespace.get(path)
        if audit is None or audit.version != entry.version:
            audit = self._audit_entry(entry, deep=True)
        codec = self._codec_for(entry)
        replicated = codec is None
        targets: list[VerifyFinding] = []
        skipped_pending: list[VerifyFinding] = []
        skipped_unreachable: list[VerifyFinding] = []
        for f in audit.findings:
            if f.kind == "stale":
                skipped_pending.append(f)
                continue
            if f.kind == "unreachable" or not self._provider_usable(f.provider):
                skipped_unreachable.append(f)
                continue
            # Re-check at repair time: a foreground write may have landed in
            # the provider's log between the scrub and this repair.
            if self._write_logs[f.provider].has_pending(self.container, f.key):
                skipped_pending.append(f)
                continue
            targets.append(f)
        bytes_written = 0
        if targets and self.repair_by_rewrite:
            data, _degraded = self._read_file(entry)
            up_before = self._acc.bytes_up
            data = bytes(data)
            self._journal_arm("put", path, entry, data)
            new_entry = self._put_file(entry.path, data, entry)
            self.namespace.upsert(new_entry)
            if self._placement_changed(entry, new_entry):
                self._remove_stale_fragments(entry)
            self._persist_metadata(dirname(path))
            self._journal_commit()
            bytes_written = self._acc.bytes_up - up_before
            repaired = tuple(targets)
            # The rewrite supersedes the old version wholesale, pending
            # write-log entries for it included.
            skipped_pending = []
            skipped_unreachable = []
        elif targets:
            data, _degraded = self._read_file(entry)
            if replicated:
                ops = [
                    CloudOp(f.provider, "put", self.container, f.key, data)
                    for f in targets
                ]
                phase = self._run_phase(ops)
                bytes_written += phase.bytes_up
                for f, outcome in zip(targets, phase.outcomes):
                    if outcome.ok:
                        self._record_digest(f.key, data)
            else:
                fragments = self._encode_fragments(codec, data)
                ops = [
                    CloudOp(
                        f.provider,
                        "put",
                        self.container,
                        f.key,
                        fragments[f.fragment],
                    )
                    for f in targets
                ]
                phase = self._run_phase(ops)
                bytes_written += phase.bytes_up
                # The rewritten keys rebound to fresh buffers: the stale
                # payload-cache entry must go before ids can be recycled.
                self._payload_cache.discard(f"{entry.path}#v{entry.version}")
                for f, outcome in zip(targets, phase.outcomes):
                    if outcome.ok:
                        self._record_digest(f.key, fragments[f.fragment])
            # A put that failed mid-repair was write-logged by the phase and
            # will land via the consistency update; it still counts as owed
            # to that path, not to this repair.
            repaired = tuple(
                f for f, o in zip(targets, phase.outcomes) if o.ok
            )
            skipped_unreachable.extend(
                f for f, o in zip(targets, phase.outcomes) if not o.ok
            )
        else:
            repaired = ()
        report = self._end_op("repair", path)
        self.collector.add(report)
        return RepairResult(
            path=path,
            repaired=repaired,
            skipped_pending=tuple(skipped_pending),
            skipped_unreachable=tuple(skipped_unreachable),
            bytes_written=bytes_written,
        )

    @_public_op
    def migrate_object(self, path: str) -> OpReport:
        """Re-place one object under the scheme's *current* placement policy.

        Read through the old placement (degraded reconstruction if needed),
        write through :meth:`_put_file` — which consults whatever placement
        the scheme would choose for a fresh write today — then garbage-collect
        the old fragments.  Atomic per key: the namespace flips to the new
        entry only after the new placement is fully written, so a crash
        mid-migration leaves the old (intact) version authoritative.
        """
        path = normalize_path(path)
        self._begin_op()
        entry = self.namespace.get(path)
        data, _degraded = self._read_file(entry)
        if not isinstance(data, bytes):
            data = bytes(data)
        self._journal_arm("put", path, entry, data)
        new_entry = self._put_file(path, data, entry)
        self.namespace.upsert(new_entry)
        if self._placement_changed(entry, new_entry):
            self._remove_stale_fragments(entry)
        self._persist_metadata(dirname(path))
        self._journal_commit()
        report = self._end_op("migrate", path)
        self.collector.add(report)
        return report

    # --------------------------------------------------------------- queries
    def stored_bytes_by_provider(self) -> dict[str, int]:
        """Physical bytes currently stored per provider (space-overhead view)."""
        return {p.name: p.store.total_bytes() for p in self.api.providers()}

    def total_stored_bytes(self) -> int:
        return sum(self.stored_bytes_by_provider().values())

    def space_overhead(self) -> float:
        """Physical bytes / logical bytes (1.0 = no redundancy)."""
        logical = self.namespace.total_bytes()
        if logical == 0:
            return 0.0
        return self.total_stored_bytes() / logical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(providers={self.provider_names})"
