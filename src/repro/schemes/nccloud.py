"""NCCloud: FMSR regenerating codes over the Cloud-of-Clouds (baseline [16]).

NCCloud targets the *repair* cost of erasure-coded cloud storage: after a
permanent single-cloud failure, a conventional RS/RAID system downloads k
fragments (the whole object) to rebuild one, while FMSR downloads just one
chunk from each of the n-1 survivors — ``(n-1)/(k*(n-k))`` of the traffic.

Per-object encoding-coefficient matrices are kept client-side (NCCloud
persists them as object metadata); :meth:`repair_provider` performs the
functional repair for every object after a cloud is declared permanently
failed and reports the traffic actually moved, which the repair benchmark
compares against the decode-based repair of RACS.
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.erasure.fmsr import FMSRCode
from repro.fs.namespace import FileEntry
from repro.schemes.base import CloudOp, Scheme
from repro.sim.clock import SimClock
from repro.sim.rng import stable_u64

__all__ = ["NCCloudScheme"]


class NCCloudScheme(Scheme):
    """FMSR(n, n-2): each provider stores n-2 coded chunks per object."""

    name = "nccloud"

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        if len(providers) < 3:
            raise ValueError(f"FMSR needs >= 3 providers, got {len(providers)}")
        super().__init__(providers, clock, link, seed, **kwargs)  # type: ignore[arg-type]
        self.n = len(providers)
        self.k = self.n - 2
        self.stripe_providers = list(self.provider_names)
        self._codecs: dict[str, FMSRCode] = {}

    def _object_codec(self, path: str, version: int) -> FMSRCode:
        """Per-object FMSR instance, deterministically seeded."""
        return FMSRCode(self.n, self.k, seed=stable_u64("nccloud", path, version))

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        return self._codecs[entry.path]

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        codec = self._object_codec(path, version)
        placements, digests = self._write_striped(
            path, data, codec, self.stripe_providers, version
        )
        self._codecs[path] = codec
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="fmsr",
            codec_params=(("n", self.n), ("k", self.k)),
            placements=tuple(placements),
            klass="regenerating",
            created=prev.created if prev else now,
            modified=now,
            digests=digests,
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        # FMSR is non-systematic: any k node fragments decode, so fetch the
        # fastest k rather than preferring data fragments.
        return self._read_striped(
            entry.path,
            entry.size,
            self._codecs[entry.path],
            list(entry.placements),
            entry.version,
            prefer_systematic=False,
            digests=entry.digests or None,
        )

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=False
        )
        self._codecs.pop(entry.path, None)

    # ------------------------------------------------------------- metadata
    def _meta_write_targets(self) -> list[str]:
        # NCCloud keeps object metadata replicated on every cloud.
        return list(self.stripe_providers)

    def _after_namespace_recovery(self) -> None:
        """Rebuild per-object FMSR codecs after a client restart.

        Encoding matrices are deterministic in (path, version), so a fresh
        client re-derives them.  Limitation (documented): objects that went
        through a *functional repair* carry an evolved ECM this cannot
        reproduce — recovering those requires replaying the repair log,
        which NCCloud proper persists as object metadata.
        """
        for path in self.namespace.paths():
            entry = self.namespace.get(path)
            if path not in self._codecs:
                self._codecs[path] = self._object_codec(path, entry.version)

    # ---------------------------------------------------------------- repair
    def repair_provider(self, failed: str, replacement: str | None = None) -> dict[str, int]:
        """Functional repair after a *permanent* failure of ``failed``.

        For every stored object, download one chunk from each survivor,
        linearly combine into fresh chunks, and write them to ``replacement``
        (defaults to the failed provider itself, modelling its re-provisioned
        successor).  Returns traffic accounting::

            {"objects": ..., "bytes_downloaded": ..., "bytes_uploaded": ...,
             "conventional_bytes": ...}

        where ``conventional_bytes`` is what decode-based repair would have
        downloaded (k full fragments per object).
        """
        if failed not in self.stripe_providers:
            raise ValueError(f"{failed!r} is not part of this Cloud-of-Clouds")
        target = replacement or failed
        if target not in self.provider_names:
            raise ValueError(f"replacement {target!r} is not registered")
        stats = {"objects": 0, "bytes_downloaded": 0, "bytes_uploaded": 0, "conventional_bytes": 0}
        for path in self.namespace.paths():
            entry = self.namespace.get(path)
            codec = self._codecs[path]
            failed_idx = entry.fragment_index(failed)
            survivors = {
                idx: prov for prov, idx in entry.placements if prov != failed
            }
            chunk_len = codec.fragment_size(entry.size) // max(codec.chunks_per_node, 1)
            self._begin_op()
            # Download one chunk per survivor.  The survivor computes the
            # random combination server-side in NCCloud; our passive providers
            # can't, so we fetch the fragment and charge only one chunk of it
            # (the bytes that would cross the wire).
            frags: dict[int, bytes] = {}
            for idx, prov in sorted(survivors.items()):
                store = self.provider(prov).store
                key = self._fragment_key(path, idx, entry.version)
                frags[idx] = store.get(self.container, key).data
                self.provider(prov).meter.record_get(chunk_len, self.clock.now)
            new_fragment, new_codec = codec.repair(frags, failed_idx, entry.size)
            self._run_phase(
                [
                    CloudOp(
                        target,
                        "put",
                        self.container,
                        self._fragment_key(path, failed_idx, entry.version),
                        new_fragment,
                    )
                ]
            )
            # Charge the downloaded chunks' wire time in one batch.
            specs = [
                self.provider(prov).latency.download_spec(chunk_len, self.rng)
                for prov in survivors.values()
            ]
            self.clock.advance(self.link.elapsed(downloads=specs))
            self._codecs[path] = new_codec
            # Functional repair rewrote the failed fragment with *different*
            # bytes: refresh its digest (and placement, when relocated).
            # The version must NOT change — every other fragment still lives
            # under its original versioned key.
            import dataclasses

            new_placements = tuple(
                (target if prov == failed else prov, idx)
                for prov, idx in entry.placements
            )
            new_digests = entry.digests
            if new_digests:
                digest_list = list(new_digests)
                digest_list[failed_idx] = self._digest(new_fragment)
                new_digests = tuple(digest_list)
            self.namespace.upsert(
                dataclasses.replace(
                    entry,
                    placements=new_placements,
                    digests=new_digests,
                    modified=self.clock.now,
                )
            )
            report = self._end_op("repair", path)
            self.collector.add(report)
            stats["objects"] += 1
            stats["bytes_downloaded"] += chunk_len * len(survivors)
            stats["bytes_uploaded"] += len(new_fragment)
            stats["conventional_bytes"] += codec.fragment_size(entry.size) * codec.k
        return stats
