"""DepSky-CA: the confidentiality-adding DepSky variant.

The paper describes DepSky as combining "Byzantine quorum system protocols,
cryptographic secret sharing, replication and the diversity provided by the
use of several cloud providers" — that description is DepSky-CA (the
EuroSys'11 paper's second protocol).  Per object:

1. a fresh 128-bit key encrypts the payload (counter-mode keystream);
2. the ciphertext is erasure-coded RS(f+1, n-f-1): any f+1 clouds rebuild it;
3. the key is Shamir-shared with threshold f+1: any f+1 shares rebuild it,
   f shares reveal *nothing*;
4. cloud ``i`` stores its ciphertext fragment and its key share together.

So storage overhead drops from DepSky-A's n copies to n/(f+1) (2x for
n=4, f=1), availability still tolerates f outages, and no single provider —
nor any coalition of f — can read the data.  Quorum write semantics follow
:class:`~repro.schemes.depsky.DepSkyScheme`.
"""

from __future__ import annotations

import json

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.fs.namespace import FileEntry
from repro.schemes.base import CloudOp, DataUnavailable, Scheme
from repro.security.cipher import keystream_cipher, random_key
from repro.security.secret_sharing import combine_secret, share_secret
from repro.sim.clock import SimClock

__all__ = ["DepSkyCAScheme"]


class DepSkyCAScheme(Scheme):
    """Encrypt + secret-share + erasure-code across all providers."""

    name = "depsky-ca"

    # A bundle cannot be rebuilt in isolation: its key share comes from one
    # specific sharing, and shares from two different sharings of the same
    # key do not combine.  Repair re-puts the whole object (fresh encrypt +
    # share + encode) instead of patching single placements.
    repair_by_rewrite = True

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        f: int = 1,
        **kwargs: object,
    ) -> None:
        if len(providers) < 2 * f + 1:
            raise ValueError(
                f"DepSky-CA with f={f} needs >= {2 * f + 1} providers, got {len(providers)}"
            )
        super().__init__(providers, clock, link, seed, **kwargs)  # type: ignore[arg-type]
        self.f = f
        self.clouds = list(self.provider_names)
        n = len(self.clouds)
        self.codec = ReedSolomonCode(k=f + 1, m=n - (f + 1))
        #: per-(path, version) data-encryption keys, as the client would
        #: cache them; the authoritative copies are the shares in the clouds.
        self._keys: dict[tuple[str, int], bytes] = {}

    @property
    def write_quorum(self) -> int:
        return len(self.clouds) - self.f

    # --------------------------------------------------------------- helpers
    def _bundle(self, fragment: bytes, share: bytes, share_index: int) -> bytes:
        """One cloud's object: ciphertext fragment + key share, framed."""
        header = json.dumps(
            {"share_index": share_index, "share_len": len(share)},
            separators=(",", ":"),
        ).encode()
        return len(header).to_bytes(2, "big") + header + share + fragment

    @staticmethod
    def _unbundle(blob: bytes) -> tuple[bytes, bytes, int]:
        hlen = int.from_bytes(blob[:2], "big")
        header = json.loads(blob[2 : 2 + hlen].decode())
        share_len = header["share_len"]
        share = blob[2 + hlen : 2 + hlen + share_len]
        fragment = blob[2 + hlen + share_len :]
        return fragment, share, header["share_index"]

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        # Bundles are bespoke objects; generic helpers must not re-frame them.
        return None

    def _placement_storage_key(self, entry: FileEntry, idx: int, replicated: bool) -> str:
        # Bundles live under fragment keys even though _codec_for is None.
        return self._fragment_key(entry.path, idx, entry.version)

    def _min_needed(self, entry: FileEntry, codec: ErasureCodec | None) -> int:
        # f+1 bundles reconstruct: k RS fragments and k key shares each.
        return self.f + 1

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        # f+1 landed bundles reconstruct (fragment + share each), so that is
        # the roll-forward threshold after a crash mid-scatter.
        self._journal_plan(
            version=version,
            codec_name=type(self.codec).__name__,
            replicated=False,
            min_needed=self.f + 1,
            sites=tuple(
                (cloud, self._fragment_key(path, i, version))
                for i, cloud in enumerate(self.clouds)
            ),
        )
        key = random_key(self.rng)
        ciphertext = keystream_cipher(key, data)
        fragments = self.codec.encode(ciphertext)
        shares = share_secret(key, n=len(self.clouds), k=self.f + 1, rng=self.rng)

        self._heal_before_touching(set(self.clouds))
        ops = [
            CloudOp(
                cloud,
                "put",
                self.container,
                self._fragment_key(path, i, version),
                self._bundle(fragments[i], shares[i], i),
            )
            for i, cloud in enumerate(self.clouds)
        ]
        phase = self._run_phase(ops, advance=False)
        finishes = sorted(o.finish for o in phase.succeeded())
        if len(finishes) >= self.write_quorum:
            self.clock.advance(finishes[self.write_quorum - 1])
        elif finishes:
            self.clock.advance(finishes[-1])
            self._mark_degraded()

        self._keys[(path, version)] = key
        self._keys.pop((path, version - 1), None)
        now = self.clock.now
        bundle_digests = tuple(self._digest(op.data or b"") for op in ops)
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="rs",
            codec_params=(("k", self.codec.k), ("m", self.codec.n - self.codec.k)),
            placements=tuple((cloud, i) for i, cloud in enumerate(self.clouds)),
            klass="confidential",
            created=prev.created if prev else now,
            modified=now,
            digests=bundle_digests,
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        by_index = {idx: prov for prov, idx in entry.placements}
        need = self.codec.k
        order = self._rank_providers_by_index(by_index, entry.size, self.codec)
        usable = [
            i
            for i in order
            if self.provider(by_index[i]).is_available()
            and not self._is_stale(
                by_index[i],
                self.container,
                self._fragment_key(entry.path, i, entry.version),
            )
        ]
        degraded = any(i not in usable for i in order[:need])
        chosen = usable[:need]
        if len(chosen) < need:
            raise DataUnavailable(
                entry.path, f"only {len(chosen)} of {need} bundles reachable"
            )
        ops = [
            CloudOp(
                by_index[i],
                "get",
                self.container,
                self._fragment_key(entry.path, i, entry.version),
            )
            for i in chosen
        ]
        phase = self._run_phase(ops)
        fragments: dict[int, bytes] = {}
        shares: dict[int, bytes] = {}
        for idx, outcome in zip(chosen, phase.outcomes):
            if outcome.ok and outcome.data is not None:
                if (
                    entry.digests
                    and idx < len(entry.digests)
                    and self._digest(outcome.data) != entry.digests[idx]
                ):
                    continue  # corrupt bundle: count as an erasure
                fragment, share, share_index = self._unbundle(outcome.data)
                fragments[idx] = fragment
                shares[share_index] = share
        if len(fragments) < need:
            # Outage races and corrupt bundles land here: top up from the
            # remaining clouds, verifying each bundle.
            for i in usable:
                if len(fragments) >= need:
                    break
                if i in fragments or i in chosen:
                    continue
                retry = self._run_phase(
                    [
                        CloudOp(
                            by_index[i],
                            "get",
                            self.container,
                            self._fragment_key(entry.path, i, entry.version),
                        )
                    ]
                )
                blob = retry.outcomes[0].data
                if retry.outcomes[0].ok and blob is not None:
                    if (
                        entry.digests
                        and i < len(entry.digests)
                        and self._digest(blob) != entry.digests[i]
                    ):
                        continue
                    fragment, share, share_index = self._unbundle(blob)
                    fragments[i] = fragment
                    shares[share_index] = share
            degraded = True
        if len(fragments) < need:
            raise DataUnavailable(entry.path, "lost bundles mid-read")
        key = combine_secret(shares, k=self.f + 1)
        cipher_len = self.codec.fragment_size(entry.size) * self.codec.k
        # Ciphertext length equals plaintext length; decode to it exactly.
        ciphertext = self.codec.decode(fragments, entry.size)
        _ = cipher_len
        data = keystream_cipher(key, ciphertext)
        if degraded:
            self._mark_degraded()
        return data, degraded

    def _peek_content(self, entry: FileEntry) -> bytes:
        """Client-side composition for updates: decrypt from stored bundles."""
        fragments: dict[int, bytes] = {}
        shares: dict[int, bytes] = {}
        for prov, idx in entry.placements:
            key_name = self._fragment_key(entry.path, idx, entry.version)
            logged = self._logged_payload(prov, key_name)
            blob = None
            if logged is not None:
                blob = logged
            elif self.provider(prov).store.has(self.container, key_name):
                blob = self.provider(prov).store.get(self.container, key_name).data
            if blob is not None:
                fragment, share, share_index = self._unbundle(blob)
                fragments[idx] = fragment
                shares[share_index] = share
        ciphertext = self.codec.decode(fragments, entry.size)
        key = self._keys.get((entry.path, entry.version))
        if key is None:
            key = combine_secret(shares, k=self.f + 1)
        return keystream_cipher(key, ciphertext)

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=False
        )
        self._keys.pop((entry.path, entry.version), None)

    def _remove_stale_fragments(self, old: FileEntry) -> None:
        # Bundles live under fragment keys even though _codec_for is None
        # (they are bespoke framed objects, not generic replicas).
        self._remove_placements(
            old.path, list(old.placements), old.version, replicated=False
        )
        self._keys.pop((old.path, old.version), None)

    # ------------------------------------------------------------- metadata
    def _meta_write_targets(self) -> list[str]:
        # Metadata (names, sizes, placements) is not confidential in
        # DepSky-CA either; replicate it on every cloud for availability.
        return list(self.clouds)

    # ------------------------------------------------------- confidentiality
    def provider_view(self, provider: str, path: str) -> bytes:
        """Everything one provider stores for a path (for leakage tests)."""
        entry = self.namespace.get(path)
        idx = entry.fragment_index(provider)
        blob = self.provider(provider).store.get(
            self.container, self._fragment_key(path, idx, entry.version)
        )
        return blob.data
