"""Single-cloud baseline: one provider, no redundancy.

Figure 4 plots the cost of hosting the Internet Archive on each of the four
Table II providers individually, and Figure 6 normalises every latency to
single-cloud Amazon S3.  An outage of the one provider makes data plainly
unavailable — the vendor lock-in scenario motivating the whole paper.
"""

from __future__ import annotations

from repro.cloud.latency import ClientLink
from repro.cloud.provider import SimulatedProvider
from repro.erasure.codec import ErasureCodec
from repro.fs.namespace import FileEntry
from repro.schemes.base import Scheme
from repro.sim.clock import SimClock

__all__ = ["SingleCloudScheme"]


class SingleCloudScheme(Scheme):
    """All objects (data and metadata) on exactly one provider."""

    name = "single"

    def __init__(
        self,
        provider: SimulatedProvider,
        clock: SimClock,
        link: ClientLink | None = None,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        self.name = f"single-{provider.name}"
        self.primary = provider.name
        super().__init__([provider], clock, link, seed, **kwargs)  # type: ignore[arg-type]

    # ----------------------------------------------------------- placement
    def _codec_for(self, entry: FileEntry) -> ErasureCodec | None:
        return None

    def _put_file(self, path: str, data: bytes, prev: FileEntry | None) -> FileEntry:
        version = prev.version + 1 if prev else 1
        placements, digests = self._write_replicated(
            path, data, [self.primary], version
        )
        now = self.clock.now
        return FileEntry(
            path=path,
            size=len(data),
            version=version,
            codec="replication",
            placements=tuple(placements),
            klass="single",
            created=prev.created if prev else now,
            modified=now,
            digests=digests,
        )

    def _read_file(self, entry: FileEntry) -> tuple[bytes, bool]:
        return self._read_replicated(
            entry.path,
            entry.size,
            [self.primary],
            entry.version,
            digest=entry.digests[0] if entry.digests else None,
        )

    def _remove_file(self, entry: FileEntry) -> None:
        self._remove_placements(
            entry.path, list(entry.placements), entry.version, replicated=True
        )

    def _meta_write_targets(self) -> list[str]:
        return [self.primary]
