"""A deterministic crash-recovery drill: one crash each way, one spill.

The chaos engine explores crash points randomly; this drill pins down the
three canonical recovery outcomes in one scripted, seed-stable scenario so
docs, tests and the metrics fixture have a guaranteed specimen of each:

- **roll-back**: the client dies so early in a scatter that fewer than
  ``k`` fragments landed — recovery restores the previous version and the
  stray fragments are swept as orphans;
- **roll-forward**: the client dies after enough fragments landed —
  recovery republishes the write it could have acknowledged;
- **write-log spill**: a put during a network partition retains the
  missed fragment in the provider's write log, whose in-memory budget of
  zero forces an immediate spill; healing after the partition drains it.

Rather than hard-coding the cloud-request ordinal at which each outcome
occurs (which would silently break when the engine's op order changes),
the drill *searches* ascending crash ordinals until it has seen one
roll-back with orphans and one roll-forward — a few milliseconds of
simulated worlds, and self-correcting by construction.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.resilience import ResilienceConfig
from repro.faults.crash import ClientCrash, CrashSchedule
from repro.faults.profile import FaultProfile, NetworkPartition
from repro.schemes import RacsScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

__all__ = ["run_crash_drill"]

_FLEET = ("amazon_s3", "azure", "aliyun", "rackspace")


def _drill_resilience() -> ResilienceConfig:
    base = ResilienceConfig()
    return replace(base, write_log_memory_limit=0)  # spill every retained payload


def _crash_trial(seed: int, ordinal: int) -> tuple[str, dict, object]:
    """Put, crash at ``ordinal`` during an overwrite, recover.

    Returns ``(outcome, recovery_summary, registry)`` where outcome is
    ``committed`` (the schedule never fired), ``rolled_back`` or
    ``rolled_forward``.
    """
    rng = make_rng(seed, "crash-drill", ordinal)
    clock = SimClock()
    fleet = make_table2_cloud_of_clouds(clock)
    resilience = _drill_resilience()
    scheme = RacsScheme([fleet[p] for p in _FLEET], clock, resilience=resilience)
    journal = scheme.attach_journal()
    path = "/drill/crash"
    old = rng.bytes(64 * 1024)
    new = rng.bytes(64 * 1024)
    scheme.put(path, old)
    scheme.install_crash_schedule(CrashSchedule([ordinal]))
    try:
        scheme.put(path, new)
    except ClientCrash:
        pass
    else:
        return "committed", {}, scheme.registry
    # The replacement client inherits the durable journal + write logs.
    dead = scheme
    scheme = RacsScheme([fleet[p] for p in _FLEET], clock, resilience=resilience)
    scheme.adopt_write_logs(dead._write_logs)
    scheme.attach_journal(journal)
    scheme.recover_namespace()
    summary = scheme.recover()
    if summary["rolled_back"]:
        outcome = "rolled_back"
        want = old
    elif summary["rolled_forward"]:
        outcome = "rolled_forward"
        want = new
    else:
        raise AssertionError(f"crash at ordinal {ordinal} resolved no intent")
    data, _ = scheme.get(path)
    if data != want:
        raise AssertionError(f"{outcome} recovery served the wrong payload")
    return outcome, summary, scheme.registry


def _spill_trial(seed: int) -> tuple[dict, object]:
    """Put through a partition (forcing a zero-budget spill), then heal."""
    rng = make_rng(seed, "crash-drill", "spill")
    clock = SimClock()
    cut = NetworkPartition(clock.now + 1.0, clock.now + 600.0)
    fleet = make_table2_cloud_of_clouds(
        clock, faults={"rackspace": FaultProfile([cut], seed=seed).bind("rackspace")}
    )
    scheme = RacsScheme(
        [fleet[p] for p in _FLEET], clock, resilience=_drill_resilience()
    )
    scheme.attach_journal()
    clock.advance(5.0)  # inside the partition window
    payload = rng.bytes(256 * 1024)
    scheme.put("/drill/spill", payload)
    log = scheme._write_logs["rackspace"]
    spilled = int(log.spilled_bytes())
    clock.advance(700.0)  # partition over
    scheme.heal_returned()
    data, _ = scheme.get("/drill/spill")
    if data != payload:
        raise AssertionError("healed read served the wrong payload")
    drained = not log
    return {"spilled_bytes": spilled, "drained": drained}, scheme.registry


def run_crash_drill(seed: int = 0, max_ordinal: int = 40) -> dict:
    """Run the drill; returns a summary with the registries it touched.

    The summary is deterministic in ``seed``.  ``registries`` (not part of
    the deterministic surface) carries every metrics registry the drill's
    clients used, so callers can audit which metric names recovery emits.
    """
    registries: list[object] = []
    rollback: dict | None = None
    rollforward: dict | None = None
    for ordinal in range(1, max_ordinal + 1):
        outcome, summary, registry = _crash_trial(seed, ordinal)
        registries.append(registry)
        orphans = sum(summary.get("orphans_removed", {}).values()) if summary else 0
        if outcome == "rolled_back" and rollback is None and orphans > 0:
            rollback = {"ordinal": ordinal, "orphans_removed": orphans}
        elif outcome == "rolled_forward" and rollforward is None:
            rollforward = {"ordinal": ordinal}
        if rollback is not None and rollforward is not None:
            break
    if rollback is None or rollforward is None:
        raise AssertionError(
            f"no ordinal <= {max_ordinal} produced both recovery outcomes"
        )
    spill, spill_registry = _spill_trial(seed)
    registries.append(spill_registry)
    if spill["spilled_bytes"] <= 0 or not spill["drained"]:
        raise AssertionError(f"spill leg failed: {spill}")
    return {
        "rollback": rollback,
        "rollforward": rollforward,
        "spill": spill,
        "registries": registries,
    }
