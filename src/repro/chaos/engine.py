"""Seeded chaos campaign engine: episodes, recovery driving, reports.

One *episode* is a closed world: a fresh Table II fleet, one scheme client,
and four independently seeded plans drawn from ``make_rng(seed, "chaos",
scheme, <plan>)`` —

- a **workload** plan: ~60 mixed operations (put/get/update/remove/stat)
  over a small path pool, with sizes straddling HyRD's 1 MB threshold and
  think-time gaps that let scripted faults land mid-workload;
- a **storm** plan: per-provider latency brownouts, transient-error bursts
  and flapping outages over drawn windows;
- a **partition** plan: :class:`~repro.faults.profile.NetworkPartition`
  windows that cut the client off from 0–2 providers;
- a **crash** plan: 1–3 ordinals in the client's cloud-request stream at
  which the process dies (:class:`~repro.faults.crash.CrashSchedule`).

The driver shadows the client: it knows, per path, which payloads the
client may legitimately read back (the last acknowledged value, or — for a
mutation interrupted by a crash — either side of it, until recovery's
roll-forward/back verdict collapses the ambiguity).  After the workload it
*settles* the world: advances past every fault window, drains the write
logs, runs :meth:`~repro.schemes.base.Scheme.recover`, takes a
verify/repair pass, reads everything back and evaluates the five
:mod:`~repro.chaos.invariants`.

Crash handling mirrors a real deployment: the dead client's **durable
local state** — the fsynced intent journal and the spilled/retained write
logs — is handed to a replacement client
(:meth:`~repro.schemes.base.Scheme.attach_journal`,
:meth:`~repro.schemes.base.Scheme.adopt_write_logs`), which re-learns the
namespace from cloud metadata and runs recovery with the crash schedule
disarmed.  Everything in-memory (hot-copy promotions, breaker state,
cached keys) is lost, exactly as it would be.

Determinism: every number in an episode derives from ``(seed, scheme)``;
reports contain no wall-clock timestamps, so the same seed yields a
byte-identical ``json.dumps(report, sort_keys=True)`` — which is what the
CI smoke job diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.errors import CloudError
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.faults.crash import ClientCrash, CrashSchedule
from repro.faults.profile import (
    FaultEffect,
    FaultProfile,
    FlappingOutage,
    LatencyBrownout,
    NetworkPartition,
    TransientErrorBurst,
)
from repro.fs.journal import IntentJournal
from repro.schemes import (
    DataUnavailable,
    DepSkyCAScheme,
    DepSkyScheme,
    DuraCloudScheme,
    HyrdScheme,
    NCCloudScheme,
    RacsScheme,
    SingleCloudScheme,
)
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

from repro.chaos import invariants as inv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import Scheme

__all__ = [
    "CHAOS_SCHEMES",
    "EpisodeResult",
    "chaos_resilience",
    "run_campaign",
    "run_episode",
]

#: the Table II fleet, in construction order
_FLEET = ("amazon_s3", "azure", "aliyun", "rackspace")

#: DuraCloud's two-provider pair (mirrors repro.analysis.experiments)
_DURACLOUD_PAIR = ("amazon_s3", "azure")

#: every scheme the campaign exercises by default
CHAOS_SCHEMES = (
    "duracloud",
    "racs",
    "hyrd",
    "depsky",
    "depsky-ca",
    "nccloud",
    "single",
)

#: sim-seconds one episode spans before settlement
_HORIZON = 3600.0

#: object sizes straddling HyRD's 1 MB small/large threshold
_SIZES = (2_048, 65_536, 524_288, 2_097_152)
_SIZE_P = (0.35, 0.30, 0.20, 0.15)

_OP_KINDS = ("put", "get", "update", "remove", "stat")
_OP_P = (0.40, 0.30, 0.15, 0.05, 0.10)

#: sentinel "new value" for an in-flight remove
_ABSENT = None


def chaos_resilience() -> ResilienceConfig:
    """The client configuration every chaos episode runs under.

    Two deliberate deviations from the defaults: a per-operation retry
    deadline (a chaos client must not spin forever inside one op while the
    schedule waits to kill it) and a small in-memory write-log budget so
    the spill path is exercised under real fault pressure.
    """
    base = ResilienceConfig()
    return replace(
        base,
        retry=replace(base.retry, op_deadline=120.0),
        write_log_memory_limit=256 * 1024,
    )


def _build_scheme(
    name: str, fleet: dict, clock: SimClock, resilience: ResilienceConfig
) -> "Scheme":
    providers = [fleet[p] for p in _FLEET]
    if name == "duracloud":
        return DuraCloudScheme(
            [fleet[p] for p in _DURACLOUD_PAIR], clock, resilience=resilience
        )
    if name == "racs":
        return RacsScheme(providers, clock, resilience=resilience)
    if name == "hyrd":
        return HyrdScheme(providers, clock, config=HyRDConfig(resilience=resilience))
    if name == "depsky":
        return DepSkyScheme(providers, clock, resilience=resilience)
    if name == "depsky-ca":
        return DepSkyCAScheme(providers, clock, resilience=resilience)
    if name == "nccloud":
        return NCCloudScheme(providers, clock, resilience=resilience)
    if name == "single":
        return SingleCloudScheme(fleet["amazon_s3"], clock, resilience=resilience)
    raise ValueError(f"unknown chaos scheme {name!r}; choose from {CHAOS_SCHEMES}")


# --------------------------------------------------------------------- plans
def _draw_storm(
    rng: np.random.Generator, horizon: float
) -> tuple[dict[str, list[FaultEffect]], dict[str, list[str]]]:
    """Per-provider degradation effects (never a full scripted partition)."""
    effects: dict[str, list[FaultEffect]] = {}
    described: dict[str, list[str]] = {}
    for name in _FLEET:
        kind = str(rng.choice(["brownout", "burst", "flap", "none"], p=[0.25, 0.25, 0.3, 0.2]))
        if kind == "none":
            continue
        start = float(rng.uniform(0.05, 0.5)) * horizon
        end = min(start + float(rng.uniform(0.1, 0.35)) * horizon, horizon * 0.9)
        effect: FaultEffect
        if kind == "brownout":
            effect = LatencyBrownout(
                start,
                end,
                rtt_factor=float(rng.uniform(2.0, 8.0)),
                bw_factor=float(rng.uniform(0.2, 0.8)),
            )
            label = f"brownout[{start:.0f},{end:.0f}) rtt*{effect.rtt_factor:.1f}"
        elif kind == "burst":
            effect = TransientErrorBurst(start, end, rate=float(rng.uniform(0.2, 0.6)))
            label = f"burst[{start:.0f},{end:.0f}) rate={effect.rate:.2f}"
        else:
            period = float(rng.uniform(90.0, 300.0))
            effect = FlappingOutage(
                start,
                end,
                period=period,
                downtime=float(rng.uniform(0.3, 0.6)) * period,
            )
            label = f"flap[{start:.0f},{end:.0f}) period={period:.0f}s"
        effects.setdefault(name, []).append(effect)
        described.setdefault(name, []).append(label)
    return effects, described


def _draw_partitions(
    rng: np.random.Generator, horizon: float
) -> dict[str, list[tuple[float, float]]]:
    """0–2 network partition windows, each cutting off one provider."""
    windows: dict[str, list[tuple[float, float]]] = {}
    for _ in range(int(rng.integers(0, 3))):
        name = str(rng.choice(list(_FLEET)))
        start = float(rng.uniform(0.0, 0.7)) * horizon
        end = min(start + float(rng.uniform(90.0, 600.0)), horizon * 0.95)
        if end > start:
            windows.setdefault(name, []).append((start, end))
    return windows


def _draw_crashes(rng: np.random.Generator) -> tuple[int, ...]:
    """1–3 kill ordinals in the client's cloud-request stream.

    Ordinals beyond the episode's actual request count simply never fire —
    short workloads on cheap schemes crash less, which is realistic.
    """
    count = 1 + int(rng.integers(0, 3))
    return tuple(sorted({int(rng.integers(1, 600)) for _ in range(count)}))


# -------------------------------------------------------------------- driver
@dataclass
class EpisodeResult:
    """One settled episode: the canonical report plus live handles."""

    report: dict
    scheme: "Scheme" = field(repr=False)
    journal: IntentJournal = field(repr=False)

    @property
    def ok(self) -> bool:
        return bool(self.report["ok"])

    def to_json(self) -> str:
        """Canonical byte-stable serialisation (what CI diffs)."""
        return json.dumps(self.report, sort_keys=True, separators=(",", ":"))


class _EpisodeDriver:
    """Runs one scheme through one seeded episode and judges the wreckage."""

    def __init__(self, scheme_name: str, seed: int, ops: int) -> None:
        self.scheme_name = scheme_name
        self.seed = seed
        self.n_ops = ops
        self.rng_w = make_rng(seed, "chaos", scheme_name, "workload")
        storm_rng = make_rng(seed, "chaos", scheme_name, "storm")
        part_rng = make_rng(seed, "chaos", scheme_name, "partition")
        crash_rng = make_rng(seed, "chaos", scheme_name, "crash")

        storm_effects, self.storm_desc = _draw_storm(storm_rng, _HORIZON)
        self.partitions = _draw_partitions(part_rng, _HORIZON)
        self.crash_ordinals = _draw_crashes(crash_rng)

        self.clock = SimClock()
        profiles: dict[str, FaultProfile] = {}
        self._max_effect_end = 0.0
        for name in _FLEET:
            effects = list(storm_effects.get(name, ()))
            effects += [NetworkPartition(s, e) for s, e in self.partitions.get(name, ())]
            if effects:
                self._max_effect_end = max(self._max_effect_end, *(e.end for e in effects))
                profiles[name] = FaultProfile(effects, seed=seed).bind(name)
        self.fleet = make_table2_cloud_of_clouds(self.clock, faults=profiles)
        self.resilience = chaos_resilience()
        self.scheme = _build_scheme(scheme_name, self.fleet, self.clock, self.resilience)
        self.journal = self.scheme.attach_journal()
        self.schedule = CrashSchedule(self.crash_ordinals)
        self.scheme.install_crash_schedule(self.schedule)

        self.pool = [f"/chaos/f{i:02d}" for i in range(12)]
        #: path -> last acknowledged content
        self.expected: dict[str, bytes] = {}
        #: path -> every value a read may legitimately return (None = absent)
        self.candidates: dict[str, list[bytes | None]] = {}
        #: paths whose last acknowledged mutation was a remove
        self.removed: set[str] = set()
        self.counts = {k: 0 for k in _OP_KINDS}
        self.failed = 0
        self.skipped = 0
        self.degraded_reads = 0
        self.crashes: list[int] = []
        self.recoveries: list[dict] = []
        self.mid_episode_torn: list[dict] = []
        self._inflight: tuple[str, bytes | None, list[bytes | None]] | None = None

    # -------------------------------------------------------------- running
    def run(self) -> EpisodeResult:
        for _ in range(self.n_ops):
            kind = str(self.rng_w.choice(list(_OP_KINDS), p=list(_OP_P)))
            self._inflight = None
            try:
                self._step(kind)
            except ClientCrash as crash:
                self._rebuild(crash)
            self._inflight = None
            self._safe_heal()
            self.clock.advance(float(self.rng_w.uniform(5.0, 40.0)))
        return self._settle()

    def _step(self, kind: str) -> None:
        live = sorted(set(self.expected) | set(self.candidates))
        if kind != "put" and not live:
            kind = "put"
        if kind == "put":
            self._do_put()
        elif kind == "get":
            self._do_get(self._pick(live))
        elif kind == "update":
            self._do_update(self._pick(live))
        elif kind == "remove":
            self._do_remove(self._pick(live))
        else:
            self._do_stat(self._pick(live))

    def _pick(self, live: list[str]) -> str:
        return live[int(self.rng_w.integers(0, len(live)))]

    def _allowed(self, path: str) -> list[bytes | None]:
        if path in self.candidates:
            return list(self.candidates[path])
        if path in self.expected:
            return [self.expected[path]]
        return [None]

    def _note_inflight(self, path: str, new: bytes | None) -> None:
        self._inflight = (path, new, self._allowed(path))

    def _resolve(self, path: str, values: list[bytes | None]) -> None:
        """Collapse a path's legitimate read-back set to ``values``."""
        deduped: list[bytes | None] = []
        for v in values:
            if not any(v is d or v == d for d in deduped):
                deduped.append(v)
        self.expected.pop(path, None)
        self.candidates.pop(path, None)
        self.removed.discard(path)
        if len(deduped) == 1:
            if deduped[0] is None:
                self.removed.add(path)
            else:
                self.expected[path] = deduped[0]
        else:
            self.candidates[path] = deduped

    # ----------------------------------------------------------- operations
    def _do_put(self) -> None:
        path = self.pool[int(self.rng_w.integers(0, len(self.pool)))]
        size = int(self.rng_w.choice(np.array(_SIZES), p=list(_SIZE_P)))
        data = self.rng_w.bytes(size)
        try:
            self.scheme.put(path, data)
        except ClientCrash:
            self._note_inflight(path, data)
            raise
        except (CloudError, DataUnavailable):
            # Not acknowledged: the old state (whatever it was) stands;
            # stray fragments become orphans for recovery to sweep.
            self.failed += 1
            return
        self.counts["put"] += 1
        self._resolve(path, [data])

    def _do_get(self, path: str) -> None:
        try:
            data, _ = self.scheme.get(path)
        except ClientCrash:
            raise
        except FileNotFoundError:
            if None in self._allowed(path):
                self._resolve(path, [None])
            else:
                self.mid_episode_torn.append(
                    {
                        "path": path,
                        "observed": "absent (mid-episode)",
                        "allowed": [inv.describe_value(v) for v in self._allowed(path)],
                    }
                )
            return
        except (CloudError, DataUnavailable):
            self.degraded_reads += 1
            return
        self.counts["get"] += 1
        allowed = self._allowed(path)
        if any(v is not None and v == data for v in allowed):
            self._resolve(path, [data])
        else:
            self.mid_episode_torn.append(
                {
                    "path": path,
                    "observed": inv.describe_value(data) + " (mid-episode)",
                    "allowed": [inv.describe_value(v) for v in allowed],
                }
            )

    def _collapse(self, path: str) -> bool:
        """Resolve a crash-ambiguous path by reading it; False if it stays
        ambiguous (unreachable right now, or observably damaged)."""
        try:
            data, _ = self.scheme.get(path)
        except ClientCrash:
            raise
        except FileNotFoundError:
            if None in self.candidates.get(path, []):
                self._resolve(path, [None])
            return False
        except (CloudError, DataUnavailable):
            return False
        if any(v is not None and v == data for v in self.candidates.get(path, [])):
            self._resolve(path, [data])
            return True
        return False

    def _do_update(self, path: str) -> None:
        if path in self.candidates and not self._collapse(path):
            self.skipped += 1  # content ambiguous: cannot predict the patch result
            return
        if path not in self.expected:
            self.skipped += 1
            return
        base = self.expected[path]
        offset = int(self.rng_w.integers(0, len(base) + 1))
        patch = self.rng_w.bytes(int(self.rng_w.integers(1, 4097)))
        # Mirror Scheme.update's splice semantics exactly.
        buf = bytearray(max(len(base), offset + len(patch)))
        buf[: len(base)] = base
        buf[offset : offset + len(patch)] = patch
        new = bytes(buf)
        try:
            self.scheme.update(path, offset, patch)
        except ClientCrash:
            self._note_inflight(path, new)
            raise
        except FileNotFoundError:
            self.failed += 1
            return
        except (CloudError, DataUnavailable):
            self.failed += 1
            return
        self.counts["update"] += 1
        self._resolve(path, [new])

    def _do_remove(self, path: str) -> None:
        try:
            self.scheme.remove(path)
        except ClientCrash:
            self._note_inflight(path, _ABSENT)
            raise
        except FileNotFoundError:
            if None in self._allowed(path):
                self._resolve(path, [None])
            else:
                self.failed += 1
            return
        except (CloudError, DataUnavailable):
            # Deletion state unknown: accept either outcome until observed.
            self._resolve(path, self._allowed(path) + [None])
            self.failed += 1
            return
        self.counts["remove"] += 1
        self._resolve(path, [None])

    def _do_stat(self, path: str) -> None:
        try:
            self.scheme.stat(path)
        except ClientCrash:
            raise
        except (FileNotFoundError, CloudError, DataUnavailable):
            return
        self.counts["stat"] += 1

    def _safe_heal(self) -> None:
        try:
            self.scheme.heal_returned()
        except ClientCrash as crash:
            self._rebuild(crash)

    # ------------------------------------------------------------- recovery
    def _rebuild(self, crash: ClientCrash) -> None:
        """Replace the dead client, hand over durable state, recover."""
        self.crashes.append(crash.at_op)
        dead = self.scheme
        self.scheme = _build_scheme(
            self.scheme_name, self.fleet, self.clock, self.resilience
        )
        # The intent journal and the write logs are client-local *disk*
        # state: they survive the process.  Namespace, hot-copy table,
        # breaker and health state were memory: they do not.
        self.scheme.adopt_write_logs(dead._write_logs)
        self.scheme.attach_journal(self.journal)
        self.scheme.install_crash_schedule(None)
        for _ in range(40):
            try:
                self.scheme.recover_namespace()
                break
            except (CloudError, DataUnavailable):
                # Metadata unreachable mid-partition: wait out the weather.
                self.clock.advance(90.0)
        summary = self.scheme.recover()
        self.recoveries.append(
            {
                "at_op": crash.at_op,
                "rolled_forward": len(summary["rolled_forward"]),
                "rolled_back": len(summary["rolled_back"]),
                "removals_completed": len(summary["removals_completed"]),
                "orphans_removed": {
                    k: int(v) for k, v in sorted(summary["orphans_removed"].items())
                },
            }
        )
        if self._inflight is not None:
            path, new, prevs = self._inflight
            if any(d["path"] == path for d in summary["rolled_forward"]):
                self._resolve(path, [new])
            elif any(d["path"] == path for d in summary["removals_completed"]):
                self._resolve(path, [None])
            elif any(d["path"] == path for d in summary["rolled_back"]):
                self._resolve(path, prevs)
            else:
                # Crash before the intent was planned: no payload byte ever
                # left the client, so the previous state stands untouched.
                self._resolve(path, prevs)
            self._inflight = None
        self.scheme.install_crash_schedule(self.schedule)

    # ----------------------------------------------------------- settlement
    def _settle(self) -> EpisodeResult:
        self.scheme.install_crash_schedule(None)
        clear = max(self.clock.now, self._max_effect_end + 61.0)
        if clear > self.clock.now:
            self.clock.advance(clear - self.clock.now)
        for _ in range(60):
            self.scheme.heal_returned()
            if not any(self.scheme._write_logs.values()):
                break
            self.clock.advance(30.0)
        recovery = self.scheme.recover()

        # Read-backs first (they may promote hot copies, which
        # _expected_keys must then account for), audits second.
        observations: dict[str, dict] = {}
        for path in sorted(set(self.expected) | set(self.candidates) | self.removed):
            allowed = self._allowed(path)
            observed: bytes | str | None
            try:
                observed, _ = self.scheme.get(path)
            except FileNotFoundError:
                observed = None
            except (CloudError, DataUnavailable):
                observed = inv.UNREACHABLE
            observations[path] = {"allowed": allowed, "observed": observed}

        audits = []
        for path in sorted(self.scheme.namespace.paths()):
            audit = self.scheme.verify_object(path, deep=True)
            if not audit.ok:
                self.scheme.repair_object(path, audit)
                audit = self.scheme.verify_object(path, deep=True)
            audits.append(audit)

        results = inv.run_all(self.scheme, self.journal, observations, audits)
        results["no_torn_stripe_readable"].extend(self.mid_episode_torn)

        self._publish_metrics(results)
        report = self._report(recovery, results)
        return EpisodeResult(report=report, scheme=self.scheme, journal=self.journal)

    def _publish_metrics(self, results: dict[str, list[dict]]) -> None:
        registry = self.scheme.registry
        registry.counter("chaos_crashes_total").inc(len(self.crashes))
        for name in _FLEET:
            registry.counter("partition_windows_total", provider=name).inc(
                len(self.partitions.get(name, ()))
            )
        for invariant in inv.INVARIANTS:
            registry.counter(
                "chaos_invariant_violations_total", invariant=invariant
            ).inc(len(results[invariant]))
        for name, log in self.scheme._write_logs.items():
            registry.gauge("writelog_pending_bytes", provider=name).set(
                log.pending_bytes()
            )
            if log.memory_limit_bytes is not None:
                registry.gauge("writelog_spilled_bytes", provider=name).set(
                    log.spilled_bytes()
                )

    def _report(self, recovery: dict, results: dict[str, list[dict]]) -> dict:
        ok = all(not v for v in results.values())
        return {
            "schema": "chaos-episode/v1",
            "scheme": self.scheme_name,
            "seed": self.seed,
            "horizon_s": _HORIZON,
            "workload": {
                "ops": self.n_ops,
                "applied": dict(sorted(self.counts.items())),
                "failed": self.failed,
                "skipped": self.skipped,
                "degraded_reads": self.degraded_reads,
            },
            "faults": {
                "storm": {k: v for k, v in sorted(self.storm_desc.items())},
                "partitions": {
                    name: [[round(s, 3), round(e, 3)] for s, e in windows]
                    for name, windows in sorted(self.partitions.items())
                },
            },
            "crashes": {
                "scheduled": list(self.crash_ordinals),
                "fired": self.crashes,
                "recoveries": self.recoveries,
            },
            "settlement": {
                "rolled_forward": len(recovery["rolled_forward"]),
                "rolled_back": len(recovery["rolled_back"]),
                "orphans_removed": {
                    k: int(v) for k, v in sorted(recovery["orphans_removed"].items())
                },
                "journal_pending": len(self.journal),
            },
            "invariants": {
                name: {"ok": not results[name], "violations": results[name]}
                for name in inv.INVARIANTS
            },
            "ok": ok,
        }


# ----------------------------------------------------------------- frontend
def run_episode(scheme: str, seed: int, ops: int = 60) -> EpisodeResult:
    """Run one seeded chaos episode against ``scheme`` and judge it."""
    return _EpisodeDriver(scheme, seed, ops).run()


def run_campaign(
    schemes: tuple[str, ...] | list[str] | None = None,
    episodes: int = 8,
    base_seed: int = 2026,
    ops: int = 60,
    check_determinism: bool = False,
) -> dict:
    """Run ``episodes`` seeded episodes per scheme; returns the campaign report.

    With ``check_determinism`` every scheme's first episode is re-run and
    its canonical JSON compared byte for byte — any drift is reported as a
    first-class failure, same as an invariant violation.
    """
    names = tuple(schemes) if schemes else CHAOS_SCHEMES
    for name in names:
        if name not in CHAOS_SCHEMES:
            raise ValueError(f"unknown chaos scheme {name!r}; choose from {CHAOS_SCHEMES}")
    episode_reports: list[dict] = []
    drift: list[dict] = []
    violations = 0
    crashes = 0
    for name in names:
        for i in range(episodes):
            seed = base_seed + 1000 * i
            result = run_episode(name, seed, ops=ops)
            episode_reports.append(result.report)
            crashes += len(result.report["crashes"]["fired"])
            violations += sum(
                len(result.report["invariants"][inv_name]["violations"])
                for inv_name in inv.INVARIANTS
            )
            if check_determinism and i == 0:
                rerun = run_episode(name, seed, ops=ops)
                if rerun.to_json() != result.to_json():
                    drift.append({"scheme": name, "seed": seed})
    report = {
        "schema": "chaos-campaign/v1",
        "schemes": list(names),
        "episodes_per_scheme": episodes,
        "base_seed": base_seed,
        "episodes": episode_reports,
        "determinism_drift": drift,
        "totals": {
            "episodes": len(episode_reports),
            "crashes": crashes,
            "violations": violations,
        },
        "ok": violations == 0 and not drift,
    }
    return report
