"""Chaos campaigns: seeded fault storms, client crashes, hard invariants.

The replay and availability experiments measure *performance under
faults*; this package interrogates *correctness under faults*.  A campaign
composes, per episode, a random-but-seeded fault storm, network partition
plan and client-crash schedule over a mixed workload, then settles the
world and machine-verifies five system-wide invariants (no acknowledged
write lost, no torn stripe readable, journal drained, write logs
converged, namespace/provider audit clean).  Same seed, same report —
byte for byte.

Entry points: :func:`run_episode`, :func:`run_campaign`, the ``repro
chaos`` CLI command, and :func:`run_crash_drill` (a deterministic
single-crash recovery walkthrough used by docs and the metrics fixture).
See ``docs/chaos.md``.
"""

from repro.chaos.engine import (
    CHAOS_SCHEMES,
    EpisodeResult,
    chaos_resilience,
    run_campaign,
    run_episode,
)
from repro.chaos.invariants import INVARIANTS, run_all

__all__ = [
    "CHAOS_SCHEMES",
    "EpisodeResult",
    "INVARIANTS",
    "chaos_resilience",
    "run_campaign",
    "run_crash_drill",
    "run_episode",
    "run_all",
]


def __getattr__(name: str):
    # drill imports schemes lazily; keep package import light
    if name == "run_crash_drill":
        from repro.chaos.drill import run_crash_drill

        return run_crash_drill
    raise AttributeError(f"module 'repro.chaos' has no attribute {name!r}")
