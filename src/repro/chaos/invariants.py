"""Machine-verified invariants checked after every chaos episode.

An episode is only as trustworthy as the oracle that judges it, so the
oracle is deliberately dumb: five pure functions over observable world
state, each returning a list of JSON-serialisable violation records.  No
probabilities, no tolerances — after the faults clear, the logs drain and
recovery runs, either the system converged or it did not.

1. **no_acked_write_lost** — every path whose last mutation was
   acknowledged reads back; a path whose last mutation crashed mid-flight
   may read as the old value or the new one, but must read.
2. **no_torn_stripe_readable** — anything that *does* read back equals,
   byte for byte, one of the values the client was ever told it wrote.
   Partial stripes, mixed-version reconstructions and bit rot all fail
   this.
3. **journal_drained** — the intent journal holds no pending intents:
   every write either committed or was rolled forward/back by recovery.
4. **writelog_convergence** — every provider write log is empty: the
   consistency update finished once the faults cleared.
5. **namespace_provider_audit** — the namespace and the providers agree:
   every placement of every entry verifies (deep digest check), and no
   provider stores a key the namespace cannot account for (orphaned
   fragments, stale versions, forgotten hot copies).

The checkers take raw bytes but never emit them: payloads appear in
violation records as ``sha256:<prefix>/<len>B`` digests, which keeps
episode reports small and byte-stable.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Mapping

from repro.fs.metadata import is_group_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.journal import IntentJournal
    from repro.schemes.base import ObjectAudit, Scheme

__all__ = [
    "INVARIANTS",
    "UNREACHABLE",
    "check_journal_drained",
    "check_namespace_provider_audit",
    "check_no_acked_write_lost",
    "check_no_torn_stripe_readable",
    "check_writelog_convergence",
    "describe_value",
    "run_all",
]

#: the five invariant names, in report order
INVARIANTS = (
    "no_acked_write_lost",
    "no_torn_stripe_readable",
    "journal_drained",
    "writelog_convergence",
    "namespace_provider_audit",
)

#: sentinel observation: the read-back raised after every fault cleared
UNREACHABLE = "unreachable"


def describe_value(value: bytes | str | None) -> str:
    """Compact, deterministic description of an observed/allowed value."""
    if value is None:
        return "absent"
    if isinstance(value, str):
        return value  # the UNREACHABLE sentinel
    digest = hashlib.sha256(value).hexdigest()[:16]
    return f"sha256:{digest}/{len(value)}B"


def _allowed_digests(allowed: list[bytes | None]) -> list[str]:
    return [describe_value(v) for v in allowed]


def check_no_acked_write_lost(
    observations: Mapping[str, dict],
) -> list[dict]:
    """Every path that must exist reads back as *something*."""
    violations: list[dict] = []
    for path in sorted(observations):
        obs = observations[path]
        allowed: list[bytes | None] = obs["allowed"]
        observed = obs["observed"]
        if any(value is None for value in allowed):
            continue  # absence is an acceptable outcome for this path
        if observed is None or observed == UNREACHABLE:
            violations.append(
                {
                    "path": path,
                    "observed": describe_value(observed),
                    "allowed": _allowed_digests(allowed),
                }
            )
    return violations


def check_no_torn_stripe_readable(
    observations: Mapping[str, dict],
) -> list[dict]:
    """Anything readable equals one complete value the client wrote."""
    violations: list[dict] = []
    for path in sorted(observations):
        obs = observations[path]
        allowed: list[bytes | None] = obs["allowed"]
        observed = obs["observed"]
        if observed is None or observed == UNREACHABLE:
            if observed is None and not any(v is None for v in allowed):
                continue  # the loss is no_acked_write_lost's finding
            continue
        if not any(v is not None and v == observed for v in allowed):
            violations.append(
                {
                    "path": path,
                    "observed": describe_value(observed),
                    "allowed": _allowed_digests(allowed),
                }
            )
    return violations


def check_journal_drained(journal: "IntentJournal") -> list[dict]:
    """No intent is still pending once recovery has run."""
    return [
        {"seq": intent.seq, "kind": intent.kind, "path": intent.path}
        for intent in journal.pending()
    ]


def check_writelog_convergence(scheme: "Scheme") -> list[dict]:
    """Every provider write log drained after the faults cleared."""
    violations: list[dict] = []
    for name in sorted(scheme._write_logs):
        log = scheme._write_logs[name]
        if log:
            violations.append(
                {
                    "provider": name,
                    "entries": len(log.peek()),
                    "pending_bytes": int(log.pending_bytes()),
                }
            )
    return violations


def check_namespace_provider_audit(
    scheme: "Scheme", audits: list["ObjectAudit"]
) -> list[dict]:
    """Namespace and providers agree: all placements verify, no strays."""
    violations: list[dict] = []
    for audit in audits:
        if audit.ok:
            continue
        violations.append(
            {
                "path": audit.path,
                "version": audit.version,
                "problems": sorted(
                    f"{f.kind}:{f.provider}:{f.key}" for f in audit.findings if f.kind != "intact"
                ),
            }
        )
    expected = scheme._expected_keys()
    for name in sorted(scheme.provider_names):
        provider = scheme.provider(name)
        if not provider.is_available():
            violations.append({"provider": name, "error": "unreachable at audit"})
            continue
        for key in sorted(provider.store.list(scheme.container)):
            if is_group_key(key):
                continue  # metadata groups are namespace bookkeeping
            if key not in expected:
                violations.append({"provider": name, "orphan_key": key})
    return violations


def run_all(
    scheme: "Scheme",
    journal: "IntentJournal",
    observations: Mapping[str, dict],
    audits: list["ObjectAudit"],
) -> dict[str, list[dict]]:
    """Evaluate every invariant; returns ``{invariant: [violations]}``."""
    return {
        "no_acked_write_lost": check_no_acked_write_lost(observations),
        "no_torn_stripe_readable": check_no_torn_stripe_readable(observations),
        "journal_drained": check_journal_drained(journal),
        "writelog_convergence": check_writelog_convergence(scheme),
        "namespace_provider_audit": check_namespace_provider_audit(scheme, audits),
    }
