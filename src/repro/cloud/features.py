"""Provider feature profiles — the service diversity of §II-A / §VI.

§II-A: providers differ in "extra features such as geographic data
distribution, access through mountable file systems, or specific APIs";
§VI's second future-work item is to "consider the specific features of the
diverse cloud storage services" in placement.  :class:`ProviderFeatures`
captures the feature surface; the Request Dispatcher can then enforce
user policies like "replicas in at least two distinct regions" or "only
providers with a mountable-filesystem interface".

The Table II presets use each provider's 2014-era public characteristics
(regions as served from the paper's China-based client).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProviderFeatures", "TABLE2_FEATURES"]


@dataclass(frozen=True)
class ProviderFeatures:
    """Qualitative service features of one provider."""

    region: str = "unknown"
    geo_redundant: bool = False  # provider-side geographic replication
    mountable_fs: bool = False  # POSIX-ish mountable interface offered
    rest_api: bool = True  # the paper's five functions over REST
    sla_nines: float = 3.0  # availability promised by the SLA

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("region must be non-empty")
        if self.sla_nines < 0:
            raise ValueError(f"sla_nines must be >= 0, got {self.sla_nines}")

    def has(self, feature: str) -> bool:
        """Feature query by name: 'geo_redundant', 'mountable_fs', 'rest_api'."""
        try:
            value = getattr(self, feature)
        except AttributeError:
            raise KeyError(f"unknown feature {feature!r}") from None
        if not isinstance(value, bool):
            raise KeyError(f"{feature!r} is not a boolean feature")
        return value


#: Plausible 2014-era profiles for the Table II fleet.
TABLE2_FEATURES: dict[str, ProviderFeatures] = {
    "amazon_s3": ProviderFeatures(
        region="us-east", geo_redundant=True, mountable_fs=False, sla_nines=4.0
    ),
    "azure": ProviderFeatures(
        region="asia-east", geo_redundant=True, mountable_fs=True, sla_nines=4.0
    ),
    "aliyun": ProviderFeatures(
        region="cn-hangzhou", geo_redundant=False, mountable_fs=False, sla_nines=3.5
    ),
    "rackspace": ProviderFeatures(
        region="us-central", geo_redundant=False, mountable_fs=True, sla_nines=3.5
    ),
}
