"""Simulated cloud storage providers and the GCS-API middleware.

The paper models each provider as a *passive storage functional entity* with
exactly five operations — List, Get, Create, Put, Remove — characterised
externally by its access latency and its price plan (Table II).  This package
reproduces that model:

- :mod:`repro.cloud.objectstore` -- containers/objects with versions
- :mod:`repro.cloud.latency`     -- RTT + bandwidth latency models, client link
- :mod:`repro.cloud.pricing`     -- Table II price plans and presets
- :mod:`repro.cloud.metering`    -- raw usage meters (bytes, ops, byte-time)
- :mod:`repro.cloud.outage`      -- outage windows / schedules / injection
- :mod:`repro.cloud.provider`    -- the metered, outage-aware provider
- :mod:`repro.cloud.gcsapi`      -- the GCS-API middleware (provider registry)
- :mod:`repro.cloud.rest`        -- RESTful request/response encoding layer
"""

from repro.cloud.errors import (
    CloudError,
    ContainerExists,
    NoSuchContainer,
    NoSuchObject,
    ProviderUnavailable,
)
from repro.cloud.gcsapi import GcsApi
from repro.cloud.latency import ClientLink, LatencyModel
from repro.cloud.metering import UsageMeter
from repro.cloud.objectstore import ObjectStore, StoredObject
from repro.cloud.outage import OutageSchedule, OutageWindow
from repro.cloud.pricing import PRICE_PLANS, PricingPlan, ProviderCategory
from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds

__all__ = [
    "ClientLink",
    "CloudError",
    "ContainerExists",
    "GcsApi",
    "LatencyModel",
    "NoSuchContainer",
    "NoSuchObject",
    "ObjectStore",
    "OutageSchedule",
    "OutageWindow",
    "PRICE_PLANS",
    "PricingPlan",
    "ProviderCategory",
    "ProviderUnavailable",
    "SimulatedProvider",
    "StoredObject",
    "UsageMeter",
    "make_table2_cloud_of_clouds",
]
