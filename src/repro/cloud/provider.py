"""The simulated cloud storage provider.

A :class:`SimulatedProvider` is the paper's "passive storage functional
entity": exactly five functions — List, Get, Create, Put, Remove — wrapped
with (1) availability checks against an outage schedule, (2) usage metering
for billing, and (3) a latency model that schemes use to cost the wire time.

Provider methods mutate state instantly and *return data only*; latency is
charged by the scheme layer, which batches the
:class:`~repro.sim.bandwidth.TransferSpec` of every concurrent request in an
operation through the shared client link (see
:meth:`repro.schemes.base.Scheme` internals).  This split keeps contention
accounting global and providers simple.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cloud.errors import ProviderUnavailable, TransientProviderError
from repro.cloud.features import TABLE2_FEATURES, ProviderFeatures
from repro.faults.profile import FaultProfile
from repro.sim.rng import make_rng
from repro.cloud.latency import LatencyModel
from repro.cloud.metering import UsageMeter
from repro.cloud.objectstore import ObjectStore, StoredObject
from repro.cloud.outage import OutageSchedule
from repro.cloud.pricing import CATEGORIES, PRICE_PLANS, PricingPlan, ProviderCategory
from repro.sim.clock import SimClock

__all__ = ["SimulatedProvider", "TABLE2_LATENCY", "make_table2_cloud_of_clouds"]


#: Latency calibration for the four Table II providers, chosen to reproduce
#: Figure 5's ordering from a China-based client: Aliyun fastest, then Azure,
#: then Amazon S3, then Rackspace.  Bandwidths are sustained per-connection
#: WAN throughput (bytes/s).
TABLE2_LATENCY: dict[str, LatencyModel] = {
    "aliyun": LatencyModel(rtt=0.025, upload_bw=9e6, download_bw=11e6),
    "azure": LatencyModel(rtt=0.080, upload_bw=5e6, download_bw=6.5e6),
    "amazon_s3": LatencyModel(rtt=0.250, upload_bw=2.5e6, download_bw=3.5e6),
    "rackspace": LatencyModel(rtt=0.350, upload_bw=1.8e6, download_bw=2.5e6),
}


class SimulatedProvider:
    """One cloud storage provider: object store + latency + billing + outages."""

    def __init__(
        self,
        name: str,
        clock: SimClock,
        latency: LatencyModel,
        pricing: PricingPlan,
        outages: OutageSchedule | None = None,
        category: ProviderCategory = ProviderCategory.NONE,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
        features: "ProviderFeatures | None" = None,
        faults: FaultProfile | None = None,
    ) -> None:
        if not (0.0 <= fault_rate < 1.0):
            raise ValueError(f"fault_rate must be in [0, 1), got {fault_rate}")
        self.name = name
        self.clock = clock
        self.latency = latency
        self.pricing = pricing
        self.outages = outages if outages is not None else OutageSchedule()
        self.category = category
        self.store = ObjectStore()
        self.meter = UsageMeter()
        #: probability that any single request fails transiently (HTTP 500 /
        #: throttling); clients are expected to retry
        self.fault_rate = fault_rate
        self._fault_rng = make_rng(fault_seed, "provider-faults", name)
        self.features = features if features is not None else ProviderFeatures()
        #: scripted fault profile (bursts, brownouts, flapping, corruption);
        #: layered on top of the outage schedule and the base fault rate
        self.faults = faults.bind(name) if faults is not None else None
        #: optional :class:`~repro.metrics.registry.MetricsRegistry`; when a
        #: scheme attaches one (it does at construction), every request is
        #: counted into ``provider_requests_total{provider,op}``, failures
        #: into ``provider_errors_total{provider,kind}`` and payload bytes
        #: into ``provider_bytes_{up,down}_total{provider}``.  Metrics are
        #: pure bookkeeping: no RNG draws, no clock movement.  A fleet shared
        #: by several schemes reports into whichever registry attached last.
        self.metrics = None
        # Memoized counter instruments, valid only for the registry they were
        # resolved from; dropped wholesale whenever ``metrics`` is swapped.
        self._counter_cache: tuple[object, dict[tuple[str, str], object]] = (None, {})

    # --------------------------------------------------------------- metrics
    def _counter(self, name: str, **labels: str):
        m = self.metrics
        owner, cache = self._counter_cache
        if owner is not m:
            cache = {}
            self._counter_cache = (m, cache)
        key = (name, tuple(labels.values()))
        c = cache.get(key)
        if c is None:
            c = m.counter(name, provider=self.name, **labels)
            cache[key] = c
        return c

    def _count_request(self, op: str) -> None:
        if self.metrics is not None:
            self._counter("provider_requests_total", op=op).inc()

    def _count_error(self, kind: str) -> None:
        if self.metrics is not None:
            self._counter("provider_errors_total", kind=kind).inc()

    # ---------------------------------------------------------- availability
    def is_available(self, t: float | None = None) -> bool:
        t = self.clock.now if t is None else t
        if self.outages.is_out(t):
            return False
        return not (self.faults is not None and self.faults.is_out(t))

    def scheduled_downtime(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Ground-truth unavailability intervals in ``[t0, t1)``, merged.

        The union of the outage schedule's windows and every fault-profile
        effect that takes the provider down (flapping outages).  This is what
        :meth:`is_available` would report if polled continuously — the SLO
        tracker ingests it so observed MTBF/MTTR can be checked against the
        injected schedule exactly.
        """
        raw: list[tuple[float, float]] = []
        for w in self.outages.windows:
            a, b = max(w.start, t0), min(w.end, t1)
            if b > a:
                raw.append((a, b))
        if self.faults is not None:
            raw.extend(self.faults.downtime_windows(t0, t1))
        raw.sort()
        merged: list[tuple[float, float]] = []
        for a, b in raw:
            if merged and a <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        return merged

    def _effective_fault_rate(self, t: float) -> float:
        """Base transient rate layered with any scripted burst/throttle."""
        rate = self.fault_rate
        if self.faults is not None:
            extra = self.faults.extra_fault_rate(t)
            if extra > 0.0:
                rate = 1.0 - (1.0 - rate) * (1.0 - extra)
        return rate

    def _check_available(self) -> None:
        now = self.clock.now
        if not self.is_available(now):
            self._count_error("unavailable")
            raise ProviderUnavailable(self.name, now)
        rate = self._effective_fault_rate(now)
        if rate > 0.0 and self._fault_rng.random() < rate:
            self._count_error("transient")
            raise TransientProviderError(self.name, now)

    def _sync_storage_meter(self) -> None:
        # ObjectStore maintains its byte total incrementally, so this is O(1)
        # per mutation rather than a walk of every stored object.
        self.meter.set_stored_bytes(self.store.total_bytes(), self.clock.now)

    # ------------------------------------------------------ degraded latency
    def effective_latency(self, t: float | None = None) -> LatencyModel:
        """The latency model as degraded by any active brownout.

        Schemes cost their transfers through this, so a browned-out provider
        really does answer slowly — the client only *learns* about it through
        the measurements its health tracker accumulates.
        """
        if self.faults is None:
            return self.latency
        rtt_f, bw_f = self.faults.latency_factors(self.clock.now if t is None else t)
        if rtt_f == 1.0 and bw_f == 1.0:
            return self.latency
        return replace(
            self.latency,
            rtt=self.latency.rtt * rtt_f,
            upload_bw=self.latency.upload_bw * bw_f,
            download_bw=self.latency.download_bw * bw_f,
        )

    # ------------------------------------------------- the five paper ops
    def create(self, container: str, *, exist_ok: bool = False) -> None:
        """Create a container (paper op: *Create*)."""
        self._count_request("create")
        self._check_available()
        self.store.create_container(container, exist_ok=exist_ok)
        self.meter.record_create(self.clock.now)

    def list(self, container: str) -> list[str]:
        """List object keys in a container (paper op: *List*)."""
        self._count_request("list")
        self._check_available()
        keys = self.store.list(container)
        self.meter.record_list(self.clock.now)
        return keys

    def get(self, container: str, key: str) -> bytes | memoryview:
        """Read an object (paper op: *Get*).

        Returns the stored buffer as-is (zero-copy); treat it as read-only.

        A scripted :class:`~repro.faults.profile.SilentCorruption` window can
        flip bits in the *returned* copy (the stored object is untouched);
        only end-to-end digest verification catches it.
        """
        self._count_request("get")
        self._check_available()
        obj = self.store.get(container, key)
        self.meter.record_get(obj.size, self.clock.now)
        if self.metrics is not None:
            self._counter("provider_bytes_down_total").inc(obj.size)
        if self.faults is not None:
            return self.faults.maybe_corrupt(
                obj.data, self.clock.now, where=(container, key)
            )
        return obj.data

    def put(self, container: str, key: str, data: bytes | memoryview) -> StoredObject:
        """Write or overwrite an object (paper op: *Put*).

        ``data`` may be any bytes-like object; immutable buffers are stored
        without a copy (see :mod:`repro.cloud.objectstore`).
        """
        self._count_request("put")
        self._check_available()
        obj = self.store.put(container, key, data, self.clock.now)
        self.meter.record_put(obj.size, self.clock.now)
        if self.metrics is not None:
            self._counter("provider_bytes_up_total").inc(obj.size)
        self._sync_storage_meter()
        return obj

    def remove(self, container: str, key: str) -> None:
        """Delete an object (paper op: *Remove*)."""
        self._count_request("remove")
        self._check_available()
        self.store.remove(container, key)
        self.meter.record_remove(self.clock.now)
        self._sync_storage_meter()

    # -------------------------------------------------------------- metadata
    def head(self, container: str, key: str) -> StoredObject:
        """Version/timestamp probe used by the consistency updater.

        Not one of the paper's five user-facing functions; it models reading
        the object listing's metadata and is metered as a tier-2 transaction
        with no payload.
        """
        self._count_request("head")
        self._check_available()
        obj = self.store.get(container, key)
        self.meter.record_get(0, self.clock.now)
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedProvider({self.name!r})"


def make_table2_cloud_of_clouds(
    clock: SimClock,
    outages: dict[str, OutageSchedule] | None = None,
    faults: dict[str, FaultProfile] | None = None,
) -> dict[str, SimulatedProvider]:
    """The paper's experimental Cloud-of-Clouds: the four Table II providers.

    Returns ``{name: provider}`` with pricing from Table II and latency from
    :data:`TABLE2_LATENCY`; pass ``outages`` and/or ``faults`` to inject
    failures per provider.
    """
    outages = outages or {}
    faults = faults or {}
    providers: dict[str, SimulatedProvider] = {}
    for name in ("amazon_s3", "azure", "aliyun", "rackspace"):
        providers[name] = SimulatedProvider(
            name=name,
            clock=clock,
            latency=TABLE2_LATENCY[name],
            pricing=PRICE_PLANS[name],
            outages=outages.get(name),
            category=CATEGORIES[name],
            features=TABLE2_FEATURES[name],
            faults=faults.get(name),
        )
    return providers
