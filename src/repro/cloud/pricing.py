"""Cloud price plans — Table II of the paper, verbatim.

Monthly price plans (US dollars) for Amazon S3, Windows Azure Storage,
Aliyun Open Storage Service and Rackspace Cloud Files, as of September 10th
2014 in the China region, first chargeable tier.  The final row of Table II
classifies each provider as cost-oriented, performance-oriented, or both;
that classification is reproduced by :class:`ProviderCategory` and is also
*derivable* from measurements via :mod:`repro.core.evaluator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "PricingPlan",
    "ProviderCategory",
    "PRICE_PLANS",
    "CATEGORIES",
    "GB",
    "TRANSACTION_BATCH",
]

GB = 1024**3
TRANSACTION_BATCH = 10_000  # prices are quoted per 10K transactions


class ProviderCategory(enum.Flag):
    """Table II's bottom row: how the Evaluator classifies a provider."""

    NONE = 0
    COST_ORIENTED = enum.auto()
    PERFORMANCE_ORIENTED = enum.auto()
    BOTH = COST_ORIENTED | PERFORMANCE_ORIENTED


@dataclass(frozen=True)
class PricingPlan:
    """One provider's Table II row.

    All prices in US dollars; transaction prices are per single transaction
    (the table's per-10K figures divided by ``TRANSACTION_BATCH``).
    """

    storage_gb_month: float  # $ per GB stored per month
    data_in_gb: float  # $ per GB transferred in
    data_out_gb: float  # $ per GB transferred out to the Internet
    tier1_per_10k: float  # Put, Copy, Post, List — $ per 10K transactions
    tier2_per_10k: float  # Get and others — $ per 10K transactions

    def __post_init__(self) -> None:
        for field in (
            self.storage_gb_month,
            self.data_in_gb,
            self.data_out_gb,
            self.tier1_per_10k,
            self.tier2_per_10k,
        ):
            if field < 0:
                raise ValueError("prices must be >= 0")

    # ------------------------------------------------------------- components
    def storage_cost(self, gb_months: float) -> float:
        """Cost of holding an average of ``gb_months`` GB for one month."""
        return gb_months * self.storage_gb_month

    def data_in_cost(self, bytes_in: float) -> float:
        return (bytes_in / GB) * self.data_in_gb

    def data_out_cost(self, bytes_out: float) -> float:
        return (bytes_out / GB) * self.data_out_gb

    def tier1_cost(self, ops: int) -> float:
        """Put/Copy/Post/List transactions."""
        return ops * self.tier1_per_10k / TRANSACTION_BATCH

    def tier2_cost(self, ops: int) -> float:
        """Get-and-others transactions."""
        return ops * self.tier2_per_10k / TRANSACTION_BATCH


#: Table II, column by column.
PRICE_PLANS: dict[str, PricingPlan] = {
    "amazon_s3": PricingPlan(
        storage_gb_month=0.033,
        data_in_gb=0.0,
        data_out_gb=0.201,
        tier1_per_10k=0.047,
        tier2_per_10k=0.0037,
    ),
    "azure": PricingPlan(
        storage_gb_month=0.157,
        data_in_gb=0.0,
        data_out_gb=0.0,
        tier1_per_10k=0.0,
        tier2_per_10k=0.0,
    ),
    "aliyun": PricingPlan(
        storage_gb_month=0.029,
        data_in_gb=0.0,
        data_out_gb=0.123,
        tier1_per_10k=0.0016,
        tier2_per_10k=0.0016,
    ),
    "rackspace": PricingPlan(
        storage_gb_month=0.13,
        data_in_gb=0.0,
        data_out_gb=0.0,
        tier1_per_10k=0.0,
        tier2_per_10k=0.0,
    ),
}

#: Table II, bottom row ("Category").
CATEGORIES: dict[str, ProviderCategory] = {
    "amazon_s3": ProviderCategory.COST_ORIENTED,
    "azure": ProviderCategory.PERFORMANCE_ORIENTED,
    "aliyun": ProviderCategory.BOTH,
    "rackspace": ProviderCategory.COST_ORIENTED,
}
