"""RESTful encoding of the five storage functions.

The paper's prototype drives providers through REST (RFC 2616 verbs).  This
module gives the simulated providers the same surface: requests and responses
as data, an adapter that executes them, and the verb mapping the paper
implies:

=========  ======  ==========================
Function   Verb    Path
=========  ======  ==========================
Create     PUT     /<container>
List       GET     /<container>
Get        GET     /<container>/<key>
Put        PUT     /<container>/<key>
Remove     DELETE  /<container>/<key>
=========  ======  ==========================

Nothing else in the repo depends on this layer — schemes call providers
directly for speed — but examples and tests exercise it to demonstrate the
prototype's wire-level interface, and it is the natural seam for plugging in
a real HTTP client against live clouds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.errors import (
    CloudError,
    ContainerExists,
    NoSuchContainer,
    NoSuchObject,
    ProviderUnavailable,
)
from repro.cloud.provider import SimulatedProvider

__all__ = ["RestRequest", "RestResponse", "RestAdapter"]

_VALID_METHODS = frozenset({"GET", "PUT", "DELETE"})


@dataclass(frozen=True)
class RestRequest:
    """One HTTP-style request against a provider."""

    method: str
    path: str
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in _VALID_METHODS:
            raise ValueError(f"unsupported method {self.method!r}")
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/', got {self.path!r}")

    def split_path(self) -> tuple[str, str | None]:
        """Return (container, key-or-None)."""
        parts = self.path.lstrip("/").split("/", 1)
        container = parts[0]
        if not container:
            raise ValueError("path must name a container")
        key = parts[1] if len(parts) > 1 and parts[1] else None
        return container, key


@dataclass(frozen=True)
class RestResponse:
    """Status + body; 2xx on success."""

    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestAdapter:
    """Executes :class:`RestRequest` objects against one provider."""

    def __init__(self, provider: SimulatedProvider) -> None:
        self.provider = provider

    def execute(self, request: RestRequest) -> RestResponse:
        """Run a request, mapping cloud errors to HTTP status codes."""
        try:
            return self._dispatch(request)
        except ProviderUnavailable:
            return RestResponse(status=503)
        except (NoSuchContainer, NoSuchObject):
            return RestResponse(status=404)
        except ContainerExists:
            return RestResponse(status=409)
        except CloudError:  # pragma: no cover - future error kinds
            return RestResponse(status=500)

    def _dispatch(self, request: RestRequest) -> RestResponse:
        container, key = request.split_path()
        if request.method == "PUT" and key is None:
            self.provider.create(container)
            return RestResponse(status=201)
        if request.method == "PUT":
            obj = self.provider.put(container, key, request.body)
            return RestResponse(
                status=200, headers={"x-version": str(obj.version)}
            )
        if request.method == "GET" and key is None:
            keys = self.provider.list(container)
            return RestResponse(status=200, body="\n".join(keys).encode())
        if request.method == "GET":
            data = self.provider.get(container, key)
            return RestResponse(status=200, body=data)
        if request.method == "DELETE" and key is not None:
            self.provider.remove(container, key)
            return RestResponse(status=204)
        return RestResponse(status=405)
