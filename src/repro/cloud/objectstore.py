"""In-memory object store: containers holding versioned byte objects.

This is the storage half of a simulated provider; availability, latency and
billing wrap around it in :mod:`repro.cloud.provider`.  Semantics follow the
paper's passive five-function model (and S3-like stores generally):

- ``put`` upserts whole objects (no partial writes — the reason erasure-coded
  small updates are expensive in the first place);
- ``get``/``remove`` raise :class:`NoSuchObject` for unknown keys;
- ``list`` returns keys in lexicographic order;
- every object carries created/modified timestamps and a version counter,
  which the recovery consistency-update uses to detect stale state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.errors import ContainerExists, NoSuchContainer, NoSuchObject

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """One immutable object version."""

    data: bytes
    created: float
    modified: float
    version: int

    @property
    def size(self) -> int:
        return len(self.data)


class ObjectStore:
    """Containers of key -> :class:`StoredObject`."""

    def __init__(self) -> None:
        self._containers: dict[str, dict[str, StoredObject]] = {}

    # ------------------------------------------------------------ containers
    def create_container(self, container: str, *, exist_ok: bool = False) -> None:
        if container in self._containers:
            if exist_ok:
                return
            raise ContainerExists(container)
        self._containers[container] = {}

    def has_container(self, container: str) -> bool:
        return container in self._containers

    def containers(self) -> list[str]:
        return sorted(self._containers)

    def _objects(self, container: str) -> dict[str, StoredObject]:
        try:
            return self._containers[container]
        except KeyError:
            raise NoSuchContainer(container) from None

    # --------------------------------------------------------------- objects
    def put(self, container: str, key: str, data: bytes, now: float) -> StoredObject:
        """Upsert ``key``; returns the stored version."""
        objects = self._objects(container)
        prev = objects.get(key)
        obj = StoredObject(
            data=bytes(data),
            created=prev.created if prev else now,
            modified=now,
            version=prev.version + 1 if prev else 1,
        )
        objects[key] = obj
        return obj

    def get(self, container: str, key: str) -> StoredObject:
        objects = self._objects(container)
        try:
            return objects[key]
        except KeyError:
            raise NoSuchObject(container, key) from None

    def has(self, container: str, key: str) -> bool:
        return self.has_container(container) and key in self._containers[container]

    def remove(self, container: str, key: str) -> StoredObject:
        """Delete ``key``; returns the removed version (for byte accounting)."""
        objects = self._objects(container)
        try:
            return objects.pop(key)
        except KeyError:
            raise NoSuchObject(container, key) from None

    def list(self, container: str) -> list[str]:
        return sorted(self._objects(container))

    # ------------------------------------------------------------- inventory
    def total_bytes(self) -> int:
        """Bytes currently stored across all containers (billing basis)."""
        return sum(
            obj.size for objs in self._containers.values() for obj in objs.values()
        )

    def object_count(self) -> int:
        return sum(len(objs) for objs in self._containers.values())
