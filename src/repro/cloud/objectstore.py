"""In-memory object store: containers holding versioned byte objects.

This is the storage half of a simulated provider; availability, latency and
billing wrap around it in :mod:`repro.cloud.provider`.  Semantics follow the
paper's passive five-function model (and S3-like stores generally):

- ``put`` upserts whole objects (no partial writes — the reason erasure-coded
  small updates are expensive in the first place);
- ``get``/``remove`` raise :class:`NoSuchObject` for unknown keys;
- ``list`` returns keys in lexicographic order;
- every object carries created/modified timestamps and a version counter,
  which the recovery consistency-update uses to detect stale state.

Data plane conventions (see ``docs/performance.md``): ``put`` accepts any
bytes-like object.  ``bytes`` and ``memoryview`` payloads are stored without
a defensive copy — callers handing over a ``memoryview`` promise not to
mutate the underlying buffer afterwards (codec fragments are write-once).
Mutable ``bytearray`` input is still copied.  Byte totals are maintained
incrementally so :meth:`total_bytes` is O(1) regardless of object count,
and :meth:`list` caches its sorted key view per container, invalidated only
when the key set changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.errors import ContainerExists, NoSuchContainer, NoSuchObject

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """One immutable object version.

    ``data`` may be ``bytes`` or a read-only view into a codec buffer; both
    support ``len``/hashing/slicing, and the simulator treats stored buffers
    as frozen.
    """

    data: bytes | memoryview
    created: float
    modified: float
    version: int

    @property
    def size(self) -> int:
        return len(self.data)


class ObjectStore:
    """Containers of key -> :class:`StoredObject`."""

    def __init__(self) -> None:
        self._containers: dict[str, dict[str, StoredObject]] = {}
        #: cached ``sorted(keys)`` per container; None means "rebuild on next
        #: list()".  Only key-set changes invalidate it — overwrites don't.
        self._sorted_keys: dict[str, list[str] | None] = {}
        self._total_bytes = 0

    # ------------------------------------------------------------ containers
    def create_container(self, container: str, *, exist_ok: bool = False) -> None:
        if container in self._containers:
            if exist_ok:
                return
            raise ContainerExists(container)
        self._containers[container] = {}
        self._sorted_keys[container] = []

    def has_container(self, container: str) -> bool:
        return container in self._containers

    def containers(self) -> list[str]:
        return sorted(self._containers)

    def _objects(self, container: str) -> dict[str, StoredObject]:
        try:
            return self._containers[container]
        except KeyError:
            raise NoSuchContainer(container) from None

    # --------------------------------------------------------------- objects
    def put(
        self, container: str, key: str, data: bytes | bytearray | memoryview, now: float
    ) -> StoredObject:
        """Upsert ``key``; returns the stored version."""
        objects = self._objects(container)
        prev = objects.get(key)
        if isinstance(data, bytearray):
            data = bytes(data)  # mutable owner: defensive copy
        obj = StoredObject(
            data=data,
            created=prev.created if prev else now,
            modified=now,
            version=prev.version + 1 if prev else 1,
        )
        objects[key] = obj
        if prev is None:
            self._sorted_keys[container] = None
            self._total_bytes += obj.size
        else:
            self._total_bytes += obj.size - prev.size
        return obj

    def get(self, container: str, key: str) -> StoredObject:
        objects = self._objects(container)
        try:
            return objects[key]
        except KeyError:
            raise NoSuchObject(container, key) from None

    def has(self, container: str, key: str) -> bool:
        return self.has_container(container) and key in self._containers[container]

    def remove(self, container: str, key: str) -> StoredObject:
        """Delete ``key``; returns the removed version (for byte accounting)."""
        objects = self._objects(container)
        try:
            obj = objects.pop(key)
        except KeyError:
            raise NoSuchObject(container, key) from None
        self._sorted_keys[container] = None
        self._total_bytes -= obj.size
        return obj

    def list(self, container: str) -> list[str]:
        cached = self._sorted_keys.get(container)
        if cached is None:
            cached = sorted(self._objects(container))
            self._sorted_keys[container] = cached
        return list(cached)

    # ------------------------------------------------------- fault injection
    def tamper(self, container: str, key: str, data: bytes | memoryview) -> StoredObject:
        """Silently replace ``key``'s bytes in place (bit-rot injection).

        Unlike :meth:`put`, the version and timestamps are *not* bumped —
        the provider has no idea the object changed, which is exactly what
        makes the damage silent and detectable only by end-to-end digest
        verification (the anti-entropy scrubber's job).  The size may shrink
        (truncation is a tamper too); byte totals stay consistent.
        """
        objects = self._objects(container)
        try:
            prev = objects[key]
        except KeyError:
            raise NoSuchObject(container, key) from None
        obj = StoredObject(
            data=bytes(data),
            created=prev.created,
            modified=prev.modified,
            version=prev.version,
        )
        objects[key] = obj
        self._total_bytes += obj.size - prev.size
        return obj

    def vanish(self, container: str, key: str) -> StoredObject:
        """Silently delete ``key`` (lost-object injection).

        Same effect as :meth:`remove` but named for intent: nothing in the
        provider's billing or metering trail records the disappearance.
        """
        return self.remove(container, key)

    # ------------------------------------------------------------- inventory
    def total_bytes(self) -> int:
        """Bytes currently stored across all containers (billing basis).

        Maintained incrementally by put/remove deltas — O(1), not a walk of
        every stored object.
        """
        return self._total_bytes

    def object_count(self) -> int:
        return sum(len(objs) for objs in self._containers.values())
