"""Cloud service outage windows and schedules.

The paper distinguishes an *outage* from a disk failure: the provider is
unreachable for hours-to-days and then **returns with its data intact** (but
stale).  An :class:`OutageSchedule` is therefore just a set of time windows;
the recovery machinery in :mod:`repro.core.recovery` handles degraded reads
during a window and consistency updates at its end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["OutageWindow", "OutageSchedule"]


@dataclass(frozen=True)
class OutageWindow:
    """Half-open unavailability interval ``[start, end)``; end may be inf."""

    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"end must be > start, got [{self.start}, {self.end})")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


class OutageSchedule:
    """An ordered, non-overlapping set of outage windows for one provider."""

    def __init__(self, windows: list[OutageWindow] | None = None) -> None:
        self._windows: list[OutageWindow] = []
        for w in windows or []:
            self.add(w)

    def add(self, window: OutageWindow) -> None:
        for existing in self._windows:
            if window.start < existing.end and existing.start < window.end:
                raise ValueError(
                    f"outage window [{window.start}, {window.end}) overlaps "
                    f"[{existing.start}, {existing.end})"
                )
        self._windows.append(window)
        self._windows.sort(key=lambda w: w.start)

    @property
    def windows(self) -> tuple[OutageWindow, ...]:
        return tuple(self._windows)

    def is_out(self, t: float) -> bool:
        """True when the provider is unavailable at simulated time ``t``."""
        return any(w.covers(t) for w in self._windows)

    def next_return(self, t: float) -> float | None:
        """End of the window covering ``t`` (None when the provider is up)."""
        for w in self._windows:
            if w.covers(t):
                return w.end if math.isfinite(w.end) else None
        return None

    def next_outage_after(self, t: float) -> float | None:
        """Start of the first window strictly after ``t`` (None if none)."""
        for w in self._windows:
            if w.start > t:
                return w.start
        return None

    def total_downtime(self, horizon: float) -> float:
        """Seconds of unavailability in ``[0, horizon)``."""
        return sum(
            max(0.0, min(w.end, horizon) - min(w.start, horizon))
            for w in self._windows
        )

    @classmethod
    def poisson(
        cls,
        rng: np.random.Generator,
        horizon: float,
        mtbf: float,
        mttr: float,
    ) -> "OutageSchedule":
        """Random schedule: exponential time-between-failures and repair times.

        Mirrors the availability analyses the paper cites (outages are rare
        but last hours to days): e.g. ``mtbf=90 days, mttr=8 hours``.
        """
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be > 0")
        schedule = cls()
        t = float(rng.exponential(mtbf))
        while t < horizon:
            duration = float(rng.exponential(mttr))
            schedule.add(OutageWindow(t, t + duration))
            t = t + duration + float(rng.exponential(mtbf))
        return schedule
