"""Latency models for providers and the client's access link.

A provider is characterised by a request RTT (DNS + TCP + TLS + request
processing, sampled with lognormal jitter) and sustained per-connection
upload/download throughput — the same two quantities the paper's Evaluator
measures on the live clouds.  Byte transfer times are *not* computed here:
schemes collect :class:`~repro.sim.bandwidth.TransferSpec` objects for every
concurrent request in an operation phase and hand them to the fair-share
model through :class:`ClientLink`, so contention on the client's access link
is accounted once, globally.

Default provider parameters (see :data:`repro.cloud.provider.TABLE2_LATENCY`)
are calibrated so single-cloud latency curves reproduce Figure 5's ordering:
Aliyun fastest (client sits on CERNET in China), Azure next, Amazon S3 and
Rackspace slower — with transfer time overtaking RTT between 1 MB and 4 MB,
which is where the paper places the small/large threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.bandwidth import TransferSpec, total_elapsed

__all__ = ["LatencyModel", "ClientLink"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-provider latency characteristics.

    Parameters
    ----------
    rtt:
        Mean request round-trip/setup time in seconds, charged before the
        first payload byte moves.
    upload_bw / download_bw:
        Sustained per-connection throughput in bytes/second toward / from
        the provider.
    rtt_sigma / bw_sigma:
        Lognormal jitter scales (0 disables jitter — useful in tests).
    """

    rtt: float
    upload_bw: float
    download_bw: float
    rtt_sigma: float = 0.15
    bw_sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.rtt < 0:
            raise ValueError(f"rtt must be >= 0, got {self.rtt}")
        if self.upload_bw <= 0 or self.download_bw <= 0:
            raise ValueError("bandwidths must be > 0")
        if self.rtt_sigma < 0 or self.bw_sigma < 0:
            raise ValueError("jitter sigmas must be >= 0")

    def sample_rtt(self, rng: np.random.Generator | None = None) -> float:
        """One RTT draw; deterministic (the mean) when rng is None."""
        if rng is None or self.rtt_sigma == 0 or self.rtt == 0:
            return self.rtt
        # lognormal with unit median, so jitter never makes latency negative.
        return self.rtt * float(rng.lognormal(0.0, self.rtt_sigma))

    def _sample_bw(self, bw: float, rng: np.random.Generator | None) -> float:
        if rng is None or self.bw_sigma == 0:
            return bw
        return bw * float(rng.lognormal(0.0, self.bw_sigma))

    def upload_spec(
        self, size: int, rng: np.random.Generator | None = None
    ) -> TransferSpec:
        """TransferSpec for sending ``size`` bytes to this provider."""
        return TransferSpec(
            start_delay=self.sample_rtt(rng),
            size_bytes=float(size),
            remote_cap=self._sample_bw(self.upload_bw, rng),
        )

    def download_spec(
        self, size: int, rng: np.random.Generator | None = None
    ) -> TransferSpec:
        """TransferSpec for fetching ``size`` bytes from this provider."""
        return TransferSpec(
            start_delay=self.sample_rtt(rng),
            size_bytes=float(size),
            remote_cap=self._sample_bw(self.download_bw, rng),
        )

    def control_spec(self, rng: np.random.Generator | None = None) -> TransferSpec:
        """Zero-payload request (List/Create/Remove): RTT only."""
        return TransferSpec(start_delay=self.sample_rtt(rng), size_bytes=0.0)


@dataclass(frozen=True)
class ClientLink:
    """The client's access link (full duplex: up and down are independent).

    Defaults model the paper's desktop on a campus network: the physical NIC
    is 1 Gb/s but sustained WAN egress through CERNET is far lower, which is
    precisely why pushing two full replicas (DuraCloud) hurts large writes.
    """

    uplink: float = 5e6  # bytes/s sustained toward the WAN
    downlink: float = 25e6  # bytes/s sustained from the WAN

    def __post_init__(self) -> None:
        if self.uplink <= 0 or self.downlink <= 0:
            raise ValueError("link capacities must be > 0")

    def elapsed(
        self,
        uploads: list[TransferSpec] | None = None,
        downloads: list[TransferSpec] | None = None,
    ) -> float:
        """Wall-clock seconds until every transfer in the phase completes.

        Uploads contend with uploads, downloads with downloads; the phase
        ends when the slower direction drains.
        """
        up = total_elapsed(uploads, self.uplink) if uploads else 0.0
        down = total_elapsed(downloads, self.downlink) if downloads else 0.0
        return max(up, down)

    def serial_upload_time(self, size: int, remote_cap: float = math.inf) -> float:
        """Lower-bound transfer time for one upload (no RTT, no contention)."""
        return size / min(self.uplink, remote_cap)
