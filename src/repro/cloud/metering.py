"""Raw usage metering for billing.

Cloud bills have four components (Table II): stored GB-months, data in,
data out, and two transaction classes.  The meter accumulates all of them in
*per-month buckets* so the cost simulator can print Figure 4's monthly and
cumulative series.

Storage is billed on the time-integral of stored bytes: the meter keeps a
running ``byte-seconds`` accumulator that is split across month boundaries
whenever stored capacity changes (or on explicit :meth:`accrue`), giving the
average GB held in each month regardless of when puts/removes happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SECONDS_PER_MONTH

__all__ = ["MonthUsage", "UsageMeter"]


@dataclass
class MonthUsage:
    """Raw usage in one accounting month."""

    bytes_in: float = 0.0
    bytes_out: float = 0.0
    tier1_ops: int = 0  # Put, Copy, Post, List
    tier2_ops: int = 0  # Get and others
    byte_seconds: float = 0.0  # integral of stored bytes over time

    @property
    def gb_months(self) -> float:
        return self.byte_seconds / (1024**3 * SECONDS_PER_MONTH)

    def merge(self, other: "MonthUsage") -> "MonthUsage":
        """Element-wise sum (used when aggregating providers)."""
        return MonthUsage(
            bytes_in=self.bytes_in + other.bytes_in,
            bytes_out=self.bytes_out + other.bytes_out,
            tier1_ops=self.tier1_ops + other.tier1_ops,
            tier2_ops=self.tier2_ops + other.tier2_ops,
            byte_seconds=self.byte_seconds + other.byte_seconds,
        )


@dataclass
class UsageMeter:
    """Per-provider usage accumulator with month bucketing."""

    _months: dict[int, MonthUsage] = field(default_factory=dict)
    _stored_bytes: float = 0.0
    _last_accrual: float = 0.0

    def _bucket(self, t: float) -> MonthUsage:
        m = int(t // SECONDS_PER_MONTH)
        bucket = self._months.get(m)
        if bucket is None:
            bucket = MonthUsage()
            self._months[m] = bucket
        return bucket

    # ---------------------------------------------------------------- storage
    def accrue(self, now: float) -> None:
        """Integrate stored bytes up to ``now``, splitting at month edges."""
        if now < self._last_accrual:
            raise ValueError(
                f"accrual time moved backwards: {self._last_accrual} -> {now}"
            )
        t = self._last_accrual
        while t < now:
            month_end = (int(t // SECONDS_PER_MONTH) + 1) * SECONDS_PER_MONTH
            seg_end = min(now, month_end)
            self._bucket(t).byte_seconds += self._stored_bytes * (seg_end - t)
            t = seg_end
        self._last_accrual = now

    def set_stored_bytes(self, stored: float, now: float) -> None:
        """Record a capacity change (accrues the old level first)."""
        if stored < 0:
            raise ValueError(f"stored bytes must be >= 0, got {stored}")
        self.accrue(now)
        self._stored_bytes = float(stored)

    @property
    def stored_bytes(self) -> float:
        return self._stored_bytes

    # ------------------------------------------------------------------- ops
    def record_put(self, size: int, now: float) -> None:
        b = self._bucket(now)
        b.bytes_in += size
        b.tier1_ops += 1

    def record_get(self, size: int, now: float) -> None:
        b = self._bucket(now)
        b.bytes_out += size
        b.tier2_ops += 1

    def record_list(self, now: float) -> None:
        self._bucket(now).tier1_ops += 1

    def record_create(self, now: float) -> None:
        self._bucket(now).tier1_ops += 1

    def record_remove(self, now: float) -> None:
        # "Get and others": deletes fall in the cheap transaction class.
        self._bucket(now).tier2_ops += 1

    # --------------------------------------------------------------- queries
    def months(self) -> list[int]:
        return sorted(self._months)

    def month_usage(self, month: int) -> MonthUsage:
        """Usage for one month (empty months return a zero record)."""
        return self._months.get(month, MonthUsage())

    def total_usage(self) -> MonthUsage:
        total = MonthUsage()
        for bucket in self._months.values():
            total = total.merge(bucket)
        return total
