"""Typed error hierarchy for the simulated cloud layer.

Schemes distinguish *unavailability* (an outage — triggers degraded-read /
write-log paths) from *semantic* errors (missing key — a client bug or a
consistency hole), so the two never share a class.
"""

from __future__ import annotations

__all__ = [
    "CloudError",
    "NoSuchContainer",
    "NoSuchObject",
    "ContainerExists",
    "ProviderUnavailable",
    "TransientProviderError",
    "CircuitOpenError",
]


class CloudError(Exception):
    """Base class for all simulated-cloud failures."""


class NoSuchContainer(CloudError):
    """The referenced container does not exist (HTTP 404 on the container)."""

    def __init__(self, container: str) -> None:
        super().__init__(f"no such container: {container!r}")
        self.container = container


class NoSuchObject(CloudError):
    """The referenced object key does not exist (HTTP 404 on the object)."""

    def __init__(self, container: str, key: str) -> None:
        super().__init__(f"no such object: {container!r}/{key!r}")
        self.container = container
        self.key = key


class ContainerExists(CloudError):
    """Create() on a container that already exists (HTTP 409)."""

    def __init__(self, container: str) -> None:
        super().__init__(f"container already exists: {container!r}")
        self.container = container


class ProviderUnavailable(CloudError):
    """The provider is inside an outage window (HTTP 503).

    Carries the provider name so recovery logic can key its write logs.
    """

    def __init__(self, provider: str, at: float) -> None:
        super().__init__(f"provider {provider!r} unavailable at t={at:.3f}s")
        self.provider = provider
        self.at = at


class CircuitOpenError(ProviderUnavailable):
    """The client's circuit breaker for this provider is open.

    Client-side fail-fast: no request leaves the machine, so unlike a real
    :class:`ProviderUnavailable` it costs no wire round trip.  Subclasses it
    because every consumer must treat the two identically (skip the
    provider, write-log the mutation).
    """

    def __init__(self, provider: str, at: float) -> None:
        CloudError.__init__(
            self, f"circuit open for provider {provider!r} at t={at:.3f}s"
        )
        self.provider = provider
        self.at = at


class TransientProviderError(CloudError):
    """One request failed although the provider is up (HTTP 500/throttle).

    Real cloud APIs fail a small fraction of individual requests even in
    steady state; clients retry.  Distinct from :class:`ProviderUnavailable`
    so retry logic and outage logic never get confused.
    """

    def __init__(self, provider: str, at: float) -> None:
        super().__init__(
            f"transient request failure at provider {provider!r}, t={at:.3f}s"
        )
        self.provider = provider
        self.at = at
