"""GCS-API: the paper's general cloud storage middleware.

Section III-D: *"we have implemented a middleware of general cloud storage
API, short for GCS-API.  The GCS-API middleware hides the complexity of the
cloud storage providers at the system level ... it is easy to add new cloud
storage providers to the HyRD system."*

:class:`GcsApi` is that registry: a uniform five-function interface keyed by
provider name, plus the probe hook the Cost & Performance Evaluator uses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cloud.objectstore import StoredObject
from repro.cloud.provider import SimulatedProvider

__all__ = ["GcsApi"]


class GcsApi:
    """Uniform dispatch over a set of registered providers."""

    def __init__(self, providers: Iterable[SimulatedProvider] = ()) -> None:
        self._providers: dict[str, SimulatedProvider] = {}
        for p in providers:
            self.register(p)

    # -------------------------------------------------------------- registry
    def register(self, provider: SimulatedProvider) -> None:
        """Add a provider; names must be unique."""
        if provider.name in self._providers:
            raise ValueError(f"provider {provider.name!r} already registered")
        self._providers[provider.name] = provider

    def unregister(self, name: str) -> SimulatedProvider:
        """Remove and return a provider (e.g. after a vendor switch)."""
        try:
            return self._providers.pop(name)
        except KeyError:
            raise KeyError(f"no provider named {name!r}") from None

    def provider(self, name: str) -> SimulatedProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise KeyError(f"no provider named {name!r}") from None

    def names(self) -> list[str]:
        """Registered provider names, in registration order."""
        return list(self._providers)

    def providers(self) -> list[SimulatedProvider]:
        return list(self._providers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    # --------------------------------------------------- uniform 5-function API
    def create(self, name: str, container: str, *, exist_ok: bool = False) -> None:
        self.provider(name).create(container, exist_ok=exist_ok)

    def list(self, name: str, container: str) -> list[str]:
        return self.provider(name).list(container)

    def get(self, name: str, container: str, key: str) -> bytes:
        return self.provider(name).get(container, key)

    def put(self, name: str, container: str, key: str, data: bytes) -> StoredObject:
        return self.provider(name).put(container, key, data)

    def remove(self, name: str, container: str, key: str) -> None:
        self.provider(name).remove(container, key)

    # ------------------------------------------------------------ evaluation
    def available_names(self) -> list[str]:
        """Providers currently outside any outage window."""
        return [p.name for p in self._providers.values() if p.is_available()]
