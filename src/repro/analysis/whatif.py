"""What-if analysis: how placement and cost react to price drift.

§VI's second future-work direction and §II-A's pricing worry in one
experiment: cloud prices change (the paper's Table II is a dated snapshot by
construction — "as of September, 10th 2014"), so a hybrid scheme is only as
good as its ability to re-derive the performance/cost classification.

:func:`run_price_sensitivity` sweeps one provider's storage price across a
multiplier range, rebuilds the fleet with the modified plan, and reruns the
cost simulation for HyRD and RACS.  HyRD's Evaluator reclassifies at each
point (the provider drops out of the cost-oriented set when it stops being
cheap), while RACS stripes obliviously — so HyRD's bill must degrade more
gracefully.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cloud.provider import SimulatedProvider, make_table2_cloud_of_clouds
from repro.cost.accounting import bill_for_month
from repro.schemes import HyrdScheme, RacsScheme
from repro.sim.clock import SECONDS_PER_MONTH, SimClock
from repro.sim.rng import make_rng
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATraceConfig, synthesize_ia_trace
from repro.workloads.trace import TraceReplayer

__all__ = ["PricePoint", "run_price_sensitivity"]


@dataclass(frozen=True)
class PricePoint:
    """One sweep point of the storage-price sensitivity analysis."""

    multiplier: float
    storage_price: float  # the swept provider's $/GB-month at this point
    hyrd_cost: float
    racs_cost: float
    provider_in_hyrd_cost_set: bool

    @property
    def hyrd_advantage(self) -> float:
        """Fractional saving of HyRD over RACS at this price point."""
        if self.racs_cost == 0:
            return 0.0
        return 1.0 - self.hyrd_cost / self.racs_cost


def _repriced_fleet(
    clock: SimClock, provider: str, multiplier: float
) -> dict[str, SimulatedProvider]:
    fleet = make_table2_cloud_of_clouds(clock)
    target = fleet[provider]
    target.pricing = dataclasses.replace(
        target.pricing,
        storage_gb_month=target.pricing.storage_gb_month * multiplier,
    )
    return fleet


def run_price_sensitivity(
    provider: str = "aliyun",
    multipliers: list[float] | None = None,
    seed: int = 0,
    months: int = 6,
) -> list[PricePoint]:
    """Sweep ``provider``'s storage price and compare HyRD vs RACS bills.

    Aliyun is the interesting subject: at 1x it anchors both HyRD classes
    (fast *and* cheap); multiplied enough, the Evaluator must stop calling
    it cost-oriented and shift the stripe to the remaining cheap providers.
    """
    multipliers = multipliers or [0.5, 1.0, 2.0, 4.0, 8.0]
    trace = synthesize_ia_trace(
        IATraceConfig(
            months=months,
            writes_per_month=8,
            sizes=MediaLibraryFileSizes(scale=0.1),
        ),
        make_rng(seed, "whatif"),
    )
    by_month: dict[int, list] = {}
    for op in trace.ops:
        by_month.setdefault(op.month, []).append(op)

    points: list[PricePoint] = []
    for multiplier in multipliers:
        costs: dict[str, float] = {}
        in_cost_set = False
        for scheme_name in ("hyrd", "racs"):
            clock = SimClock()
            fleet = _repriced_fleet(clock, provider, multiplier)
            if scheme_name == "hyrd":
                scheme = HyrdScheme(list(fleet.values()), clock)
                in_cost_set = provider in scheme.evaluator.cost_oriented()
            else:
                scheme = RacsScheme(list(fleet.values()), clock)
            replayer = TraceReplayer(seed=seed, verify=False)
            for month in range(months):
                start = month * SECONDS_PER_MONTH
                if clock.now < start:
                    clock.advance_to(start)
                replayer.run(scheme, by_month.get(month, []))
            end = months * SECONDS_PER_MONTH
            if clock.now < end:
                clock.advance_to(end)
            total = 0.0
            for p in fleet.values():
                p.meter.accrue(clock.now)
                if p.name not in scheme.provider_names:
                    continue
                total += sum(
                    bill_for_month(p.meter, p.pricing, m).total
                    for m in range(months)
                )
            costs[scheme_name] = total
        base_price = make_table2_cloud_of_clouds(SimClock())[provider].pricing
        points.append(
            PricePoint(
                multiplier=multiplier,
                storage_price=base_price.storage_gb_month * multiplier,
                hyrd_cost=costs["hyrd"],
                racs_cost=costs["racs"],
                provider_in_hyrd_cost_set=in_cost_set,
            )
        )
    return points
