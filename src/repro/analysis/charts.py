"""ASCII chart rendering — figure-shaped output for a terminal.

The paper's figures are bar charts and line plots; benches and the CLI
render their data with these primitives so `benchmarks/results/` contains
something figure-like, not just tables.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "line_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    rem = int((cells - full) * 8)
    return _FULL * full + (_PART[rem] if rem and full < width else "")


def bar_chart(
    items: Mapping[str, float] | Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 40,
    floatfmt: str = ".3f",
) -> str:
    """Horizontal bar chart: one labelled bar per item."""
    pairs = list(items.items()) if isinstance(items, Mapping) else list(items)
    if not pairs:
        raise ValueError("bar_chart needs at least one item")
    if any(v < 0 for _, v in pairs):
        raise ValueError("bar_chart values must be >= 0")
    vmax = max(v for _, v in pairs)
    label_w = max(len(str(k)) for k, _ in pairs)
    lines = [title] if title else []
    for label, value in pairs:
        lines.append(
            f"{str(label).rjust(label_w)} | "
            f"{_bar(value, vmax, width).ljust(width)} {format(value, floatfmt)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[tuple[str, Mapping[str, float]]],
    title: str | None = None,
    width: int = 40,
    floatfmt: str = ".3f",
) -> str:
    """Bars organised in labelled groups (e.g. normal vs outage states)."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    vmax = max(
        (v for _, series in groups for v in series.values()), default=0.0
    )
    all_labels = [str(k) for _, series in groups for k in series]
    label_w = max(len(s) for s in all_labels) if all_labels else 1
    lines = [title] if title else []
    for group_name, series in groups:
        lines.append(f"{group_name}:")
        for label, value in series.items():
            lines.append(
                f"  {str(label).rjust(label_w)} | "
                f"{_bar(value, vmax, width).ljust(width)} {format(value, floatfmt)}"
            )
    return "\n".join(lines)


def line_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    height: int = 12,
    floatfmt: str = ".2f",
) -> str:
    """Multi-series line plot on a character grid (one column per x value).

    Each series is drawn with its own marker; a legend maps markers to
    series names.  Good enough to show Figure 4's cumulative curves or
    Figure 5's latency-vs-size trends in a results file.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    if not series:
        raise ValueError("line_chart needs at least one series")
    n = len(x_labels)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {n}"
            )
    markers = "ox+*#@%&"
    vmax = max(max(ys) for ys in series.values())
    vmin = min(min(ys) for ys in series.values())
    span = (vmax - vmin) or 1.0

    grid = [[" "] * n for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xi, y in enumerate(ys):
            row = height - 1 - int(round((y - vmin) / span * (height - 1)))
            grid[row][xi] = marker

    lines = [title] if title else []
    lines.append(f"{format(vmax, floatfmt).rjust(10)} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{format(vmin, floatfmt).rjust(10)} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "".join(label[0] if label else " " for label in x_labels))
    lines.append(
        "legend: "
        + "  ".join(
            f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
        )
    )
    return "\n".join(lines)
