"""Vendor lock-in: the switching-cost analysis of §II-A, quantified.

§II-A: *"moving from one provider to another one may be very expensive
because the switching cost is proportional to the amount of data that has
been stored in the original provider."*  The Cloud-of-Clouds argument is
that redundancy makes abandoning any one provider cheap — the data needed
to re-establish redundancy elsewhere can come from the *other* providers,
or (with replication) costs nothing at all until a new replica is wanted.

:func:`switching_cost_report` computes, for every scheme, the dollar cost of
walking away from each provider it uses: egress charges for whatever must be
read to rebuild the departed provider's share, assuming data-in is free at
the destination (true for the whole Table II fleet).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import GB, PRICE_PLANS

__all__ = ["SwitchingCost", "switching_cost_report", "single_cloud_exit_cost"]


@dataclass(frozen=True)
class SwitchingCost:
    """Cost of abandoning one provider under one scheme."""

    scheme: str
    departed: str
    bytes_read: float  # bytes fetched from surviving providers
    read_from: tuple[str, ...]
    egress_cost: float  # dollars at Table II data-out prices

    @property
    def cost_per_logical_gb(self) -> float:
        return self.egress_cost  # report is normalised to 1 logical GB


def _egress(provider: str, nbytes: float) -> float:
    return PRICE_PLANS[provider].data_out_cost(nbytes)


def single_cloud_exit_cost(provider: str, logical_bytes: float = GB) -> float:
    """Leaving a single cloud: every byte pays that provider's egress."""
    return _egress(provider, logical_bytes)


def switching_cost_report(logical_bytes: float = GB) -> list[SwitchingCost]:
    """Per-scheme, per-provider switching costs for one logical GB.

    Mechanics per scheme (destination ingress is free everywhere):

    - single cloud: read 100 % of the data out of the departed provider;
    - DuraCloud (2x replication on S3+Azure): the surviving replica
      re-seeds the new provider — read 100 % from the *survivor*;
    - RACS (RAID5 4-wide, k=3): rebuild the departed fragment from the
      three survivors — read k fragments = 100 % of logical bytes, spread
      over the survivors (1/3 each);
    - HyRD: small class (replicas on Aliyun+Azure) reads from the survivor;
      large class (RAID5 3-wide on Rackspace/Aliyun/S3, k=2) reads 2
      fragments (= logical size of the large bytes) from the survivors.
      Weighted 20 % small / 80 % large by capacity, per §II-B.
    """
    out: list[SwitchingCost] = []

    # Single clouds — the lock-in baseline.
    for name in ("amazon_s3", "azure", "aliyun", "rackspace"):
        out.append(
            SwitchingCost(
                scheme=f"single-{name}",
                departed=name,
                bytes_read=logical_bytes,
                read_from=(name,),
                egress_cost=_egress(name, logical_bytes),
            )
        )

    # DuraCloud: survivor serves the re-seed.
    for departed, survivor in (("amazon_s3", "azure"), ("azure", "amazon_s3")):
        out.append(
            SwitchingCost(
                scheme="duracloud",
                departed=departed,
                bytes_read=logical_bytes,
                read_from=(survivor,),
                egress_cost=_egress(survivor, logical_bytes),
            )
        )

    # RACS: k = 3 fragments of size/3 each from the three survivors.
    racs_fleet = ("amazon_s3", "azure", "aliyun", "rackspace")
    for departed in racs_fleet:
        survivors = tuple(p for p in racs_fleet if p != departed)
        per_survivor = logical_bytes / 3
        cost = sum(_egress(s, per_survivor) for s in survivors)
        out.append(
            SwitchingCost(
                scheme="racs",
                departed=departed,
                bytes_read=logical_bytes,
                read_from=survivors,
                egress_cost=cost,
            )
        )

    # HyRD: class-weighted (20% small bytes replicated, 80% large striped).
    small_bytes = 0.2 * logical_bytes
    large_bytes = 0.8 * logical_bytes
    small_set = ("aliyun", "azure")
    large_set = ("rackspace", "aliyun", "amazon_s3")
    for departed in ("amazon_s3", "azure", "aliyun", "rackspace"):
        bytes_read = 0.0
        cost = 0.0
        sources: set[str] = set()
        if departed in small_set:
            survivor = next(p for p in small_set if p != departed)
            bytes_read += small_bytes
            cost += _egress(survivor, small_bytes)
            sources.add(survivor)
        if departed in large_set:
            survivors = tuple(p for p in large_set if p != departed)
            per_survivor = large_bytes / 2  # k = 2 fragments, each size/2
            bytes_read += large_bytes
            for s in survivors:
                cost += _egress(s, per_survivor)
                sources.add(s)
        out.append(
            SwitchingCost(
                scheme="hyrd",
                departed=departed,
                bytes_read=bytes_read,
                read_from=tuple(sorted(sources)),
                egress_cost=cost,
            )
        )
    return out
