"""Ablations over the design choices DESIGN.md calls out.

- the file-size threshold (§III-C: "how to distinguish a large file from a
  small file is nontrivial ... we have conducted sensitivity experiments");
- the replication level (§III-C: resiliency vs cost vs performance, default 2);
- erasure-coded repair traffic (NCCloud's FMSR vs decode-based repair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.schemes import HyrdScheme, NCCloudScheme, RacsScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceReplayer

__all__ = [
    "ThresholdPoint",
    "ReplicationPoint",
    "run_threshold_sweep",
    "run_replication_sweep",
    "run_repair_comparison",
]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class ThresholdPoint:
    """One point of the file-size-threshold sensitivity sweep."""

    threshold: int
    mean_latency: float
    space_overhead: float
    small_fraction_bytes: float


@dataclass(frozen=True)
class ReplicationPoint:
    """One point of the replication-level sweep."""

    level: int
    mean_latency: float
    space_overhead: float
    survives_outages: int  # replicas - 1


def _postmark_for_ablation() -> PostMarkConfig:
    return PostMarkConfig(file_pool=30, transactions=120, size_lo=1 * KB, size_hi=32 * MB)


def _run_hyrd(config: HyRDConfig, seed: int, pm: PostMarkConfig) -> HyrdScheme:
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(list(providers.values()), clock, config=config)
    ops = generate_postmark(pm, make_rng(seed, "ablation-postmark"))
    TraceReplayer(seed=seed).run(scheme, ops)
    return scheme


def _threshold_cell(task: tuple) -> ThresholdPoint:
    """One threshold-sweep point (independent cell, picklable)."""
    threshold, seed, pm = task
    scheme = _run_hyrd(HyRDConfig(size_threshold=threshold), seed, pm)
    stats = scheme.monitor.stats
    return ThresholdPoint(
        threshold=threshold,
        mean_latency=scheme.collector.summary().mean,
        space_overhead=scheme.space_overhead(),
        small_fraction_bytes=stats.fraction_small_bytes(),
    )


def run_threshold_sweep(
    thresholds: list[int] | None = None,
    seed: int = 0,
    pm: PostMarkConfig | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[ThresholdPoint]:
    """Sweep the small/large threshold; the paper lands on 1 MB.

    Small thresholds push everything into the erasure stripe (RACS-like
    latency for small files); huge thresholds replicate multi-megabyte files
    (DuraCloud-like write cost and 2x space).  The knee sits near the point
    where transfer time overtakes RTT — Figure 5's 1 MB.  Each threshold is
    an independent seeded run, so ``parallel=True`` fans the points out over
    worker processes (ordered merge, identical results).
    """
    from repro.analysis.experiments import map_cells

    thresholds = thresholds or [64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]
    pm = pm or _postmark_for_ablation()
    tasks = [(threshold, seed, pm) for threshold in thresholds]
    return map_cells(_threshold_cell, tasks, parallel, max_workers)


def run_replication_sweep(
    levels: list[int] | None = None,
    seed: int = 0,
    pm: PostMarkConfig | None = None,
) -> list[ReplicationPoint]:
    """Sweep the replication level of small files/metadata (paper default 2)."""
    levels = levels or [1, 2, 3, 4]
    pm = pm or _postmark_for_ablation()
    points = []
    for level in levels:
        scheme = _run_hyrd(HyRDConfig(replication_level=level), seed, pm)
        points.append(
            ReplicationPoint(
                level=level,
                mean_latency=scheme.collector.summary().mean,
                space_overhead=scheme.space_overhead(),
                survives_outages=level - 1,
            )
        )
    return points


def run_repair_comparison(seed: int = 0, objects: int = 12, size: int = 4 * MB) -> dict[str, float]:
    """Repair traffic after a permanent provider failure: FMSR vs RAID5.

    NCCloud's functional repair downloads (n-1) chunks per object;
    decode-based repair (RACS) downloads k full fragments.  Returns measured
    bytes for both, plus the ratio (paper-cited FMSR advantage:
    (n-1)/(k*(n-k)) = 0.75 for n=4, k=2).
    """
    rng = make_rng(seed, "repair-data")

    # NCCloud functional repair.
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    nc = NCCloudScheme(list(providers.values()), clock)
    for i in range(objects):
        nc.put(f"/repair/obj{i:03d}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    stats = nc.repair_provider("rackspace")

    # RACS decode-based repair: rebuilding one provider's fragments requires
    # fetching k fragments per object.
    clock2 = SimClock()
    providers2 = make_table2_cloud_of_clouds(clock2)
    racs = RacsScheme(list(providers2.values()), clock2)
    rng2 = make_rng(seed, "repair-data")
    for i in range(objects):
        racs.put(f"/repair/obj{i:03d}", rng2.integers(0, 256, size, dtype=np.uint8).tobytes())
    racs_bytes = 0
    for path in racs.namespace.paths():
        entry = racs.namespace.get(path)
        racs_bytes += racs.codec.fragment_size(entry.size) * racs.codec.k

    return {
        "objects": float(stats["objects"]),
        "fmsr_repair_bytes": float(stats["bytes_downloaded"]),
        "fmsr_conventional_bytes": float(stats["conventional_bytes"]),
        "racs_repair_bytes": float(racs_bytes),
        "fmsr_ratio": stats["bytes_downloaded"] / max(stats["conventional_bytes"], 1),
    }


def run_codec_ablation(seed: int = 0) -> dict[str, dict[str, float]]:
    """Large-file code choice: RAID5 (paper default) vs RS(k,2) vs FMSR.

    DESIGN.md's ablation hook #4: the codec registry lets HyRD stripe large
    files with any registered code.  RAID5 tolerates one outage at 1.5x
    space (3 cost providers); RS(1,2) and FMSR(3,1) buy double-fault
    tolerance at higher space/latency.  Returns measured latency, space and
    fault tolerance per configuration.
    """
    pm = PostMarkConfig(
        file_pool=12,
        transactions=60,
        size_lo=2 * MB,
        size_hi=16 * MB,
        op_mix=(("get", 0.5), ("put", 0.3), ("stat", 0.2)),
    )
    configs = {
        "raid5(2+1)": HyRDConfig(erasure_codec="raid5"),
        "rs(1+2)": HyRDConfig(erasure_codec="rs", erasure_k=1),
        "fmsr(3,1)": HyRDConfig(erasure_codec="fmsr", erasure_k=1),
    }
    out: dict[str, dict[str, float]] = {}
    for label, config in configs.items():
        scheme = _run_hyrd(config, seed, pm)
        codec = scheme.dispatcher.erasure_codec()
        out[label] = {
            "mean_latency": scheme.collector.summary().mean,
            "space_overhead": scheme.space_overhead(),
            "fault_tolerance": float(codec.fault_tolerance),
        }
    return out


def run_degraded_read_comparison(seed: int = 0) -> dict[str, dict[str, float]]:
    """Degraded-read penalty during an outage, per scheme.

    Whole-object reads move the same byte count degraded or not (the byte
    *amplification* the Facebook studies [26][27] describe belongs to repair
    — see :func:`run_repair_comparison`).  What degrades is the serving
    path: RACS must fan out to every survivor, including the slowest one it
    normally never reads, while replication just falls back to one surviving
    copy.  Measured: mean read latency normal vs degraded, latency
    inflation, and providers contacted per read.
    """
    pm = PostMarkConfig(
        file_pool=14,
        transactions=60,
        size_lo=4 * KB,
        size_hi=8 * MB,
        op_mix=(("get", 1.0),),
    )
    ops = generate_postmark(pm, make_rng(seed, "degraded-traffic"))
    setup, reads = ops[: pm.file_pool], ops[pm.file_pool :]

    from repro.cloud.outage import OutageWindow
    from repro.schemes import DuraCloudScheme

    builders = {
        "duracloud": lambda p, c: DuraCloudScheme([p["amazon_s3"], p["azure"]], c),
        "racs": lambda p, c: RacsScheme(list(p.values()), c),
        "hyrd": lambda p, c: HyrdScheme(list(p.values()), c),
    }
    out: dict[str, dict[str, float]] = {}
    for name, builder in builders.items():
        def measure(outage: bool) -> tuple[float, float, float]:
            clock = SimClock()
            providers = make_table2_cloud_of_clouds(clock)
            scheme = builder(providers, clock)
            replayer = TraceReplayer(seed=seed)
            replayer.run(scheme, setup)
            if outage:
                providers["azure"].outages.add(
                    OutageWindow(clock.now, float("inf"))
                )
            collector = replayer.run(scheme, reads)
            gets = [r for r in collector.reports if r.op == "get"]
            mean_lat = float(np.mean([r.elapsed for r in gets]))
            fanout = float(np.mean([len(r.providers) for r in gets]))
            return mean_lat, fanout, collector.degraded_fraction()

        normal_lat, normal_fanout, _ = measure(outage=False)
        deg_lat, deg_fanout, deg_frac = measure(outage=True)
        out[name] = {
            "normal_latency": normal_lat,
            "degraded_latency": deg_lat,
            "inflation": deg_lat / normal_lat if normal_lat else 0.0,
            "normal_fanout": normal_fanout,
            "degraded_fanout": deg_fanout,
            "degraded_fraction": deg_frac,
        }
    return out


def run_read_policy_ablation(seed: int = 0) -> dict[str, dict[str, float]]:
    """Hot-promotion on/off: latency and read placement effects (Figure 2)."""
    pm = PostMarkConfig(
        file_pool=12,
        transactions=90,
        size_lo=2 * MB,
        size_hi=32 * MB,
        op_mix=(("get", 0.8), ("stat", 0.2)),
    )
    out: dict[str, dict[str, float]] = {}
    for label, threshold in (("promotion_on", 3), ("promotion_off", 0)):
        scheme = _run_hyrd(HyRDConfig(hot_file_threshold=threshold), seed, pm)
        gets = scheme.collector.latencies("get")
        out[label] = {
            "mean_get_latency": float(np.mean(gets)) if gets else 0.0,
            "hot_copies": float(len(scheme.hot_copies())),
            "space_overhead": scheme.space_overhead(),
        }
    return out
