"""Minimal fixed-width ASCII table rendering shared by benches and examples."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, floatfmt: str = ".3f") -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render a fixed-width table with a separator under the header."""
    cells = [[format_cell(v, floatfmt) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in cells)) if cells else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
