"""Experiment runners and table rendering for every paper table/figure."""

from repro.analysis.tables import render_table
from repro.analysis.experiments import (
    Fig4Results,
    Fig5Results,
    Fig6Results,
    default_ia_config,
    default_postmark_config,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
)

__all__ = [
    "Fig4Results",
    "Fig5Results",
    "Fig6Results",
    "default_ia_config",
    "default_postmark_config",
    "render_table",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_table1",
    "run_table2",
]
