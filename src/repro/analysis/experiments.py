"""Experiment runners — one per table/figure of the paper.

Each ``run_*`` function is deterministic given its seed, returns structured
results, and is wrapped by a benchmark in ``benchmarks/`` that prints the
same rows/series the paper reports and asserts the expected *shape*
(orderings and rough factors, not absolute numbers).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.latency import ClientLink
from repro.cloud.outage import OutageWindow
from repro.cloud.pricing import CATEGORIES, PRICE_PLANS, ProviderCategory
from repro.cloud.provider import (
    TABLE2_LATENCY,
    SimulatedProvider,
    make_table2_cloud_of_clouds,
)
from repro.core.config import HyRDConfig
from repro.cost.simulator import CostRunResult, CostSimulator
from repro.metrics.collector import LatencyCollector
from repro.schemes import (
    DepSkyCAScheme,
    DepSkyScheme,
    DuraCloudScheme,
    HyrdScheme,
    NCCloudScheme,
    RacsScheme,
    SingleCloudScheme,
    Scheme,
)
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng
from repro.workloads.filesizes import MediaLibraryFileSizes
from repro.workloads.ia_trace import IATrace, IATraceConfig, synthesize_ia_trace
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceOp, TraceReplayer

__all__ = [
    "SINGLE_PROVIDERS",
    "DURACLOUD_PAIR",
    "Fig4Results",
    "Fig5Results",
    "Fig6Results",
    "coc_factories",
    "default_ia_config",
    "default_postmark_config",
    "map_cells",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_recovery_drill",
    "run_table1",
    "run_table2",
]

KB = 1024
MB = 1024 * 1024

SINGLE_PROVIDERS = ("amazon_s3", "azure", "aliyun", "rackspace")

#: DuraCloud's replica pair: Amazon S3 + Windows Azure, the two US majors
#: (the paper takes Azure offline to trigger DuraCloud's degraded state, so
#: Azure must be in the pair).  The pair also tops the Figure 4 cost chart:
#: $0.033 + $0.157 = $0.19 per logical GB-month of storage.
DURACLOUD_PAIR = ("amazon_s3", "azure")

SchemeFactory = Callable[[dict[str, SimulatedProvider], SimClock], Scheme]


def default_postmark_config() -> PostMarkConfig:
    """Figure 6's PostMark setup: 1 KB - 100 MB files, mixed transactions."""
    return PostMarkConfig(file_pool=40, transactions=160, size_lo=1 * KB, size_hi=100 * MB)


def default_ia_config() -> IATraceConfig:
    """Figure 3/4's trace, scaled 1:8 in object size (ratios preserved).

    ``scale_factor`` re-inflates the printed bills to the magnitude of the
    real Internet Archive volume (the paper's Fig. 3 shows ~10 TB/month
    against our ~45 MB/month simulated stream).
    """
    return IATraceConfig(
        months=12,
        writes_per_month=12,
        sizes=MediaLibraryFileSizes(scale=0.125),
        scale_factor=1.0,
    )


def coc_factories(extended: bool = False, hyrd_config: HyRDConfig | None = None) -> dict[str, SchemeFactory]:
    """Factories for the Cloud-of-Clouds schemes of Figures 4 and 6."""

    def duracloud(providers: dict[str, SimulatedProvider], clock: SimClock) -> Scheme:
        return DuraCloudScheme([providers[n] for n in DURACLOUD_PAIR], clock)

    def racs(providers: dict[str, SimulatedProvider], clock: SimClock) -> Scheme:
        return RacsScheme(list(providers.values()), clock)

    def hyrd(providers: dict[str, SimulatedProvider], clock: SimClock) -> Scheme:
        return HyrdScheme(list(providers.values()), clock, config=hyrd_config)

    factories: dict[str, SchemeFactory] = {
        "duracloud": duracloud,
        "racs": racs,
        "hyrd": hyrd,
    }
    if extended:
        factories["depsky"] = lambda p, c: DepSkyScheme(list(p.values()), c)
        factories["depsky-ca"] = lambda p, c: DepSkyCAScheme(list(p.values()), c)
        factories["nccloud"] = lambda p, c: NCCloudScheme(list(p.values()), c)
    return factories


def single_factory(name: str) -> SchemeFactory:
    return lambda providers, clock: SingleCloudScheme(providers[name], clock)


def _factory_by_name(name: str, extended: bool = False) -> SchemeFactory:
    """Rebuild a scheme factory from its sweep name.

    Factories are closures and do not pickle, so parallel workers receive
    the *name* of the cell's scheme and resolve it locally.
    """
    if name in SINGLE_PROVIDERS:
        return single_factory(name)
    return coc_factories(extended=extended)[name]


# ------------------------------------------------------- parallel sweep cells
def map_cells(
    fn: Callable,
    tasks: Iterable,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list:
    """Run independent sweep cells serially or across worker processes.

    Every cell builds its own clock, fleet, and RNG streams from its task
    tuple, so cells share no state and their results do not depend on
    execution order.  ``ProcessPoolExecutor.map`` preserves input order,
    which makes the parallel merge *byte-identical* to the serial loop —
    enforced by ``tests/test_analysis_parallel.py``.  ``fn`` must be a
    module-level function and every task picklable.
    """
    tasks = list(tasks)
    if not parallel or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    from concurrent.futures import ProcessPoolExecutor

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(tasks)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks))


# --------------------------------------------------------------------- Fig 3
def run_fig3(seed: int = 0, config: IATraceConfig | None = None) -> IATrace:
    """Synthesize the IA trace and return it with its monthly statistics."""
    config = config or default_ia_config()
    return synthesize_ia_trace(config, make_rng(seed, "ia-trace"))


# --------------------------------------------------------------------- Fig 4
@dataclass
class Fig4Results:
    """Cost simulation output for every Figure 4 scheme."""

    results: dict[str, CostRunResult] = field(default_factory=dict)

    def cumulative(self, scheme: str) -> float:
        return self.results[scheme].grand_total

    def savings_vs(self, scheme: str, baseline: str) -> float:
        """Fractional saving of ``scheme`` against ``baseline`` (positive = cheaper)."""
        base = self.cumulative(baseline)
        if base == 0:
            return 0.0
        return 1.0 - self.cumulative(scheme) / base


def run_fig4(
    seed: int = 0,
    config: IATraceConfig | None = None,
    extended: bool = False,
) -> Fig4Results:
    """Monthly + cumulative costs for the seven Figure 4 configurations."""
    trace = run_fig3(seed, config)
    sim = CostSimulator(trace, seed=seed)
    out = Fig4Results()
    for name in SINGLE_PROVIDERS:
        out.results[name] = sim.run(name, single_factory(name))
    for name, factory in coc_factories(extended=extended).items():
        out.results[name] = sim.run(name, factory)
    return out


# --------------------------------------------------------------------- Fig 5
@dataclass
class Fig5Results:
    """Read/write latency vs request size per single-cloud provider."""

    sizes: list[int]
    read: dict[str, list[float]]
    write: dict[str, list[float]]

    def knee_ratio(self, provider: str, lo: int = 1 * MB, hi: int = 4 * MB) -> float:
        """Latency growth from ``lo`` to ``hi`` (the 1 MB threshold evidence)."""
        r = self.read[provider]
        return r[self.sizes.index(hi)] / r[self.sizes.index(lo)]


def _fig5_cell(task: tuple) -> tuple[list[float], list[float]]:
    """One provider's latency-vs-size sweep (independent cell, picklable)."""
    name, seed, sizes, repeats, link = task
    latency = TABLE2_LATENCY[name]
    rng = make_rng(seed, "fig5", name)
    read: list[float] = []
    write: list[float] = []
    for size in sizes:
        r_samples = [
            link.elapsed(downloads=[latency.download_spec(size, rng)])
            for _ in range(repeats)
        ]
        w_samples = [
            link.elapsed(uploads=[latency.upload_spec(size, rng)])
            for _ in range(repeats)
        ]
        read.append(float(np.mean(r_samples)))
        write.append(float(np.mean(w_samples)))
    return read, write


def run_fig5(
    seed: int = 0,
    sizes: list[int] | None = None,
    repeats: int = 3,
    link: ClientLink | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> Fig5Results:
    """Raw request latency per provider as a function of request size.

    Measures what the paper measures: a single Get/Put of each size against
    each provider (mean of ``repeats`` runs with jitter), no metadata
    machinery in the way.  Each provider draws jitter from its own RNG
    stream (``make_rng(seed, "fig5", name)``), so the per-provider cells are
    order-independent and ``parallel=True`` farms them out to worker
    processes with results identical to the serial loop.
    """
    sizes = sizes or [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB]
    link = link or ClientLink()
    tasks = [(name, seed, tuple(sizes), repeats, link) for name in SINGLE_PROVIDERS]
    cells = map_cells(_fig5_cell, tasks, parallel, max_workers)
    read = {name: cell[0] for name, cell in zip(SINGLE_PROVIDERS, cells)}
    write = {name: cell[1] for name, cell in zip(SINGLE_PROVIDERS, cells)}
    return Fig5Results(sizes=list(sizes), read=read, write=write)


# --------------------------------------------------------------------- Fig 6
@dataclass
class Fig6Results:
    """Mean access latency per scheme, normal state and outage state."""

    normal: dict[str, float] = field(default_factory=dict)
    outage: dict[str, float] = field(default_factory=dict)
    degraded_fraction: dict[str, float] = field(default_factory=dict)
    baseline: str = "amazon_s3"

    def normalized(self, state: str = "normal") -> dict[str, float]:
        """Latencies normalised to single-cloud Amazon S3's normal state."""
        base = self.normal[self.baseline]
        series = self.normal if state == "normal" else self.outage
        return {k: v / base for k, v in series.items()}

    def improvement(self, scheme: str, other: str, state: str = "normal") -> float:
        """Fractional latency reduction of ``scheme`` vs ``other``."""
        series = self.normal if state == "normal" else self.outage
        return 1.0 - series[scheme] / series[other]


def _run_postmark_once(
    factory: SchemeFactory,
    setup_ops: list[TraceOp],
    txn_ops: list[TraceOp],
    seed: int,
    outage_provider: str | None,
) -> tuple[LatencyCollector, Scheme]:
    """One PostMark run; the outage (if any) begins after the setup phase,
    matching the paper's method of taking Azure offline *during* the
    benchmark rather than before the data exists."""
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = factory(providers, clock)
    replayer = TraceReplayer(seed=seed)
    replayer.run(scheme, setup_ops)
    if outage_provider is not None:
        providers[outage_provider].outages.add(OutageWindow(clock.now, float("inf")))
    collector = replayer.run(scheme, txn_ops)
    return collector, scheme


def _fig6_cell(task: tuple) -> tuple[float, float]:
    """One (scheme, state, rep) PostMark run (independent cell, picklable).

    Returns ``(mean access latency, degraded fraction)``.
    """
    name, extended, cell_seed, setup_ops, txn_ops, outage_provider = task
    factory = _factory_by_name(name, extended=extended)
    collector, _ = _run_postmark_once(
        factory, setup_ops, txn_ops, cell_seed, outage_provider
    )
    return _mean_access_latency(collector), collector.degraded_fraction()


def run_fig6(
    seed: int = 0,
    config: PostMarkConfig | None = None,
    outage_provider: str = "azure",
    extended: bool = False,
    repeats: int = 1,
    parallel: bool = False,
    max_workers: int | None = None,
) -> Fig6Results:
    """Access latency of every scheme, normal and single-outage states.

    Every (scheme, state, repetition) cell builds its own fleet and clock
    from the cell seed, so the sweep is embarrassingly parallel:
    ``parallel=True`` runs the cells in worker processes and the ordered
    merge reproduces the serial output exactly.
    """
    config = config or default_postmark_config()
    ops = generate_postmark(config, make_rng(seed, "postmark"))
    setup_ops, txn_ops = ops[: config.file_pool], ops[config.file_pool :]

    results = Fig6Results(baseline="amazon_s3")
    coc_names = list(coc_factories(extended=extended))
    all_names = list(SINGLE_PROVIDERS) + coc_names

    tasks = [
        (name, extended, seed + rep, setup_ops, txn_ops, None)
        for name in all_names
        for rep in range(repeats)
    ]
    # Outage state: only the Cloud-of-Clouds schemes survive a provider loss
    # (that is the point of the paper); singles are omitted like in Fig. 6.
    tasks += [
        (name, extended, seed + rep, setup_ops, txn_ops, outage_provider)
        for name in coc_names
        for rep in range(repeats)
    ]
    cells = iter(map_cells(_fig6_cell, tasks, parallel, max_workers))

    for name in all_names:
        normal_means = [next(cells)[0] for _ in range(repeats)]
        results.normal[name] = float(np.mean(normal_means))
    for name in coc_names:
        reps = [next(cells) for _ in range(repeats)]
        results.outage[name] = float(np.mean([mean for mean, _ in reps]))
        results.degraded_fraction[name] = max(frac for _, frac in reps)
    return results


def _mean_access_latency(collector: LatencyCollector) -> float:
    """Mean over user-visible accesses (heals/promotions run in background)."""
    samples = [
        r.elapsed for r in collector.reports if r.op not in ("heal", "promote")
    ]
    return float(np.mean(samples)) if samples else 0.0


# ------------------------------------------------------------------ recovery
def run_recovery_drill(
    seed: int = 0,
    config: PostMarkConfig | None = None,
    outage_provider: str = "azure",
) -> dict[str, object]:
    """§III-C's two-phase recovery, end to end, on HyRD.

    Phase 1: run transactions while a provider is out (degraded reads +
    write logging).  Phase 2: the provider returns; the consistency update
    replays the log.  Returns measured evidence for both phases.
    """
    config = config or PostMarkConfig(
        file_pool=20, transactions=80, size_lo=1 * KB, size_hi=8 * MB
    )
    ops = generate_postmark(config, make_rng(seed, "recovery-postmark"))
    setup_ops, txn_ops = ops[: config.file_pool], ops[config.file_pool :]

    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyrdScheme(list(providers.values()), clock)
    replayer = TraceReplayer(seed=seed)
    replayer.run(scheme, setup_ops)

    outage_start = clock.now
    window = OutageWindow(outage_start, outage_start + 6 * 3600.0)
    providers[outage_provider].outages.add(window)
    during = replayer.run(scheme, txn_ops)
    logged = len(scheme.pending_log(outage_provider))

    # Provider returns: jump past the window and run the consistency update.
    if clock.now < window.end:
        clock.advance_to(window.end)
    heal_reports = scheme.heal_returned()
    log_after = len(scheme.pending_log(outage_provider))

    # Verify: every file still reads back, with no degradation.
    post = replayer.run(
        scheme, [TraceOp("get", p) for p in scheme.namespace.paths()]
    )
    return {
        "scheme": scheme,
        "during_mean_latency": _mean_access_latency(during),
        "degraded_fraction": during.degraded_fraction(),
        "logged_writes": logged,
        "heal_reports": heal_reports,
        "log_after_heal": log_after,
        "post_mean_latency": _mean_access_latency(post),
        "post_degraded_fraction": post.degraded_fraction(),
    }


# -------------------------------------------------------------------- tables
def run_table2() -> list[list[object]]:
    """Table II rows: the price plans plus the category classification."""
    rows: list[list[object]] = []
    for name in SINGLE_PROVIDERS:
        plan = PRICE_PLANS[name]
        cat = CATEGORIES[name]
        label = {
            ProviderCategory.COST_ORIENTED: "Cost-oriented",
            ProviderCategory.PERFORMANCE_ORIENTED: "Performance-oriented",
            ProviderCategory.BOTH: "Both",
        }[cat]
        rows.append(
            [
                name,
                plan.storage_gb_month,
                plan.data_out_gb,
                plan.tier1_per_10k,
                plan.tier2_per_10k,
                label,
            ]
        )
    return rows


def _degraded_read_fanout(name: str, factory: SchemeFactory, seed: int) -> int:
    """How many providers one degraded read touches (recovery difficulty).

    Replication fetches the surviving copy from a single provider;
    erasure-coded schemes must contact k surviving providers and
    reconstruct — Table I's Easy/Hard distinction, measured.
    """
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = factory(providers, clock)
    replayer = TraceReplayer(seed=seed)
    replayer.run(scheme, [TraceOp("put", "/t/large.bin", size=4 * MB)])
    entry = scheme.namespace.get("/t/large.bin")
    victim = entry.providers[0]
    providers[victim].outages.add(OutageWindow(clock.now, clock.now + 60.0))
    _data, report = scheme.get("/t/large.bin")
    return len(report.providers)


def run_table1(
    fig4: Fig4Results | None = None,
    fig6: Fig6Results | None = None,
    seed: int = 0,
) -> list[list[object]]:
    """Table I, with the qualitative cells backed by measured numbers.

    Redundancy is the scheme's design; recovery difficulty is the measured
    degraded-read fan-out (providers contacted to serve a read during an
    outage — 1 for replication, k for erasure codes); performance and cost
    carry the measured Fig. 6 normal-state latency and Fig. 4 cumulative
    bill.
    """
    fig6 = fig6 or run_fig6(seed)
    fig4 = fig4 or run_fig4(seed)
    static = {
        "racs": "Erasure Codes",
        "duracloud": "Replication",
        "hyrd": "Replication + erasure code",
    }
    factories = coc_factories()
    rows: list[list[object]] = []
    for scheme in ("racs", "duracloud", "hyrd"):
        fanout = _degraded_read_fanout(scheme, factories[scheme], seed)
        recovery = "Hard" if fanout >= 3 else "Easy"
        rows.append(
            [
                scheme,
                static[scheme],
                f"{recovery} ({fanout} providers per degraded read)",
                fig6.normal[scheme],
                fig4.cumulative(scheme),
            ]
        )
    return rows
