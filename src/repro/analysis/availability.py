"""Storage availability analysis — the paper's titular claim, quantified.

The paper argues Cloud-of-Clouds redundancy "improves storage availability"
but reports no availability numbers; this module supplies them two ways and
checks one against the other:

- **Analytic**: given each provider's steady-state availability
  ``a_i = MTBF / (MTBF + MTTR)``, a redundancy scheme's read availability is
  the probability that enough of its placement set is up — any replica for
  replication, any k of n for an (n, k) erasure code.  Computed exactly by
  enumerating provider-state subsets (n = 4 here, so 16 terms).
- **Monte-Carlo**: draw Poisson outage schedules per provider
  (:meth:`repro.cloud.outage.OutageSchedule.poisson`), then integrate over
  simulated time the fraction in which each scheme's data is readable.

HyRD stores two classes with different placements, so its availability is
reported per class and combined (a file-weighted workload mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.cloud.outage import OutageSchedule
from repro.sim.rng import make_rng

__all__ = [
    "SchemePlacement",
    "availability_of_placement",
    "analytic_report",
    "monte_carlo_report",
    "nines",
    "STANDARD_PLACEMENTS",
]

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class SchemePlacement:
    """A placement pattern: data is readable when >= ``k`` of ``providers``
    are simultaneously available."""

    name: str
    providers: tuple[str, ...]
    k: int

    def __post_init__(self) -> None:
        if not (1 <= self.k <= len(self.providers)):
            raise ValueError(
                f"need 1 <= k <= {len(self.providers)}, got k={self.k}"
            )


#: The placements of every §IV configuration on the Table II fleet.
STANDARD_PLACEMENTS: dict[str, SchemePlacement] = {
    "single-amazon_s3": SchemePlacement("single-amazon_s3", ("amazon_s3",), 1),
    "single-azure": SchemePlacement("single-azure", ("azure",), 1),
    "single-aliyun": SchemePlacement("single-aliyun", ("aliyun",), 1),
    "single-rackspace": SchemePlacement("single-rackspace", ("rackspace",), 1),
    "duracloud": SchemePlacement("duracloud", ("amazon_s3", "azure"), 1),
    "racs": SchemePlacement(
        "racs", ("amazon_s3", "azure", "aliyun", "rackspace"), 3
    ),
    "depsky": SchemePlacement(
        "depsky", ("amazon_s3", "azure", "aliyun", "rackspace"), 1
    ),
    "depsky-ca": SchemePlacement(
        "depsky-ca", ("amazon_s3", "azure", "aliyun", "rackspace"), 2
    ),
    "nccloud": SchemePlacement(
        "nccloud", ("amazon_s3", "azure", "aliyun", "rackspace"), 2
    ),
    "hyrd-small": SchemePlacement("hyrd-small", ("aliyun", "azure"), 1),
    "hyrd-large": SchemePlacement(
        "hyrd-large", ("rackspace", "aliyun", "amazon_s3"), 2
    ),
}


def availability_of_placement(
    placement: SchemePlacement, provider_availability: dict[str, float]
) -> float:
    """Exact k-of-n availability with heterogeneous provider availabilities.

    Sums over all survivor subsets of size >= k:
    ``P = sum_S prod_{i in S} a_i * prod_{j not in S} (1 - a_j)``.
    """
    avail = []
    for name in placement.providers:
        a = provider_availability[name]
        if not (0.0 <= a <= 1.0):
            raise ValueError(f"availability of {name} must be in [0,1], got {a}")
        avail.append(a)
    n = len(avail)
    total = 0.0
    for up_count in range(placement.k, n + 1):
        for up_set in combinations(range(n), up_count):
            p = 1.0
            for i in range(n):
                p *= avail[i] if i in up_set else 1.0 - avail[i]
            total += p
    return total


def hyrd_combined(
    provider_availability: dict[str, float], small_weight: float = 0.8
) -> float:
    """HyRD availability over a workload mix.

    ``small_weight`` is the fraction of accesses hitting the replicated
    (small/metadata) class — the paper's workload studies put most accesses
    there.
    """
    small = availability_of_placement(
        STANDARD_PLACEMENTS["hyrd-small"], provider_availability
    )
    large = availability_of_placement(
        STANDARD_PLACEMENTS["hyrd-large"], provider_availability
    )
    return small_weight * small + (1.0 - small_weight) * large


def nines(availability: float) -> float:
    """Availability expressed as 'number of nines' (-log10 of downtime)."""
    if availability >= 1.0:
        return float("inf")
    return float(-np.log10(1.0 - availability))


def analytic_report(
    provider_availability: dict[str, float] | None = None,
    mtbf: float = 60 * DAY,
    mttr: float = 12 * HOUR,
) -> dict[str, float]:
    """Availability of every §IV configuration.

    With no explicit per-provider numbers, every provider gets the same
    steady-state availability ``mtbf / (mtbf + mttr)`` (defaults: an outage
    every two months lasting half a day — the magnitude of the 2013-2014
    incidents §I recounts).
    """
    if provider_availability is None:
        a = mtbf / (mtbf + mttr)
        provider_availability = {
            name: a for name in ("amazon_s3", "azure", "aliyun", "rackspace")
        }
    report = {
        name: availability_of_placement(p, provider_availability)
        for name, p in STANDARD_PLACEMENTS.items()
    }
    report["hyrd"] = hyrd_combined(provider_availability)
    return report


def monte_carlo_report(
    seed: int = 0,
    horizon: float = 400 * DAY,
    mtbf: float = 60 * DAY,
    mttr: float = 12 * HOUR,
    resolution: float = HOUR,
) -> dict[str, float]:
    """Simulated availability: Poisson outages, time-sampled readability.

    Independent outage processes per provider; at each sample instant a
    scheme's data is readable iff >= k of its providers are up.  Converges
    to :func:`analytic_report` as horizon grows (tested).
    """
    providers = ("amazon_s3", "azure", "aliyun", "rackspace")
    schedules = {
        name: OutageSchedule.poisson(
            make_rng(seed, "availability", name), horizon, mtbf, mttr
        )
        for name in providers
    }
    times = np.arange(0.0, horizon, resolution)
    up: dict[str, np.ndarray] = {}
    for name, schedule in schedules.items():
        mask = np.ones(len(times), dtype=bool)
        for w in schedule.windows:
            mask &= ~((times >= w.start) & (times < w.end))
        up[name] = mask

    report: dict[str, float] = {}
    for name, placement in STANDARD_PLACEMENTS.items():
        stacked = np.vstack([up[p] for p in placement.providers])
        readable = stacked.sum(axis=0) >= placement.k
        report[name] = float(readable.mean())
    report["hyrd"] = 0.8 * report["hyrd-small"] + 0.2 * report["hyrd-large"]
    return report
