"""Trace records and the scheme-agnostic replayer.

A trace is a list of :class:`TraceOp`; the :class:`TraceReplayer` executes it
against any :class:`~repro.schemes.base.Scheme`, synthesising payload bytes
deterministically (content identity is still verified end-to-end: reads check
the exact bytes written earlier for that path/version).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.collector import LatencyCollector
from repro.schemes.base import Scheme
from repro.sim.rng import make_rng

__all__ = ["TraceOp", "TraceReplayer"]

_KINDS = frozenset({"put", "get", "update", "remove", "stat", "list"})


@dataclass(frozen=True)
class TraceOp:
    """One file-level operation in a workload trace."""

    kind: str
    path: str
    size: int = 0  # payload size for put / patch size for update
    offset: int = 0  # update offset
    month: int = 0  # accounting month (IA trace); 0 for benchmarks

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown trace op kind {self.kind!r}")
        if self.size < 0 or self.offset < 0:
            raise ValueError("size and offset must be >= 0")


@dataclass
class TraceReplayer:
    """Drives a scheme with a trace, verifying data integrity as it goes.

    ``verify`` controls whether every ``get`` checks content equality against
    the replayer's own record of what was last written — on by default, which
    turns every experiment into an end-to-end correctness test as well.
    """

    seed: int = 0
    verify: bool = True
    _contents: dict[str, bytes] = field(default_factory=dict, repr=False)

    def payload(self, path: str, version: int, size: int) -> bytes:
        """Deterministic pseudo-random payload for (path, version)."""
        rng = make_rng(self.seed, "payload", path, version)
        return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()

    def run(
        self,
        scheme: Scheme,
        ops: list[TraceOp],
        heal_between: bool = False,
        sampler=None,
    ) -> LatencyCollector:
        """Replay ``ops`` on ``scheme``; returns a collector of its reports.

        ``heal_between`` triggers the consistency update before each op when
        a logged provider has returned (models the background healer running
        continuously instead of at explicit points).

        ``sampler`` is an optional bound
        :class:`~repro.obs.timeseries.TimeSeriesSampler`; it is polled
        between operations (a pure registry read — it cannot change
        timings).
        """
        collector = LatencyCollector()
        versions: dict[str, int] = {}
        for op in ops:
            if heal_between:
                collector.extend(scheme.heal_returned())
            if sampler is not None:
                sampler.poll()
            if op.kind == "put":
                version = versions.get(op.path, 0) + 1
                versions[op.path] = version
                data = self.payload(op.path, version, op.size)
                self._contents[op.path] = data
                collector.add(scheme.put(op.path, data))
            elif op.kind == "get":
                data, report = scheme.get(op.path)
                collector.add(report)
                if self.verify:
                    expected = self._contents.get(op.path)
                    if expected is not None and data != expected:
                        raise AssertionError(
                            f"content mismatch on {op.path} "
                            f"(got {len(data)} bytes, expected {len(expected)})"
                        )
            elif op.kind == "update":
                patch = self.payload(op.path, versions.get(op.path, 1) + 1000, op.size)
                collector.add(scheme.update(op.path, op.offset, patch))
                if op.path in self._contents:
                    old = self._contents[op.path]
                    new_size = max(len(old), op.offset + len(patch))
                    buf = bytearray(new_size)
                    buf[: len(old)] = old
                    buf[op.offset : op.offset + len(patch)] = patch
                    self._contents[op.path] = bytes(buf)
            elif op.kind == "remove":
                collector.add(scheme.remove(op.path))
                self._contents.pop(op.path, None)
                versions.pop(op.path, None)
            elif op.kind == "stat":
                _entry, report = scheme.stat(op.path)
                collector.add(report)
            elif op.kind == "list":
                _names, report = scheme.listdir(op.path)
                collector.add(report)
        if sampler is not None:
            sampler.poll()
        return collector
