"""Trace records and the scheme-agnostic replayer.

A trace is a list of :class:`TraceOp`; the :class:`TraceReplayer` executes it
against any :class:`~repro.schemes.base.Scheme`, synthesising payload bytes
deterministically (content identity is still verified end-to-end: reads check
the exact bytes written earlier for that path/version).

Payload synthesis is the replay data plane's hot path, so it is built for
throughput (see ``docs/performance.md``): each path gets one cached
pseudo-random block (one ``make_rng`` derivation per path instead of one per
op), and a payload is that block tiled to size at memcpy speed with a
16-byte header stamping the stream kind (put vs update patch), the
version/sequence number and the size — which keeps every (path, version)
payload distinct without per-op RNG work.

Reads are verified against *recipes* — ``(version, size, applied patches)``
per path — with three tiers, cheapest first: recently written payloads are
retained in a byte-bounded LRU, and a zero-copy read that hands back the
very object the replayer wrote is equal *by identity*; unpatched payloads
otherwise get a streaming tiled comparison that never materialises the
expected bytes; only patched files (rare in every workload here) regenerate
the full expected content.  All three are exact-equality checks — strictly
stronger than a digest comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.collector import LatencyCollector
from repro.schemes.base import Scheme
from repro.sim.rng import make_rng

__all__ = ["TraceOp", "TraceReplayer"]

_KINDS = frozenset({"put", "get", "update", "remove", "stat", "list"})

#: tile size for synthesized payloads; one block is drawn per path and cached
_PAYLOAD_BLOCK = 1 << 16

#: max cached per-path payload blocks (LRU); bounds replay RSS at ~32 MB of
#: block cache even for traces touching many thousands of paths
_MAX_CACHED_BLOCKS = 512

#: header markers namespacing the two payload streams — puts and update
#: patches draw from disjoint content spaces whatever their counters are
_PUT_MARKER = 0x00
_PATCH_MARKER = 0x01

#: byte budget for recently written payloads retained for identity-verified
#: reads; evicted paths fall back to the streaming tiled comparison.  With
#: zero-copy striping the simulated stores pin these same buffers anyway, so
#: retention mostly costs dict entries, not duplicate payload memory.
_RETAIN_BUDGET = 256 << 20


@dataclass(frozen=True)
class TraceOp:
    """One file-level operation in a workload trace."""

    kind: str
    path: str
    size: int = 0  # payload size for put / patch size for update
    offset: int = 0  # update offset
    month: int = 0  # accounting month (IA trace); 0 for benchmarks

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown trace op kind {self.kind!r}")
        if self.size < 0 or self.offset < 0:
            raise ValueError("size and offset must be >= 0")


@dataclass
class _FileRecipe:
    """How to regenerate a path's expected content without retaining it."""

    version: int  # put version the base payload was drawn with
    base_size: int  # size of that base payload
    size: int  # current logical size after updates
    patches: list[tuple[int, int, int]] = field(default_factory=list)  # (seq, off, len)


@dataclass
class TraceReplayer:
    """Drives a scheme with a trace, verifying data integrity as it goes.

    ``verify`` controls whether every ``get`` checks content equality against
    the replayer's own record of what was last written — on by default, which
    turns every experiment into an end-to-end correctness test as well.
    """

    seed: int = 0
    verify: bool = True
    _recipes: dict[str, _FileRecipe] = field(default_factory=dict, repr=False)
    _update_seqs: dict[str, int] = field(default_factory=dict, repr=False)
    _blocks: dict[str, bytes] = field(default_factory=dict, repr=False)
    _retained: dict[str, tuple[int, bytes]] = field(default_factory=dict, repr=False)
    _retained_bytes: int = field(default=0, repr=False)

    # ---------------------------------------------------- payload synthesis
    def _path_block(self, path: str) -> bytes:
        """The path's cached pseudo-random tile (one RNG derivation, LRU)."""
        blk = self._blocks.pop(path, None)
        if blk is None:
            rng = make_rng(self.seed, "payload-block", path)
            blk = rng.integers(0, 256, size=_PAYLOAD_BLOCK, dtype=np.uint8).tobytes()
            if len(self._blocks) >= _MAX_CACHED_BLOCKS:
                self._blocks.pop(next(iter(self._blocks)))
        self._blocks[path] = blk  # re-insert = move to MRU position
        return blk

    def _fill(self, path: str, marker: int, counter: int, size: int) -> bytes:
        """Tile the path block to ``size`` and stamp a distinctness header.

        Built as one ``b"".join`` over (stamped head, block tail, repeated
        cached block, remainder slice) — a single allocation-and-copy pass
        whose sources stay cache-hot, instead of a fill-then-``tobytes``
        double pass over the payload."""
        if size == 0:
            return b""
        block = self._path_block(path)
        stamp = (
            bytes([marker])
            + counter.to_bytes(7, "little")
            + size.to_bytes(8, "little")
        )
        n = min(size, len(stamp))
        # XOR the stamp into the block head so it stays path-distinct too.
        head = bytes(a ^ b for a, b in zip(stamp[:n], block[:n]))
        if size <= _PAYLOAD_BLOCK:
            return b"".join((head, block[n:size]))
        full = size // _PAYLOAD_BLOCK
        rem = size - full * _PAYLOAD_BLOCK
        parts = [head, block[n:]]
        parts.extend([block] * (full - 1))
        if rem:
            parts.append(block[:rem])
        return b"".join(parts)

    def payload(self, path: str, version: int, size: int) -> bytes:
        """Deterministic pseudo-random payload for (path, version)."""
        return self._fill(path, _PUT_MARKER, version, size)

    def patch_payload(self, path: str, seq: int, size: int) -> bytes:
        """Deterministic patch bytes for the path's ``seq``-th update.

        Updates draw from their own marker-namespaced stream, so a patch can
        never collide with any put payload no matter how many versions a
        path accumulates (the old scheme derived patches from
        ``put_version + 1000``, which collided after 999 puts).
        """
        return self._fill(path, _PATCH_MARKER, seq, size)

    # ------------------------------------------------- expected content
    def expected_size(self, path: str) -> int | None:
        """Logical size the replayer believes ``path`` has (None if untracked)."""
        rec = self._recipes.get(path)
        return None if rec is None else rec.size

    def expected_content(self, path: str) -> bytes | None:
        """Regenerate the bytes the replayer expects ``path`` to contain."""
        rec = self._recipes.get(path)
        if rec is None:
            return None
        if not rec.patches:
            return self.payload(path, rec.version, rec.base_size)
        buf = bytearray(rec.size)  # growth gap between base and patch is zeros
        buf[: rec.base_size] = self.payload(path, rec.version, rec.base_size)
        for seq, offset, length in rec.patches:
            buf[offset : offset + length] = self.patch_payload(path, seq, length)
        return bytes(buf)

    def _matches_tiled(self, path: str, marker: int, counter: int, data) -> bool:
        """Compare ``data`` against the tiled synthesis without materializing
        the expectation — streams block-sized equality checks instead."""
        size = len(data)
        if size == 0:
            return True
        arr = np.frombuffer(data, dtype=np.uint8)
        block = np.frombuffer(self._path_block(path), dtype=np.uint8)
        stamp = (
            bytes([marker])
            + counter.to_bytes(7, "little")
            + size.to_bytes(8, "little")
        )
        n = min(size, len(stamp))
        if not np.array_equal(
            arr[:n] ^ block[:n], np.frombuffer(stamp[:n], dtype=np.uint8)
        ):
            return False
        if size <= _PAYLOAD_BLOCK:
            return np.array_equal(arr[n:], block[n:size])
        if not np.array_equal(arr[n:_PAYLOAD_BLOCK], block[n:]):
            return False
        full = size // _PAYLOAD_BLOCK
        if full > 1 and not np.array_equal(
            arr[_PAYLOAD_BLOCK : full * _PAYLOAD_BLOCK].reshape(full - 1, _PAYLOAD_BLOCK),
            np.broadcast_to(block, (full - 1, _PAYLOAD_BLOCK)),
        ):
            return False
        rem = size - full * _PAYLOAD_BLOCK
        if rem and not np.array_equal(arr[full * _PAYLOAD_BLOCK :], block[:rem]):
            return False
        return True

    def _retain(self, path: str, version: int, payload: bytes) -> None:
        """Keep the written payload for identity-verified reads (bounded LRU)."""
        old = self._retained.pop(path, None)
        if old is not None:
            self._retained_bytes -= len(old[1])
        if len(payload) > _RETAIN_BUDGET:
            return
        self._retained[path] = (version, payload)
        self._retained_bytes += len(payload)
        while self._retained_bytes > _RETAIN_BUDGET:
            _, evicted = self._retained.pop(next(iter(self._retained)))
            self._retained_bytes -= len(evicted)

    def _drop_retained(self, path: str) -> None:
        old = self._retained.pop(path, None)
        if old is not None:
            self._retained_bytes -= len(old[1])

    def _matches_expected(self, path: str, data) -> bool:
        """True when ``data`` equals the recipe's regenerated content."""
        rec = self._recipes.get(path)
        if rec is None:
            return True  # untracked path: nothing to hold it against
        if len(data) != rec.size:
            return False
        if rec.patches:
            # Patched files are rare in every workload here; materialize.
            return bytes(data) == self.expected_content(path)
        kept = self._retained.get(path)
        if kept is not None and kept[0] == rec.version and data is kept[1]:
            # The scheme handed back the very object this replayer wrote
            # (zero-copy read path end to end) — equal by identity.
            return True
        return self._matches_tiled(path, _PUT_MARKER, rec.version, data)

    def run(
        self,
        scheme: Scheme,
        ops: list[TraceOp],
        heal_between: bool = False,
        sampler=None,
    ) -> LatencyCollector:
        """Replay ``ops`` on ``scheme``; returns a collector of its reports.

        ``heal_between`` triggers the consistency update before each op when
        a logged provider has returned (models the background healer running
        continuously instead of at explicit points).

        ``sampler`` is an optional bound
        :class:`~repro.obs.timeseries.TimeSeriesSampler`; it is polled
        between operations (a pure registry read — it cannot change
        timings).
        """
        collector = LatencyCollector()
        versions: dict[str, int] = {}
        for op in ops:
            if heal_between:
                collector.extend(scheme.heal_returned())
            if sampler is not None:
                sampler.poll()
            if op.kind == "put":
                version = versions.get(op.path, 0) + 1
                versions[op.path] = version
                data = self.payload(op.path, version, op.size)
                self._recipes[op.path] = _FileRecipe(
                    version=version, base_size=op.size, size=op.size
                )
                collector.add(scheme.put(op.path, data))
                self._retain(op.path, version, data)
            elif op.kind == "get":
                data, report = scheme.get(op.path)
                collector.add(report)
                if self.verify and not self._matches_expected(op.path, data):
                    raise AssertionError(
                        f"content mismatch on {op.path} "
                        f"(got {len(data)} bytes, "
                        f"expected {self.expected_size(op.path)})"
                    )
            elif op.kind == "update":
                seq = self._update_seqs.get(op.path, 0) + 1
                self._update_seqs[op.path] = seq
                patch = self.patch_payload(op.path, seq, op.size)
                collector.add(scheme.update(op.path, op.offset, patch))
                self._drop_retained(op.path)
                rec = self._recipes.get(op.path)
                if rec is not None:
                    rec.patches.append((seq, op.offset, op.size))
                    rec.size = max(rec.size, op.offset + op.size)
            elif op.kind == "remove":
                collector.add(scheme.remove(op.path))
                self._recipes.pop(op.path, None)
                self._update_seqs.pop(op.path, None)
                self._drop_retained(op.path)
                versions.pop(op.path, None)
            elif op.kind == "stat":
                _entry, report = scheme.stat(op.path)
                collector.add(report)
            elif op.kind == "list":
                _names, report = scheme.listdir(op.path)
                collector.add(report)
        if sampler is not None:
            sampler.poll()
        return collector
