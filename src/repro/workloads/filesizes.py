"""File-size distributions.

The paper leans on two workload facts (§II-B, citing Agrawal et al. FAST'07
and Traeger et al.):

- more than 50 % of files are smaller than 4 KB, and small files get most of
  the accesses;
- files of 3-9 MB hold ~80 % of total capacity while being 10-20 % of files.

:class:`AgrawalFileSizes` is a four-band mixture engineered to those
statistics; :class:`MediaLibraryFileSizes` skews larger for the Internet
Archive's documents/images/sound/video mix; :class:`LogUniformFileSizes`
matches PostMark's bounded uniform-in-log pool (1 KB-100 MB in the paper's
Figure 6 configuration).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FileSizeDistribution",
    "LogUniformFileSizes",
    "AgrawalFileSizes",
    "MediaLibraryFileSizes",
]

KB = 1024
MB = 1024 * 1024


class FileSizeDistribution(ABC):
    """Samples file sizes in bytes."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sizes (int64 array, every element >= 1)."""

    def mean_size(self, rng: np.random.Generator, n: int = 20_000) -> float:
        """Monte-Carlo mean (workload planning helper)."""
        return float(self.sample(rng, n).mean())


def _log_uniform(rng: np.random.Generator, lo: float, hi: float, n: int) -> np.ndarray:
    if not (0 < lo <= hi):
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    return np.exp(rng.uniform(np.log(lo), np.log(hi), size=n)).astype(np.int64).clip(1)


@dataclass(frozen=True)
class LogUniformFileSizes(FileSizeDistribution):
    """Uniform in log-size between ``lo`` and ``hi`` (PostMark's pool)."""

    lo: int = 1 * KB
    hi: int = 100 * MB

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return _log_uniform(rng, self.lo, self.hi, n)


@dataclass(frozen=True)
class _Band:
    lo: float
    hi: float
    weight: float


class _BandMixture(FileSizeDistribution):
    """Mixture of log-uniform bands with given count weights."""

    def __init__(self, bands: list[_Band]) -> None:
        total = sum(b.weight for b in bands)
        if not bands or abs(total - 1.0) > 1e-9:
            raise ValueError(f"band weights must sum to 1, got {total}")
        self._bands = bands

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        weights = np.array([b.weight for b in self._bands])
        choices = rng.choice(len(self._bands), size=n, p=weights)
        out = np.empty(n, dtype=np.int64)
        for i, band in enumerate(self._bands):
            mask = choices == i
            count = int(mask.sum())
            if count:
                out[mask] = _log_uniform(rng, band.lo, band.hi, count)
        return out


class PostmarkPoolFileSizes(_BandMixture):
    """PostMark pool between the paper's 1 KB / 100 MB bounds, §II-B shaped.

    PostMark draws pool sizes between its bounds, but a faithful *population*
    follows the workload studies the paper builds on: half the files under
    4 KB, large (>= 1 MB) files a ~10 % count minority holding the vast
    majority of bytes.  Log-uniform across 1 KB-100 MB would make 40 % of
    files "large", which no cited study supports.
    """

    def __init__(self, lo: int = KB, hi: int = 100 * MB) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        super().__init__(
            [
                _Band(lo, 4 * KB, 0.50),
                _Band(4 * KB, 64 * KB, 0.25),
                _Band(64 * KB, MB, 0.13),
                _Band(MB, min(16 * MB, hi), 0.09),
                _Band(min(16 * MB, hi), hi, 0.03),
            ]
        )
        self.lo = lo
        self.hi = hi


class AgrawalFileSizes(_BandMixture):
    """General file-server mixture hitting the paper's §II-B statistics.

    Count shares: 55 % below 4 KB, 25 % in 4-64 KB, 12 % in 64 KB-3 MB,
    8 % in 3-9 MB — which puts >75 % of *bytes* in the 3-9 MB band and >50 %
    of *files* under 4 KB, as cited.
    """

    def __init__(self) -> None:
        super().__init__(
            [
                _Band(256, 4 * KB, 0.55),
                _Band(4 * KB, 64 * KB, 0.25),
                _Band(64 * KB, 3 * MB, 0.12),
                _Band(3 * MB, 9 * MB, 0.08),
            ]
        )


class MediaLibraryFileSizes(_BandMixture):
    """Digital-library mix: documents, images, sound and video objects.

    Skews toward multi-megabyte media, as the Internet Archive trace does
    ("various documents and media files (images, sounds, videos)"), while
    keeping a dense population of small description/metadata files.

    ``scale`` shrinks every band uniformly; cost bills are linear in bytes,
    so a scaled-down trace preserves every Figure 4 *ratio* while keeping a
    seven-scheme, twelve-month simulation inside laptop memory.
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        super().__init__(
            [
                _Band(max(1 * KB * scale, 64), 64 * KB * scale, 0.35),  # texts
                _Band(64 * KB * scale, 1 * MB * scale, 0.20),  # images
                _Band(1 * MB * scale, 16 * MB * scale, 0.30),  # sound, books
                _Band(16 * MB * scale, 128 * MB * scale, 0.15),  # video
            ]
        )
        self.scale = scale
