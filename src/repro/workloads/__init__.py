"""Workload generation: file-size models, PostMark, and the IA trace.

- :mod:`repro.workloads.filesizes` -- size distributions from the studies the
  paper cites (Agrawal et al. FAST'07; media mixes for digital libraries)
- :mod:`repro.workloads.trace`     -- trace records + the replayer that
  drives any scheme
- :mod:`repro.workloads.postmark`  -- PostMark-compatible generator (Fig. 6)
- :mod:`repro.workloads.ia_trace`  -- Internet Archive 12-month synthesizer
  (Fig. 3 statistics; input to the Fig. 4 cost simulation)
"""

from repro.workloads.filesizes import (
    AgrawalFileSizes,
    LogUniformFileSizes,
    MediaLibraryFileSizes,
    PostmarkPoolFileSizes,
)
from repro.workloads.ia_trace import IATrace, IATraceConfig, MonthStats, synthesize_ia_trace
from repro.workloads.postmark import PostMarkConfig, generate_postmark
from repro.workloads.trace import TraceOp, TraceReplayer

__all__ = [
    "AgrawalFileSizes",
    "IATrace",
    "IATraceConfig",
    "LogUniformFileSizes",
    "MediaLibraryFileSizes",
    "MonthStats",
    "PostMarkConfig",
    "PostmarkPoolFileSizes",
    "TraceOp",
    "TraceReplayer",
    "generate_postmark",
    "synthesize_ia_trace",
]
