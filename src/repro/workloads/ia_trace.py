"""Synthetic Internet Archive trace (paper Figure 3 / cost input of Figure 4).

The paper's cost analysis replays one year of Internet Archive activity
(Feb 2008 - Jan 2009).  That trace is not public, but Figure 3 pins down its
aggregate shape, which is everything the cost simulation consumes:

- reads outweigh writes **2.1 : 1 by volume**;
- read requests outnumber write requests **3.5 : 1**;
- monthly volumes fluctuate over the year (seasonality);
- content is digital-library media (mixed documents/images/sound/video).

``synthesize_ia_trace`` reproduces those moments at a configurable scale:
writes are drawn from :class:`MediaLibraryFileSizes`; the month's reads are
sampled from the accumulated library with an *exponentially tilted* weight
``w_i = exp(-lambda * size_i)``, where lambda is solved by bisection so the
expected read size matches the byte/request ratios exactly — i.e. smaller
files are read disproportionally often, as §II-B's workload studies report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.filesizes import FileSizeDistribution, MediaLibraryFileSizes
from repro.workloads.trace import TraceOp

__all__ = ["IATraceConfig", "MonthStats", "IATrace", "synthesize_ia_trace"]

MB = 1024 * 1024


@dataclass(frozen=True)
class IATraceConfig:
    """Scale and shape of the synthetic trace.

    ``writes_per_month`` and the size distribution set the simulated volume;
    the default (~40 files x ~14 MB mean) keeps a full 12-month x 7-scheme
    cost study tractable while the reported bills scale linearly
    (``scale_factor`` is carried in the result for presentation).
    """

    months: int = 12
    writes_per_month: int = 40
    read_volume_ratio: float = 2.1  # read bytes : write bytes
    read_request_ratio: float = 3.5  # read ops : write ops
    seasonality: float = 0.35  # peak-to-mean amplitude of monthly volume
    sizes: FileSizeDistribution = field(default_factory=MediaLibraryFileSizes)
    scale_factor: float = 1.0  # presentation multiplier (real IA ~ 1e5 x)

    def __post_init__(self) -> None:
        if self.months < 1 or self.writes_per_month < 1:
            raise ValueError("months and writes_per_month must be >= 1")
        if self.read_volume_ratio <= 0 or self.read_request_ratio <= 0:
            raise ValueError("ratios must be > 0")
        if not (0 <= self.seasonality < 1):
            raise ValueError(f"seasonality must be in [0, 1), got {self.seasonality}")


@dataclass(frozen=True)
class MonthStats:
    """Realised per-month aggregates (what Figure 3 plots)."""

    month: int
    bytes_written: int
    bytes_read: int
    write_requests: int
    read_requests: int


@dataclass(frozen=True)
class IATrace:
    """The synthesized trace plus its realised statistics."""

    ops: list[TraceOp]
    stats: list[MonthStats]
    config: IATraceConfig

    @property
    def total_read_to_write_bytes(self) -> float:
        r = sum(s.bytes_read for s in self.stats)
        w = sum(s.bytes_written for s in self.stats)
        return r / w if w else 0.0

    @property
    def total_read_to_write_requests(self) -> float:
        r = sum(s.read_requests for s in self.stats)
        w = sum(s.write_requests for s in self.stats)
        return r / w if w else 0.0


def _solve_tilt(sizes: np.ndarray, target_mean: float) -> float:
    """Find lambda with weighted mean of ``sizes`` under exp(-lambda*s) ~= target.

    Monotone in lambda, so bisection on a bracketed interval; falls back to
    the closest achievable endpoint when the target lies outside
    [min(sizes), max(sizes)].
    """
    lo_size, hi_size = float(sizes.min()), float(sizes.max())
    target = float(np.clip(target_mean, lo_size, hi_size))
    if hi_size == lo_size:
        return 0.0

    scale = 1.0 / sizes.mean()  # condition the exponent

    def weighted_mean(lam: float) -> float:
        x = -lam * sizes * scale
        x -= x.max()  # stabilise
        w = np.exp(x)
        return float((w * sizes).sum() / w.sum())

    lam_lo, lam_hi = -1.0, 1.0
    for _ in range(60):  # expand the bracket until it straddles the target
        if weighted_mean(lam_lo) < target:
            lam_lo *= 2.0
        elif weighted_mean(lam_hi) > target:
            lam_hi *= 2.0
        else:
            break
    for _ in range(80):
        mid = 0.5 * (lam_lo + lam_hi)
        if weighted_mean(mid) > target:
            lam_lo = mid
        else:
            lam_hi = mid
    return 0.5 * (lam_lo + lam_hi) * scale


def _tilted_weights(sizes: np.ndarray, lam: float) -> np.ndarray:
    x = -lam * sizes
    x -= x.max()
    w = np.exp(x)
    return w / w.sum()


def _fit_read_bytes(
    lib: np.ndarray,
    picks: np.ndarray,
    target_bytes: float,
    tolerance: float = 0.03,
    max_iter: int = 400,
) -> np.ndarray:
    """Swap picks until their byte sum is within tolerance of the target.

    The tilted sample has the right *expected* volume, but media size
    distributions are heavy-tailed and a month has only ~100 reads, so the
    realised sum wanders.  Greedy repair: repeatedly replace the pick that
    overshoots/undershoots most with the library file whose size best zeroes
    the residual.  Deterministic given the inputs.
    """
    order = np.argsort(lib)
    sorted_sizes = lib[order]
    picks = picks.copy()
    pick_sizes = lib[picks]
    for _ in range(max_iter):
        err = pick_sizes.sum() - target_bytes
        if abs(err) <= tolerance * target_bytes:
            break
        j = int(pick_sizes.argmax() if err > 0 else pick_sizes.argmin())
        desired = max(float(pick_sizes[j]) - err, float(sorted_sizes[0]))
        pos = int(np.clip(np.searchsorted(sorted_sizes, desired), 0, len(lib) - 1))
        replacement = int(order[pos])
        if replacement == picks[j]:  # no better candidate exists
            break
        picks[j] = replacement
        pick_sizes[j] = lib[replacement]
    return picks


def synthesize_ia_trace(
    config: IATraceConfig, rng: np.random.Generator
) -> IATrace:
    """Generate the 12-month trace with Figure 3's aggregate statistics."""
    ops: list[TraceOp] = []
    stats: list[MonthStats] = []
    library_paths: list[str] = []
    library_sizes: list[int] = []
    serial = 0
    phase = float(rng.uniform(0, 2 * np.pi))

    for month in range(config.months):
        season = 1.0 + config.seasonality * np.sin(
            2 * np.pi * month / max(config.months, 1) + phase
        )
        n_writes = max(1, int(round(config.writes_per_month * season)))
        sizes = config.sizes.sample(rng, n_writes)

        month_ops: list[TraceOp] = []
        for size in sizes:
            path = f"/ia/m{month:02d}/item{serial:06d}.bin"
            serial += 1
            month_ops.append(TraceOp("put", path, size=int(size), month=month))
            library_paths.append(path)
            library_sizes.append(int(size))
        bytes_written = int(sizes.sum())

        # Reads sample the whole accumulated library (old items stay popular
        # in an archive), tilted so both Figure 3 ratios hold.
        n_reads = max(1, int(round(n_writes * config.read_request_ratio)))
        target_read_bytes = config.read_volume_ratio * bytes_written
        target_mean = target_read_bytes / n_reads
        lib = np.asarray(library_sizes, dtype=np.float64)
        lam = _solve_tilt(lib, target_mean)
        weights = _tilted_weights(lib, lam)
        picks = rng.choice(len(library_paths), size=n_reads, p=weights)
        picks = _fit_read_bytes(lib, picks, target_read_bytes)
        bytes_read = 0
        read_ops: list[TraceOp] = []
        for idx in picks:
            read_ops.append(TraceOp("get", library_paths[idx], month=month))
            bytes_read += library_sizes[idx]

        # Month order: ingest first, then serving.  (Reads may target items
        # written earlier in the same month, so they must follow the puts.)
        ops.extend(month_ops)
        ops.extend(read_ops)

        stats.append(
            MonthStats(
                month=month,
                bytes_written=bytes_written,
                bytes_read=bytes_read,
                write_requests=n_writes,
                read_requests=n_reads,
            )
        )

    return IATrace(ops=ops, stats=stats, config=config)
