"""PostMark-compatible workload generation.

The paper's Figure 6 runs PostMark ("designed to portray performance in
desktop applications like electronic mail, netnews and web-based commerce")
against the Cloud-of-Clouds: an initial pool of random files between a lower
and an upper size bound, followed by a transaction phase mixing reads,
writes/updates, creates and deletes, plus the metadata operations (stat,
list) that §II says dominate real workloads.

The generator emits a :class:`~repro.workloads.trace.TraceOp` list, so the
same workload replays bit-identically against every scheme — matching the
paper's methodology of running the same PostMark configuration per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.filesizes import (
    FileSizeDistribution,
    PostmarkPoolFileSizes,
)
from repro.workloads.trace import TraceOp

__all__ = ["PostMarkConfig", "generate_postmark"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class PostMarkConfig:
    """PostMark knobs (names follow the original tool where they map).

    ``op_mix`` weights the transaction phase; PostMark's own mix is
    read/append vs create/delete around a live file pool, extended here with
    the stat/list metadata transactions the paper's motivation leans on.
    """

    file_pool: int = 50  # `set number` — initial file count
    transactions: int = 200  # `set transactions`
    size_lo: int = 1 * KB  # `set size` lower bound (paper: 1 KB)
    size_hi: int = 100 * MB  # `set size` upper bound (paper: 100 MB)
    subdirectories: int = 10  # `set subdirectories`
    update_patch_bytes: int = 4 * KB  # in-place write size (small update)
    sizes: FileSizeDistribution = field(default_factory=PostmarkPoolFileSizes)
    op_mix: tuple[tuple[str, float], ...] = (
        ("get", 0.38),
        ("update", 0.14),
        ("put", 0.12),
        ("remove", 0.06),
        ("stat", 0.22),
        ("list", 0.08),
    )
    delete_pool_at_end: bool = False

    def __post_init__(self) -> None:
        if self.file_pool < 1 or self.transactions < 0 or self.subdirectories < 1:
            raise ValueError("file_pool/transactions/subdirectories out of range")
        if not (0 < self.size_lo <= self.size_hi):
            raise ValueError("need 0 < size_lo <= size_hi")
        total = sum(w for _, w in self.op_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op_mix weights must sum to 1, got {total}")
        kinds = {k for k, _ in self.op_mix}
        unknown = kinds - {"get", "update", "put", "remove", "stat", "list"}
        if unknown:
            raise ValueError(f"unknown op kinds in mix: {unknown}")


def _pool_sizes(config: PostMarkConfig, rng: np.random.Generator, n: int) -> np.ndarray:
    sizes = config.sizes.sample(rng, n)
    return np.clip(sizes, config.size_lo, config.size_hi)


def generate_postmark(
    config: PostMarkConfig, rng: np.random.Generator
) -> list[TraceOp]:
    """Generate the full PostMark trace (pool creation + transactions)."""
    ops: list[TraceOp] = []
    live: list[str] = []
    sizes: dict[str, int] = {}
    serial = 0

    def new_path() -> str:
        nonlocal serial
        sub = serial % config.subdirectories
        path = f"/postmark/s{sub:02d}/f{serial:06d}.dat"
        serial += 1
        return path

    # Phase 1: build the initial pool.
    for size in _pool_sizes(config, rng, config.file_pool):
        path = new_path()
        ops.append(TraceOp("put", path, size=int(size)))
        live.append(path)
        sizes[path] = int(size)

    # Phase 2: transactions.
    kinds = [k for k, _ in config.op_mix]
    weights = np.array([w for _, w in config.op_mix])
    draws = rng.choice(len(kinds), size=config.transactions, p=weights)
    for draw in draws:
        kind = kinds[draw]
        if kind == "put" or (not live and kind in ("get", "update", "remove", "stat")):
            size = int(_pool_sizes(config, rng, 1)[0])
            path = new_path()
            ops.append(TraceOp("put", path, size=size))
            live.append(path)
            sizes[path] = size
            continue
        if kind == "list":
            sub = int(rng.integers(0, config.subdirectories))
            ops.append(TraceOp("list", f"/postmark/s{sub:02d}"))
            continue
        path = live[int(rng.integers(0, len(live)))]
        if kind == "get":
            ops.append(TraceOp("get", path))
        elif kind == "stat":
            ops.append(TraceOp("stat", path))
        elif kind == "update":
            # In-place small write at a random aligned offset — the paper's
            # expensive case for erasure-coded schemes.
            patch = min(config.update_patch_bytes, sizes[path])
            limit = max(sizes[path] - patch, 0)
            offset = int(rng.integers(0, limit + 1))
            ops.append(TraceOp("update", path, size=patch, offset=offset))
        elif kind == "remove":
            live.remove(path)
            sizes.pop(path)
            ops.append(TraceOp("remove", path))

    # Phase 3: PostMark's cleanup pass (optional here).
    if config.delete_pool_at_end:
        for path in list(live):
            ops.append(TraceOp("remove", path))
    return ops
