"""Write-ahead intent journal: crash consistency for mutating scheme ops.

Every mutating operation (put / update / remove / migrate / rewrite-repair)
records a :class:`WriteIntent` *before its first fragment leaves the
client* and commits it after the namespace publish.  The journal models the
client-local durable log a real deployment would fsync: it survives the
process (the chaos engine hands the same object to the replacement client),
and recovery (:meth:`Scheme.recover <repro.schemes.base.Scheme.recover>`)
walks the pending intents to decide, per op, roll **forward** (enough
planned placements landed to make the new version the cheaper truth —
redo from the journaled payload) or roll **back** (restore the previous
entry and garbage-collect whatever fragments the dead client scattered).

Design notes:

- This is a *redo log*: puts and updates journal the full new content.
  That is deliberately in-idiom — the write logs already retain full
  payloads for the consistency update — and it is what makes roll-forward
  exact rather than best-effort.
- Intents carry the *previous* :class:`~repro.fs.namespace.FileEntry`
  (frozen, digests included), so roll-back restores the namespace to the
  byte-exact pre-op entry.
- Pure bookkeeping: no RNG draws, no clock access, no metric emissions of
  its own.  Attaching a journal to a scheme cannot perturb simulated
  timings — the same zero-cost bar the tracer, the SLO tracker and the
  maintenance plane meet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.namespace import FileEntry

__all__ = ["WriteIntent", "IntentJournal"]

_KINDS = ("put", "update", "remove")
_STATES = ("pending", "aborted")


@dataclass
class WriteIntent:
    """One journaled mutating operation, recorded before its first put.

    ``sites`` is the planned placement: ``(provider, storage key)`` for
    every object the op intended to write (or, for removes, delete).
    ``min_needed`` is the roll-forward threshold — with at least that many
    planned sites landed, recovery redoes the op; below it, recovery rolls
    back.  In-place read-modify-write updates set it to 0 (the old
    fragments are partially overwritten, so going backward is impossible
    and forward is always correct).
    """

    seq: int
    kind: str
    path: str
    version: int
    codec: str
    replicated: bool
    min_needed: int
    sites: tuple[tuple[str, str], ...]
    payload: bytes | None
    prev: "FileEntry | None"
    logged_at: float
    state: str = "pending"
    #: redo images of the metadata groups this op re-persists, by directory.
    #: Stashed just before the group write scatters: a crash mid-persist can
    #: leave a *striped* group with mixed-generation fragments that no k-subset
    #: reconstructs, and this journaled image is then the only consistent copy.
    meta_blobs: dict[str, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.kind != "remove" and self.payload is None:
            raise ValueError(f"journaled {self.kind} requires a payload")
        if self.min_needed < 0:
            raise ValueError(f"min_needed must be >= 0, got {self.min_needed}")

    @property
    def payload_bytes(self) -> int:
        return 0 if self.payload is None else len(self.payload)

    def describe(self) -> dict:
        """JSON-friendly summary (no payload bytes; reports stay small)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "path": self.path,
            "version": self.version,
            "codec": self.codec,
            "min_needed": self.min_needed,
            "sites": [list(s) for s in self.sites],
            "payload_bytes": self.payload_bytes,
            "state": self.state,
        }


class IntentJournal:
    """Client-local write-ahead log of mutating-op intents.

    Lifecycle per op: :meth:`begin` → (cloud writes, namespace publish) →
    :meth:`commit`.  A cleanly failed op (the scheme raised, the client
    lived) calls :meth:`mark_aborted` instead — the intent stays listed so
    recovery can garbage-collect any fragments that landed before the
    failure.  A *crash* leaves the intent ``pending``, which is precisely
    the evidence recovery consumes.  :meth:`resolve` drops an intent once
    recovery has handled it; a drained journal (``len == 0``) is the
    system-wide invariant the chaos engine checks after every episode.
    """

    def __init__(self) -> None:
        self._intents: dict[int, WriteIntent] = {}
        self._next_seq = 1
        self._payload_bytes = 0
        self.commits_total = 0
        self.begun_total = 0

    # ------------------------------------------------------------ lifecycle
    def begin(
        self,
        *,
        kind: str,
        path: str,
        version: int,
        codec: str,
        replicated: bool,
        min_needed: int,
        sites: tuple[tuple[str, str], ...],
        payload: bytes | None,
        prev: "FileEntry | None",
        logged_at: float,
    ) -> WriteIntent:
        intent = WriteIntent(
            seq=self._next_seq,
            kind=kind,
            path=path,
            version=version,
            codec=codec,
            replicated=replicated,
            min_needed=min_needed,
            sites=tuple((str(p), str(k)) for p, k in sites),
            payload=None if payload is None else bytes(payload),
            prev=prev,
            logged_at=logged_at,
        )
        self._next_seq += 1
        self._intents[intent.seq] = intent
        self._payload_bytes += intent.payload_bytes
        self.begun_total += 1
        return intent

    def commit(self, seq: int) -> None:
        """The op published its namespace entry: the intent is fulfilled."""
        intent = self._intents.pop(seq, None)
        if intent is None:
            raise KeyError(f"no journaled intent #{seq}")
        self._payload_bytes -= intent.payload_bytes
        self.commits_total += 1

    def attach_meta(self, seq: int, directory: str, blob: bytes) -> None:
        """Stash the encoded metadata group an op is about to re-persist.

        Called by the scheme immediately before the group write's first
        cloud request; no-op once the intent is resolved.  Pure client-local
        bookkeeping — no wire traffic, no RNG, no clock.
        """
        intent = self._intents.get(seq)
        if intent is not None:
            intent.meta_blobs[directory] = bytes(blob)

    def mark_aborted(self, seq: int) -> None:
        """The op failed cleanly (client alive): keep the intent for GC."""
        intent = self._intents.get(seq)
        if intent is None:
            raise KeyError(f"no journaled intent #{seq}")
        intent.state = "aborted"

    def resolve(self, seq: int) -> None:
        """Recovery handled the intent (rolled forward, back, or GC'd)."""
        intent = self._intents.pop(seq, None)
        if intent is not None:
            self._payload_bytes -= intent.payload_bytes

    # -------------------------------------------------------------- queries
    def pending(self) -> list[WriteIntent]:
        """Unresolved intents (pending and aborted alike), oldest first."""
        return sorted(self._intents.values(), key=lambda i: i.seq)

    def get(self, seq: int) -> WriteIntent | None:
        return self._intents.get(seq)

    def payload_bytes(self) -> int:
        """Journaled redo-payload bytes currently held (O(1))."""
        return self._payload_bytes

    def __len__(self) -> int:
        return len(self._intents)

    def __bool__(self) -> bool:
        return bool(self._intents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntentJournal(pending={len(self._intents)}, "
            f"commits={self.commits_total}, bytes={self._payload_bytes})"
        )
