"""Client-side file-system layer.

HyRD sits below a file-system-like namespace: files have paths, metadata is
grouped *per directory* to exploit access locality (paper §III-C), and a
file's entry records where its redundancy fragments live.

- :mod:`repro.fs.namespace` -- paths, :class:`FileEntry`, the in-client index
- :mod:`repro.fs.metadata`  -- directory metadata groups (serialisation + store)
- :mod:`repro.fs.journal`   -- write-ahead intent journal (crash consistency)
"""

from repro.fs.journal import IntentJournal, WriteIntent
from repro.fs.metadata import MetadataStore, decode_group, encode_group
from repro.fs.namespace import FileEntry, Namespace, dirname, normalize_path

__all__ = [
    "FileEntry",
    "IntentJournal",
    "MetadataStore",
    "Namespace",
    "WriteIntent",
    "decode_group",
    "dirname",
    "encode_group",
    "normalize_path",
]
