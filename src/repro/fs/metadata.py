"""Directory-grouped metadata blocks.

Paper §III-C: *"HyRD uses replication to store the file system metadata and
groups the metadata in a directory together to exploit the access locality."*

A *metadata group* is one cloud object per directory containing the
serialised :class:`~repro.fs.namespace.FileEntry` of every file in it.  The
:class:`MetadataStore` owns serialisation plus a bounded LRU cache standing
in for the paper's "metadata blocks loaded into client memory": group reads
that hit the cache are free; misses cost a cloud read in whatever redundancy
scheme the surrounding system uses (that part is the scheme's job —
replication for HyRD/DuraCloud, striping for RACS).
"""

from __future__ import annotations

import json
from collections import OrderedDict

from repro.fs.namespace import FileEntry, Namespace, dirname, normalize_path

__all__ = ["encode_group", "decode_group", "group_key", "MetadataStore"]

_GROUP_PREFIX = "__meta__"


def group_key(directory: str) -> str:
    """Cloud object key for a directory's metadata group."""
    return f"{_GROUP_PREFIX}{directory}"


def is_group_key(key: str) -> bool:
    return key.startswith(_GROUP_PREFIX)


def encode_group(entries: list[FileEntry]) -> bytes:
    """Serialise a directory's entries to a compact, deterministic blob."""
    payload = [
        {
            "path": e.path,
            "size": e.size,
            "version": e.version,
            "codec": e.codec,
            "codec_params": [[k, v] for k, v in e.codec_params],
            "placements": [[p, i] for p, i in e.placements],
            "klass": e.klass,
            "created": e.created,
            "modified": e.modified,
            "access_count": e.access_count,
            "digests": list(e.digests),
        }
        for e in sorted(entries, key=lambda e: e.path)
    ]
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def decode_group(blob: bytes) -> list[FileEntry]:
    """Inverse of :func:`encode_group`."""
    try:
        payload = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt metadata group: {exc}") from exc
    entries = []
    for item in payload:
        entries.append(
            FileEntry(
                path=item["path"],
                size=item["size"],
                version=item["version"],
                codec=item["codec"],
                codec_params=tuple((k, v) for k, v in item["codec_params"]),
                placements=tuple((p, i) for p, i in item["placements"]),
                klass=item["klass"],
                created=item["created"],
                modified=item["modified"],
                access_count=item["access_count"],
                digests=tuple(item.get("digests", ())),
            )
        )
    return entries


class MetadataStore:
    """Serialisation + client-memory cache for directory metadata groups."""

    def __init__(self, namespace: Namespace, cache_capacity: int = 256) -> None:
        if cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {cache_capacity}")
        self.namespace = namespace
        self.cache_capacity = cache_capacity
        self._cache: OrderedDict[str, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- encoding
    def encode_dir(self, directory: str) -> bytes:
        """Current metadata blob for ``directory``."""
        return encode_group(self.namespace.entries_in(directory))

    def group_size(self, directory: str) -> int:
        return len(self.encode_dir(directory))

    def apply_group(self, blob: bytes) -> list[FileEntry]:
        """Merge a fetched group blob into the namespace (recovery path)."""
        entries = decode_group(blob)
        for e in entries:
            self.namespace.upsert(e)
        return entries

    # ---------------------------------------------------------------- cache
    def is_cached(self, directory: str) -> bool:
        """Whether the directory's metadata sits in client memory."""
        if directory in self._cache:
            self._cache.move_to_end(directory)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def touch(self, directory: str) -> None:
        """Mark a group resident (after a write-through or a fetch)."""
        self._cache[directory] = None
        self._cache.move_to_end(directory)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    def invalidate(self, directory: str) -> None:
        self._cache.pop(directory, None)

    def cached_dirs(self) -> list[str]:
        return list(self._cache)

    # -------------------------------------------------------------- helpers
    def dir_of(self, path: str) -> str:
        return dirname(normalize_path(path))
