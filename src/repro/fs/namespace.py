"""Paths, file entries, and the client-side namespace index.

A :class:`FileEntry` is the unit of file-system metadata the paper talks
about: *"Before accessing a file, its metadata blocks must be loaded into the
client memory."*  It records the file's size and — crucially for a
Cloud-of-Clouds — its *placement*: which redundancy class it was written
with, which codec, and which provider holds which fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["normalize_path", "dirname", "basename", "FileEntry", "Namespace"]


def normalize_path(path: str) -> str:
    """Canonical absolute path: leading '/', no dup/trailing slashes."""
    if not path or path == "/":
        raise ValueError(f"invalid file path: {path!r}")
    parts = [p for p in path.split("/") if p]
    if not parts:
        raise ValueError(f"invalid file path: {path!r}")
    for p in parts:
        if p in (".", ".."):
            raise ValueError(f"relative segments not allowed: {path!r}")
    return "/" + "/".join(parts)


def dirname(path: str) -> str:
    """Parent directory of a normalized path ('/' for top-level files)."""
    idx = path.rfind("/")
    return path[:idx] if idx > 0 else "/"


def basename(path: str) -> str:
    return path.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class FileEntry:
    """Metadata for one file.

    ``placements`` maps provider name -> fragment index held there; for
    replication every replica shares fragment semantics (index 0..r-1 are
    identical copies), for erasure codes the index selects the stripe
    fragment.  ``codec`` names the registered codec + parameters used, so a
    reader can reconstruct without out-of-band knowledge.
    """

    path: str
    size: int
    version: int = 1
    codec: str = "replication"
    codec_params: tuple[tuple[str, int], ...] = ()
    placements: tuple[tuple[str, int], ...] = ()  # (provider, fragment index)
    klass: str = "small"  # workload class assigned by the monitor
    created: float = 0.0
    modified: float = 0.0
    access_count: int = 0
    #: per-fragment SHA-256 hex digests (index-aligned); empty disables the
    #: HAIL-style integrity verification on reads
    digests: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")

    @property
    def providers(self) -> tuple[str, ...]:
        return tuple(p for p, _ in self.placements)

    def fragment_index(self, provider: str) -> int:
        for p, idx in self.placements:
            if p == provider:
                return idx
        raise KeyError(f"{provider!r} holds no fragment of {self.path!r}")

    def bumped(self, size: int, now: float, **changes: object) -> "FileEntry":
        """Next version of this entry after an overwrite/update."""
        return replace(
            self,
            size=size,
            version=self.version + 1,
            modified=now,
            **changes,  # type: ignore[arg-type]
        )

    def touched(self) -> "FileEntry":
        """Same entry with the access counter bumped (read-path bookkeeping)."""
        return replace(self, access_count=self.access_count + 1)


class Namespace:
    """The in-client file index: path -> :class:`FileEntry`.

    This is the authoritative copy while the client runs; schemes persist it
    to the clouds as per-directory metadata groups through
    :class:`repro.fs.metadata.MetadataStore`.
    """

    def __init__(self) -> None:
        self._entries: dict[str, FileEntry] = {}
        self._dirs: dict[str, set[str]] = {}

    def __contains__(self, path: str) -> bool:
        return normalize_path(path) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, path: str) -> FileEntry:
        path = normalize_path(path)
        try:
            return self._entries[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def lookup(self, path: str) -> FileEntry | None:
        return self._entries.get(normalize_path(path))

    def upsert(self, entry: FileEntry) -> None:
        path = normalize_path(entry.path)
        self._entries[path] = entry
        self._dirs.setdefault(dirname(path), set()).add(path)

    def remove(self, path: str) -> FileEntry:
        path = normalize_path(path)
        try:
            entry = self._entries.pop(path)
        except KeyError:
            raise FileNotFoundError(path) from None
        d = dirname(path)
        members = self._dirs.get(d)
        if members is not None:
            members.discard(path)
            if not members:
                del self._dirs[d]
        return entry

    def list_dir(self, directory: str) -> list[str]:
        """Paths of files directly inside ``directory`` (sorted)."""
        if directory != "/":
            directory = normalize_path(directory)
        return sorted(self._dirs.get(directory, ()))

    def directories(self) -> list[str]:
        return sorted(self._dirs)

    def paths(self) -> list[str]:
        return sorted(self._entries)

    def entries_in(self, directory: str) -> list[FileEntry]:
        return [self._entries[p] for p in self.list_dir(directory)]

    def total_bytes(self) -> int:
        return sum(e.size for e in self._entries.values())
