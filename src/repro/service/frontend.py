"""Frontend service nodes and the plane that wires them together.

hsds splits its service into *service nodes* (request validation, auth,
authorization) and *data nodes* (storage I/O); here the
:class:`FrontendHandler` plays the service-node role — authenticate,
scope the path into the tenant's namespace, reserve storage quota, hand
the request to the shared :class:`~repro.service.admission.AdmissionController`
— and the shared :class:`~repro.schemes.base.Scheme` over the provider
fleet is the data-node side.

Frontends run as *pump chains* on the sim event loop: each handler keeps at
most one pending pump event; a pump dispatches one admitted request,
executes it against the scheme under :meth:`tenant_context
<repro.schemes.base.Scheme.tenant_context>` (which attributes the OpReport,
trace span, and SLO rollup to the tenant), then reschedules itself while
backlog remains.  Scheme operations advance the shared sim clock, so N
frontends interleave at op granularity exactly like N workers sharing one
backend.  When every backlogged tenant is ops/s-deferred, the pump parks
until :meth:`AdmissionController.next_eligible_time
<repro.service.admission.AdmissionController.next_eligible_time>` instead
of spinning.

:class:`ServicePlane` bundles the pieces (scheme, loop, tenant registry,
admission controller, N frontends) and routes each tenant to a home
frontend by stable hash — the entry point the traffic generator and the
``repro serve`` drill drive.
"""

from __future__ import annotations

from repro.service.admission import AdmissionController, Request
from repro.service.tenant import (
    AuthError,
    QuotaExceeded,
    Tenant,
    TenantRegistry,
    UnknownTenant,
)
from repro.sim.events import EventLoop
from repro.sim.rng import stable_u64

__all__ = ["FrontendHandler", "ServicePlane"]

#: request kinds a frontend will execute
_KINDS = frozenset({"put", "get", "stat", "remove", "list", "update"})


class FrontendHandler:
    """One service node: accept, authenticate, enforce quota, pump."""

    def __init__(self, name: str, plane: "ServicePlane") -> None:
        self.name = name
        self.plane = plane
        self.dispatched = 0
        self.failures = 0
        self._pump_pending = False

    # ----------------------------------------------------------------- intake
    def handle(self, request: Request) -> tuple[bool, str | None]:
        """Accept one request; returns ``(admitted, shed_reason)``.

        The full service-node checklist, shed with a typed reason at the
        first failing step: authenticate, validate, reserve storage quota
        (writes), then queue with the admission controller.
        """
        plane = self.plane
        admission = plane.admission
        if plane.registry is not None:
            plane.registry.counter(
                "tenant_requests_total", tenant=request.tenant_id
            ).inc()
        try:
            tenant = plane.tenants.authenticate(request.tenant_id, request.token)
        except (AuthError, UnknownTenant) as exc:
            return admission.shed_request(request.tenant_id, exc.reason)
        if request.kind not in _KINDS:
            raise ValueError(f"unknown request kind {request.kind!r}")
        if request.kind == "put":
            try:
                request.reservation = tenant.reserve_write(
                    request.path, request.size
                )
            except QuotaExceeded as exc:
                return admission.shed_request(tenant.tenant_id, exc.reason)
        request.submitted_at = plane.clock.now
        admitted, reason = admission.submit(tenant, request)
        if admitted:
            plane.kick()
        return (admitted, reason)

    # ------------------------------------------------------------------ pumps
    def kick(self) -> None:
        """Ensure a pump event is pending (idempotent)."""
        if not self._pump_pending:
            self._pump_pending = True
            self.plane.loop.schedule(
                self.plane.clock.now, self._pump, label=f"frontend-pump:{self.name}"
            )

    def _pump(self) -> None:
        self._pump_pending = False
        plane = self.plane
        request = plane.admission.next_request(plane.clock.now)
        if request is None:
            backlog = plane.admission.backlog()
            if backlog:
                # Every backlogged tenant is rate-deferred: park until the
                # earliest token, strictly later than now.
                at = plane.admission.next_eligible_time(plane.clock.now)
                if at is not None and at > plane.clock.now:
                    self._pump_pending = True
                    plane.loop.schedule(
                        at, self._pump, label=f"frontend-pump:{self.name}"
                    )
            return
        self.dispatched += 1
        if plane.registry is not None:
            plane.registry.counter(
                "admission_dispatched_total", frontend=self.name
            ).inc()
        self._execute(request)
        if plane.admission.backlog():
            self.kick()
        plane.notify_complete(request)

    def _execute(self, request: Request) -> None:
        """Run one admitted request on the shared scheme, settle quota."""
        plane = self.plane
        scheme = plane.scheme
        tenant = plane.tenants.get(request.tenant_id)
        scoped = tenant.scope(request.path)
        try:
            with scheme.tenant_context(tenant.tenant_id):
                if request.kind == "put":
                    scheme.put(scoped, request.payload or b"")
                elif request.kind == "get":
                    scheme.get(scoped)
                elif request.kind == "stat":
                    scheme.stat(scoped)
                elif request.kind == "list":
                    scheme.listdir(scoped)
                elif request.kind == "update":
                    scheme.update(scoped, request.offset, request.payload or b"")
                elif request.kind == "remove":
                    scheme.remove(scoped)
        except Exception:
            # The op failed cleanly (e.g. DataUnavailable under an outage
            # storm): the scheme already recorded the SLO failure under the
            # tenant; the service node refunds any quota hold and moves on —
            # one tenant's failing op must not kill the shared pump chain.
            self.failures += 1
            if request.reservation is not None:
                tenant.release(request.reservation)
                request.reservation = None
            return
        if request.reservation is not None:
            tenant.commit(request.reservation)
            request.reservation = None
            plane.publish_usage(tenant)
        elif request.kind == "remove":
            tenant.note_removed(request.path)
            plane.publish_usage(tenant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrontendHandler({self.name!r}, dispatched={self.dispatched})"


class ServicePlane:
    """The bundle: scheme backend, event loop, tenants, admission, frontends."""

    def __init__(
        self,
        scheme,
        loop: EventLoop,
        tenants: TenantRegistry,
        admission: AdmissionController | None = None,
        n_frontends: int = 2,
    ) -> None:
        if n_frontends < 1:
            raise ValueError(f"need at least one frontend, got {n_frontends}")
        self.scheme = scheme
        self.loop = loop
        self.clock = loop.clock
        self.tenants = tenants
        self.admission = admission if admission is not None else AdmissionController()
        self.registry = scheme.registry
        self.admission.bind(self.registry, self.clock)
        self.frontends = [
            FrontendHandler(f"fe{i}", self) for i in range(n_frontends)
        ]
        #: completion hook for closed-loop traffic: called with the executed
        #: Request after each dispatch (None = nobody listening)
        self.on_complete = None

    # ---------------------------------------------------------------- routing
    def frontend_for(self, tenant_id: str) -> FrontendHandler:
        """The tenant's home frontend (stable hash over the fleet)."""
        return self.frontends[stable_u64("frontend-home", tenant_id) % len(self.frontends)]

    def route(self, request: Request) -> tuple[bool, str | None]:
        """Deliver a request to its home frontend."""
        return self.frontend_for(request.tenant_id).handle(request)

    def kick(self) -> None:
        """Wake every frontend that has no pump pending."""
        for fe in self.frontends:
            fe.kick()

    # ------------------------------------------------------------- accounting
    def publish_usage(self, tenant: Tenant) -> None:
        if self.registry is not None:
            self.registry.gauge(
                "tenant_bytes_used", tenant=tenant.tenant_id
            ).set(tenant.bytes_used)
            self.registry.gauge(
                "tenant_objects_used", tenant=tenant.tenant_id
            ).set(tenant.objects_used)

    def notify_complete(self, request: Request) -> None:
        if self.on_complete is not None:
            self.on_complete(request)

    # ------------------------------------------------------------ direct path
    def direct_put(self, tenant: Tenant, path: str, payload: bytes) -> None:
        """Provision an object outside admission (setup traffic, not load).

        Used by the open-loop traffic generator to seed each tenant's
        namespace before the measured window; quota accounting still runs
        so usage gauges and later quota checks see the data.
        """
        reservation = tenant.reserve_write(path, len(payload))
        try:
            with self.scheme.tenant_context(tenant.tenant_id):
                self.scheme.put(tenant.scope(path), payload)
        except Exception:
            tenant.release(reservation)
            raise
        tenant.commit(reservation)
        self.publish_usage(tenant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServicePlane(frontends={len(self.frontends)}, "
            f"tenants={len(self.tenants)})"
        )
