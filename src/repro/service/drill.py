"""The canonical service-plane drill: build, drive, report.

:func:`run_service_drill` assembles the whole stack — Table II provider
fleet, a :class:`~repro.schemes.HyrdScheme` backend with an SLO tracker
attached, a tenant registry with quotas, the admission controller, N
frontends on one event loop, and a seeded traffic generator — runs it to
completion, and returns one JSON-safe aggregate report.  Everything is
simulated and seeded, so the same arguments produce a byte-identical
report (``json.dumps(report, sort_keys=True)`` round-trips exactly); the
``repro serve`` CLI, ``benchmarks/test_service_plane.py`` and the
``service_plane`` telemetry facet all consume this one entry point.

For open-loop runs the drill first *calibrates*: it pre-provisions one
object per tenant, measures a single read's simulated cost, and derives
per-tenant arrival rates as ``offered_load`` times the measured service
capacity — so "3x overload" means the same thing whatever the fleet's
latency parameters are.
"""

from __future__ import annotations

from typing import Any

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.obs.slo import SloTracker
from repro.schemes import HyrdScheme
from repro.service.admission import AdmissionController
from repro.service.frontend import ServicePlane
from repro.service.tenant import TenantQuota, TenantRegistry
from repro.service.traffic import TrafficConfig, TrafficGenerator
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop

__all__ = ["run_service_drill"]

REPORT_SCHEMA = "repro-service-drill/1"


def _measure_read_cost(plane: ServicePlane, tenant, path: str) -> float:
    """Simulated seconds one admitted read costs (calibration, pre-window)."""
    t0 = plane.clock.now
    with plane.scheme.tenant_context(tenant.tenant_id):
        plane.scheme.get(tenant.scope(path))
    return plane.clock.now - t0


def run_service_drill(
    seed: int = 0,
    tenants: int = 4,
    frontends: int = 2,
    mode: str = "closed",
    ops_per_tenant: int = 6,
    payload_bytes: int = 16 * 1024,
    queue_limit: int = 16,
    skew: float = 1.0,
    offered_load: float = 3.0,
    horizon: float = 20.0,
    ops_quota_factor: float | None = None,
    max_bytes: int | None = None,
    max_objects: int | None = None,
    weights: list[float] | None = None,
    scheme_factory=None,
    parts: dict | None = None,
) -> dict[str, Any]:
    """Run one full multi-tenant drill; returns the aggregate report.

    ``mode="closed"`` runs ``ops_per_tenant`` ops per tenant with one
    outstanding request each; ``mode="open"`` schedules ``horizon`` sim
    seconds of arrivals at ``offered_load`` times the measured service
    capacity, skewed ``skew``:1 across tenants.  ``ops_quota_factor``
    gives every tenant an ops/s quota of that multiple of its fair share
    of measured capacity (open mode only — closed mode has no capacity
    measurement).

    ``parts``, when given, receives the live objects (scheme, plane,
    admission, slo, registry, clock) after the run — the report itself
    stays JSON-safe.
    """
    clock = SimClock()
    loop = EventLoop(clock)
    providers = make_table2_cloud_of_clouds(clock)
    if scheme_factory is None:
        scheme = HyrdScheme(
            list(providers.values()), clock, config=HyRDConfig(seed=seed)
        )
    else:
        scheme = scheme_factory(list(providers.values()), clock)
    slo = SloTracker()
    scheme.attach_slo(slo)

    registry = TenantRegistry(seed)
    config = TrafficConfig(
        tenants=tenants,
        mode=mode,
        ops_per_tenant=ops_per_tenant,
        payload_bytes=payload_bytes,
        skew=skew,
        horizon=horizon,
        # rate_per_tenant is recomputed below for open mode; the placeholder
        # just has to satisfy validation.
        rate_per_tenant=1.0,
    )
    traffic = TrafficGenerator(config, seed=seed)
    quota = TenantQuota(max_bytes=max_bytes, max_objects=max_objects)
    for i, tid in enumerate(traffic.tenant_ids):
        registry.create(
            tid,
            quota=quota,
            weight=weights[i] if weights is not None else 1.0,
        )

    admission = AdmissionController(queue_limit=queue_limit)
    plane = ServicePlane(
        scheme, loop, registry, admission=admission, n_frontends=frontends
    )

    capacity = None
    if mode == "open":
        # Pre-provision one object per tenant, then calibrate capacity from
        # a single measured read (all of this precedes the measured window).
        for tid in traffic.tenant_ids:
            tenant = registry.get(tid)
            path = traffic.seed_object_path(tid)
            plane.direct_put(tenant, path, traffic.payload(tid, path, payload_bytes))
        first = registry.get(traffic.tenant_ids[0])
        read_cost = _measure_read_cost(
            plane, first, traffic.seed_object_path(first.tenant_id)
        )
        capacity = 1.0 / read_cost
        rate = offered_load * capacity / tenants
        config = TrafficConfig(
            tenants=tenants,
            mode=mode,
            ops_per_tenant=ops_per_tenant,
            payload_bytes=payload_bytes,
            skew=skew,
            horizon=horizon,
            rate_per_tenant=rate,
        )
        traffic = TrafficGenerator(config, seed=seed)
        if ops_quota_factor is not None:
            per_tenant_quota = ops_quota_factor * capacity / tenants
            for tid in traffic.tenant_ids:
                registry.get(tid).set_quota(
                    TenantQuota(
                        max_bytes=max_bytes,
                        max_objects=max_objects,
                        max_ops_per_s=per_tenant_quota,
                    )
                )

    t0 = clock.now
    traffic.start(plane)
    loop.run()
    elapsed = clock.now - t0

    admitted_total = sum(admission.admitted.values())
    shed_total = admission.shed_total()
    submitted_total = traffic.submitted_total()
    shed_by_reason: dict[str, int] = {}
    for (_tid, reason), n in admission.shed.items():
        shed_by_reason[reason] = shed_by_reason.get(reason, 0) + n

    slo.publish(clock.now)
    per_tenant: dict[str, Any] = {}
    for tid in traffic.tenant_ids:
        tenant = registry.get(tid)
        admitted = admission.admitted.get(tid, 0)
        per_tenant[tid] = {
            "submitted": traffic.submitted.get(tid, 0),
            "admitted": admitted,
            "shed": sum(
                n for (t, _r), n in admission.shed.items() if t == tid
            ),
            "ops_per_s": admitted / elapsed if elapsed > 0 else 0.0,
            "bytes_used": tenant.bytes_used,
            "objects_used": tenant.objects_used,
        }

    report: dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "mode": mode,
        "tenants": tenants,
        "frontends": frontends,
        "queue_limit": queue_limit,
        "skew": skew,
        "sim_elapsed": elapsed,
        "submitted_total": submitted_total,
        "admitted_total": admitted_total,
        "shed_total": shed_total,
        "shed_by_reason": shed_by_reason,
        "shed_fraction": (
            shed_total / submitted_total if submitted_total else 0.0
        ),
        "aggregate_ops_per_s": admitted_total / elapsed if elapsed > 0 else 0.0,
        "fairness_index": admission.fairness_index(),
        "quota_deferrals": admission.quota_deferrals,
        "drr_rounds": admission.rounds,
        "frontend_dispatched": {
            fe.name: fe.dispatched for fe in plane.frontends
        },
        "frontend_failures": sum(fe.failures for fe in plane.frontends),
        "capacity_ops_per_s": capacity,
        "slo": {
            "read_availability": slo.availability("read", clock.now),
            "write_availability": slo.availability("write", clock.now),
        },
        "per_tenant": per_tenant,
    }
    if parts is not None:
        parts.update(
            scheme=scheme,
            plane=plane,
            admission=admission,
            slo=slo,
            registry=scheme.registry,
            clock=clock,
        )
    return report
