"""Admission control: bounded queues, deficit round-robin, typed shedding.

The :class:`AdmissionController` sits between the frontend handlers and the
shared scheme backend.  Each tenant gets a bounded FIFO of accepted
requests; dispatch order across tenants is **deficit round-robin** (DRR):
every backlogged tenant sits in a rotation, a visit grants it
``quantum * weight`` deficit, and each dispatched request spends one unit.
With the default unit weights this degenerates to exact per-request
round-robin — every backlogged tenant is served once per full round of the
active set, which is the starvation-freedom property
``tests/test_property_admission.py`` checks; weights buy proportionally
more service without ever silencing anyone.

Load is shed — never silently dropped — with a typed reason from
:data:`REJECT_REASONS`:

- ``auth`` / ``unknown_tenant``: the frontend could not authenticate the
  request;
- ``bytes_quota`` / ``objects_quota``: the write could not reserve storage
  quota (checked *before* queueing, so a queued request can always run);
- ``queue_full``: the tenant's bounded queue is at capacity;
- ``ops_quota`` is *not* a shed reason at dispatch — an empty ops/s token
  bucket defers the tenant (request stays queued, counted in
  ``admission_quota_deferrals_total``).  It only sheds at submit when
  queueing is disabled (``queue_limit=0``).

Fairness is tracked incrementally: Jain's index over per-tenant admitted
counts is maintained from running ``sum`` / ``sum of squares``, so the
``admission_fairness_index`` gauge costs O(1) per dispatch even with
thousands of tenants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.service.tenant import Tenant

__all__ = ["REJECT_REASONS", "Request", "AdmissionController", "jain_index"]

#: the full typed rejection vocabulary (``tenant_shed_total``'s reason label)
REJECT_REASONS = (
    "auth",
    "unknown_tenant",
    "queue_full",
    "ops_quota",
    "bytes_quota",
    "objects_quota",
)

#: deficit spent per dispatched request
_COST = 1.0


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every value is equal, ``1/n`` when one value holds everything;
    1.0 by convention for empty or all-zero inputs.
    """
    xs = list(values)
    total = sum(xs)
    sq = sum(x * x for x in xs)
    if not xs or sq == 0.0:
        return 1.0
    return (total * total) / (len(xs) * sq)


@dataclass
class Request:
    """One tenant request as it moves through the service plane."""

    tenant_id: str
    token: str
    kind: str  # "put" | "get" | "stat" | "remove" | "list" | "update"
    path: str  # tenant-relative; frontends scope it into the prefix
    size: int = 0
    payload: bytes | None = None
    offset: int = 0
    #: quota reservation held while queued (writes only); settled at execution
    reservation: object | None = field(default=None, repr=False)
    submitted_at: float = 0.0


class AdmissionController:
    """Bounded per-tenant queues drained by deficit round-robin."""

    def __init__(self, quantum: float = 1.0, queue_limit: int = 16) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.quantum = float(quantum)
        self.queue_limit = queue_limit
        self.registry = None
        self.clock = None
        self._queues: dict[str, deque[Request]] = {}
        self._tenants: dict[str, Tenant] = {}
        #: rotation of backlogged tenant ids, in DRR visit order
        self._rotation: deque[str] = deque()
        self._deficit: dict[str, float] = {}
        #: round anchor: a round completes each time the rotation's visits
        #: come back to this tenant (re-anchored when it drains away)
        self._anchor: str | None = None
        # fairness accounting: admitted count per tenant plus running moments
        self.admitted: dict[str, int] = {}
        self._admit_sum = 0
        self._admit_sumsq = 0
        self.shed: dict[tuple[str, str], int] = {}
        self.rounds = 0
        self.quota_deferrals = 0
        self._queued_total = 0

    # ---------------------------------------------------------------- wiring
    def bind(self, registry, clock) -> None:
        """Give the controller its metric outlet and the sim clock."""
        self.registry = registry
        self.clock = clock

    # --------------------------------------------------------------- queries
    def backlog(self, tenant_id: str | None = None) -> int:
        """Requests waiting (for one tenant, or in total)."""
        if tenant_id is not None:
            q = self._queues.get(tenant_id)
            return len(q) if q is not None else 0
        return self._queued_total

    def fairness_index(self) -> float:
        """Jain's index over per-tenant admitted counts so far."""
        if not self.admitted or self._admit_sumsq == 0:
            return 1.0
        s = self._admit_sum
        return (s * s) / (len(self.admitted) * self._admit_sumsq)

    def shed_total(self) -> int:
        return sum(self.shed.values())

    def next_eligible_time(self, now: float) -> float | None:
        """Earliest sim time any backlogged tenant can dispatch, or None.

        ``now`` itself means work is dispatchable immediately; a later time
        means every backlogged tenant is ops/s-deferred until then.
        """
        if not self._rotation:
            return None
        return min(
            self._tenants[tid].next_token_time(now) for tid in self._rotation
        )

    # ------------------------------------------------------------ accounting
    def _count_shed(self, tenant_id: str, reason: str) -> None:
        key = (tenant_id, reason)
        self.shed[key] = self.shed.get(key, 0) + 1
        if self.registry is not None:
            self.registry.counter(
                "tenant_shed_total", reason=reason, tenant=tenant_id
            ).inc()

    def _count_admitted(self, tenant_id: str) -> None:
        old = self.admitted.get(tenant_id, 0)
        self.admitted[tenant_id] = old + 1
        self._admit_sum += 1
        self._admit_sumsq += 2 * old + 1  # (old+1)^2 - old^2
        if self.registry is not None:
            self.registry.counter("tenant_admitted_total", tenant=tenant_id).inc()
            self.registry.gauge("admission_fairness_index").set(
                self.fairness_index()
            )

    def _publish_depth(self, tenant_id: str) -> None:
        if self.registry is not None:
            self.registry.gauge("tenant_queue_depth", tenant=tenant_id).set(
                self.backlog(tenant_id)
            )
            self.registry.gauge("admission_queued").set(self._queued_total)

    def _note_visit(self, tid: str) -> None:
        """Round bookkeeping: visiting the anchor again closes a round.

        The anchor is cleared when its tenant drains out of the rotation
        (see :meth:`next_request`), so membership never needs re-checking.
        """
        if self._anchor is None:
            self._anchor = tid
        elif tid == self._anchor:
            self.rounds += 1
            if self.registry is not None:
                self.registry.counter("admission_rounds_total").inc()

    # ----------------------------------------------------------------- intake
    def shed_request(self, tenant_id: str, reason: str) -> tuple[bool, str]:
        """Record a frontend-side rejection (auth / quota) as shed load."""
        if reason not in REJECT_REASONS:
            raise ValueError(f"unknown reject reason {reason!r}")
        self._count_shed(tenant_id, reason)
        return (False, reason)

    def submit(self, tenant: Tenant, request: Request) -> tuple[bool, str | None]:
        """Queue an authenticated, quota-reserved request for dispatch.

        Returns ``(True, None)`` when queued, ``(False, reason)`` when shed.
        With ``queue_limit=0`` (queueing disabled) a request whose ops/s
        bucket is empty sheds as ``ops_quota`` instead of waiting.
        """
        tid = tenant.tenant_id
        self._tenants[tid] = tenant
        q = self._queues.get(tid)
        if q is None:
            q = self._queues[tid] = deque()
        if self.queue_limit == 0:
            now = self.clock.now if self.clock is not None else 0.0
            if not tenant.take_op_token(now):
                self._release(request, tenant)
                return self.shed_request(tid, "ops_quota")
        elif len(q) >= self.queue_limit:
            self._release(request, tenant)
            return self.shed_request(tid, "queue_full")
        if not q:
            self._rotation.append(tid)
            self._deficit.setdefault(tid, 0.0)
        q.append(request)
        self._queued_total += 1
        self._publish_depth(tid)
        return (True, None)

    def _release(self, request: Request, tenant: Tenant) -> None:
        if request.reservation is not None:
            tenant.release(request.reservation)
            request.reservation = None

    # --------------------------------------------------------------- dispatch
    def next_request(self, now: float) -> Request | None:
        """The next request under DRR order, or None.

        None means either no backlog at all, or every backlogged tenant is
        ops/s-deferred (distinguish via :meth:`backlog` /
        :meth:`next_eligible_time`).  A tenant whose weight is under one
        quantum merely needs extra rounds for its deficit to accumulate, so
        the scan keeps going while any tenant is deficit-limited — work
        conservation holds for every weight assignment; only rate-limit
        deferral can leave backlog behind.
        """
        rotation = self._rotation
        while rotation:
            deficit_limited = False
            for _ in range(len(rotation)):
                tid = rotation[0]
                tenant = self._tenants[tid]
                if self._deficit[tid] < _COST:
                    # First visit this round: top up the deficit.
                    self._note_visit(tid)
                    self._deficit[tid] += self.quantum * tenant.weight
                if self._deficit[tid] < _COST:
                    # Weight so small one quantum doesn't cover a dispatch
                    # yet; the deficit carries over to the next round.
                    deficit_limited = True
                    rotation.rotate(-1)
                    continue
                if not tenant.take_op_token(now):
                    self.quota_deferrals += 1
                    if self.registry is not None:
                        self.registry.counter(
                            "admission_quota_deferrals_total"
                        ).inc()
                    rotation.rotate(-1)
                    continue
                q = self._queues[tid]
                request = q.popleft()
                self._queued_total -= 1
                self._deficit[tid] -= _COST
                if not q:
                    # Drained: leave the rotation and forfeit residual
                    # deficit — DRR's rule that idle tenants cannot bank
                    # credit.
                    rotation.popleft()
                    self._deficit[tid] = 0.0
                    if self._anchor == tid:
                        self._anchor = None
                elif self._deficit[tid] < _COST:
                    rotation.rotate(-1)
                self._count_admitted(tid)
                self._publish_depth(tid)
                return request
            if not deficit_limited:
                # Every backlogged tenant is ops/s-deferred; more rounds
                # cannot help until sim time advances.
                return None
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(queued={self._queued_total}, "
            f"tenants={len(self._rotation)}, admitted={self._admit_sum})"
        )
