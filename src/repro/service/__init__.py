"""Multi-tenant service plane: frontends, tenants, admission, traffic.

The evaluation harness drives one client over one trace; this package turns
the same substrate into a shared service in the style of hsds's
service-node / data-node split (ROADMAP item 1):

- :mod:`repro.service.tenant` — the :class:`Tenant` model (namespace prefix
  isolation, deterministic auth-token stub, quotas on bytes / objects /
  ops-per-second) and the :class:`TenantRegistry`;
- :mod:`repro.service.admission` — the :class:`AdmissionController`:
  bounded per-tenant queues, deficit-round-robin weighted fair queuing,
  typed load shedding, and Jain's fairness accounting;
- :mod:`repro.service.frontend` — N :class:`FrontendHandler` service nodes
  that authenticate, enforce quotas, and pump admitted requests into the
  shared :class:`~repro.schemes.base.Scheme` backend on the sim event loop,
  wired together by :class:`ServicePlane`;
- :mod:`repro.service.traffic` — the closed/open-loop
  :class:`TrafficGenerator`, scaling the IA trace shape to thousands of
  lazily materialized per-tenant workloads (seeded: same seed ⇒
  byte-identical aggregate report);
- :mod:`repro.service.drill` — :func:`run_service_drill`, the canonical
  end-to-end drill behind ``repro serve``, the service-plane benchmarks
  and the telemetry facet.

Like the maintenance and scheduling planes, the service plane is strictly
additive: a scheme that never sees a :meth:`tenant_context
<repro.schemes.base.Scheme.tenant_context>` produces byte-identical
reports to a pre-service-plane build (gated in
``benchmarks/test_service_plane.py``).
"""

from repro.service.admission import (
    REJECT_REASONS,
    AdmissionController,
    Request,
    jain_index,
)
from repro.service.drill import run_service_drill
from repro.service.frontend import FrontendHandler, ServicePlane
from repro.service.tenant import (
    AuthError,
    QuotaExceeded,
    ServiceError,
    Tenant,
    TenantQuota,
    TenantRegistry,
    UnknownTenant,
)
from repro.service.traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "REJECT_REASONS",
    "AdmissionController",
    "Request",
    "jain_index",
    "run_service_drill",
    "FrontendHandler",
    "ServicePlane",
    "AuthError",
    "QuotaExceeded",
    "ServiceError",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "UnknownTenant",
    "TrafficConfig",
    "TrafficGenerator",
]
