"""Closed/open-loop traffic generation over thousands of tenants.

Scales the Internet Archive trace *shape* (reads outnumber writes 3.5:1 by
request count — Figure 3's ratio) to an arbitrary tenant population without
ever materializing the whole workload: each tenant's op stream is a lazy
generator over its own :func:`~repro.sim.rng.make_rng` stream, created the
first time the tenant is driven.  Everything is derived from the root seed,
so the same seed produces a byte-identical aggregate drill report.

Two loop disciplines, per the classic closed/open distinction:

- **closed** — every tenant keeps exactly one request outstanding; its next
  op is submitted when the previous one completes (or is shed).  Offered
  load tracks service capacity, nothing queues for long, and total work is
  fixed (``ops_per_tenant`` each) — the mode for throughput-vs-tenant-count
  scaling runs.
- **open** — arrivals are scheduled on the event loop at deterministic
  per-tenant rates regardless of completions, the mode that actually
  exercises bounded queues and load shedding.  Per-tenant rates follow a
  geometric skew profile (``skew`` = heaviest:lightest ratio), and each
  tenant reads the object the drill pre-provisioned for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.service.admission import Request
from repro.service.frontend import ServicePlane
from repro.sim.rng import make_rng

__all__ = ["TrafficConfig", "TrafficGenerator"]


@dataclass(frozen=True)
class TrafficConfig:
    """Shape and scale of the generated load."""

    tenants: int = 8
    mode: str = "closed"  # "closed" | "open"
    ops_per_tenant: int = 8  # closed loop: total ops each tenant runs
    payload_bytes: int = 16 * 1024
    read_request_ratio: float = 3.5  # IA Figure 3: read ops : write ops
    # open loop:
    rate_per_tenant: float = 2.0  # mean arrivals per sim second per tenant
    horizon: float = 20.0  # sim seconds of scheduled arrivals
    skew: float = 1.0  # heaviest:lightest per-tenant rate ratio (>= 1)

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.ops_per_tenant < 1:
            raise ValueError(f"ops_per_tenant must be >= 1, got {self.ops_per_tenant}")
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")
        if self.read_request_ratio <= 0:
            raise ValueError("read_request_ratio must be > 0")
        if self.rate_per_tenant <= 0 or self.horizon <= 0:
            raise ValueError("rate_per_tenant and horizon must be > 0")
        if self.skew < 1.0:
            raise ValueError(f"skew must be >= 1, got {self.skew}")


class TrafficGenerator:
    """Drives a :class:`~repro.service.frontend.ServicePlane` with load."""

    def __init__(self, config: TrafficConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.tenant_ids = [f"t{i:05d}" for i in range(config.tenants)]
        #: lazily materialized per-tenant op streams (closed loop)
        self._streams: dict[str, Iterator[tuple[str, str, int]]] = {}
        self._open_seqs: dict[str, int] = {}
        self.submitted: dict[str, int] = {}
        self.completed = 0
        self._plane: ServicePlane | None = None

    # -------------------------------------------------- workload materialize
    def _stream(self, tenant_id: str) -> Iterator[tuple[str, str, int]]:
        """The tenant's lazy op stream: ``(kind, relative path, size)``.

        IA-shaped: the first op ingests an object, later ops read an
        already-written object with probability ``ratio / (ratio + 1)``
        (3.5:1 reads:writes at the default) and ingest a new one otherwise.
        """
        stream = self._streams.get(tenant_id)
        if stream is None:
            stream = self._streams[tenant_id] = self._materialize(tenant_id)
        return stream

    def _materialize(self, tenant_id: str) -> Iterator[tuple[str, str, int]]:
        cfg = self.config
        rng = make_rng(self.seed, "tenant-workload", tenant_id)
        p_read = cfg.read_request_ratio / (cfg.read_request_ratio + 1.0)
        written = 0
        for i in range(cfg.ops_per_tenant):
            if written and rng.random() < p_read:
                target = int(rng.integers(0, written))
                yield ("get", f"/d/obj{target}", 0)
            else:
                yield ("put", f"/d/obj{written}", cfg.payload_bytes)
                written += 1

    def payload(self, tenant_id: str, path: str, size: int) -> bytes:
        """Deterministic payload bytes for one tenant object."""
        if size == 0:
            return b""
        rng = make_rng(self.seed, "tenant-payload", tenant_id, path)
        return rng.integers(0, 256, size, dtype=np.uint8).tobytes()

    def _request(self, tenant_id: str, kind: str, path: str, size: int) -> Request:
        token = self._plane.tenants.get(tenant_id).token
        payload = self.payload(tenant_id, path, size) if kind == "put" else None
        return Request(
            tenant_id=tenant_id, token=token, kind=kind, path=path,
            size=size, payload=payload,
        )

    # -------------------------------------------------------------- lifecycle
    def start(self, plane: ServicePlane) -> None:
        """Begin driving ``plane``; tenants must already exist in its registry."""
        self._plane = plane
        if self.config.mode == "closed":
            plane.on_complete = self._on_complete
            for tid in self.tenant_ids:
                self._advance(tid)
        else:
            self._schedule_arrivals(plane)

    # ------------------------------------------------------------ closed loop
    def _advance(self, tenant_id: str) -> None:
        """Submit the tenant's next op; skip past sheds so it never stalls."""
        for kind, path, size in self._stream(tenant_id):
            self.submitted[tenant_id] = self.submitted.get(tenant_id, 0) + 1
            admitted, _reason = self._plane.route(
                self._request(tenant_id, kind, path, size)
            )
            if admitted:
                return
        # stream exhausted: this tenant is done

    def _on_complete(self, request: Request) -> None:
        self.completed += 1
        self._advance(request.tenant_id)

    # -------------------------------------------------------------- open loop
    def rate_weights(self) -> np.ndarray:
        """Per-tenant rate weights on a geometric ``skew``:1 profile."""
        n = self.config.tenants
        if n == 1 or self.config.skew == 1.0:
            return np.ones(n)
        return self.config.skew ** (np.arange(n)[::-1] / (n - 1))

    def rates(self) -> np.ndarray:
        """Per-tenant arrival rates: weights scaled to the configured mean."""
        w = self.rate_weights()
        return w * (self.config.rate_per_tenant * self.config.tenants / w.sum())

    def seed_object_path(self, tenant_id: str) -> str:
        """The pre-provisioned object open-loop reads target."""
        return "/d/seed0"

    def _schedule_arrivals(self, plane: ServicePlane) -> None:
        """Deterministic arrival times: fixed spacing, seeded phase offset."""
        cfg = self.config
        t0 = plane.clock.now
        for tid, rate in zip(self.tenant_ids, self.rates()):
            spacing = 1.0 / rate
            phase = float(make_rng(self.seed, "arrival-phase", tid).uniform(0, spacing))
            n_arrivals = int((cfg.horizon - phase) / spacing) + 1
            path = self.seed_object_path(tid)
            for k in range(max(0, n_arrivals)):
                at = t0 + phase + k * spacing
                if at > t0 + cfg.horizon:
                    break
                plane.loop.schedule(
                    at,
                    self._make_arrival(tid, path),
                    label=f"arrival:{tid}",
                )

    def _make_arrival(self, tenant_id: str, path: str):
        def fire() -> None:
            self.submitted[tenant_id] = self.submitted.get(tenant_id, 0) + 1
            self._plane.route(self._request(tenant_id, "get", path, 0))

        return fire

    # ---------------------------------------------------------------- queries
    def submitted_total(self) -> int:
        return sum(self.submitted.values())
