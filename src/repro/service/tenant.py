"""The tenant model: namespaces, auth stub, and quota accounting.

A :class:`Tenant` owns a namespace prefix (``/t/<id>``) under which every
path it touches is scoped, a deterministic bearer-token stub standing in
for real authentication, and three quota axes:

- **bytes** and **objects** — logical storage under the prefix, accounted
  with a reserve/commit/release discipline so that queued writes can never
  overcommit the limit (the reservation holds the quota units while the
  request waits for admission) and failed writes refund exactly what they
  reserved;
- **ops per second** — a token bucket on the *sim* clock, drained by the
  admission controller at dispatch time, so admitted throughput respects
  the rate limit whatever the backlog.

Quotas are mutable at runtime (:meth:`Tenant.set_quota`): shrinking a limit
below current usage is legal and simply rejects further growth until usage
falls back under the limit — existing data is never touched.

The :class:`TenantRegistry` creates and authenticates tenants; token
comparison goes through :func:`hmac.compare_digest` like a real credential
check would, even though the tokens themselves are derived, not secret.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = [
    "ServiceError",
    "AuthError",
    "UnknownTenant",
    "QuotaExceeded",
    "TenantQuota",
    "Reservation",
    "Tenant",
    "TenantRegistry",
]


class ServiceError(Exception):
    """Base class for service-plane request rejections.

    Every subclass carries a ``reason`` drawn from the typed rejection
    vocabulary (:data:`repro.service.admission.REJECT_REASONS`), so callers
    can shed with a machine-readable cause instead of parsing messages.
    """

    reason = "service_error"


class AuthError(ServiceError):
    """The presented token does not match the tenant's."""

    reason = "auth"


class UnknownTenant(ServiceError):
    """No tenant with that id exists in the registry."""

    reason = "unknown_tenant"


class QuotaExceeded(ServiceError):
    """A quota axis would be exceeded; ``reason`` names which one."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` on any axis means unlimited."""

    max_bytes: int | None = None
    max_objects: int | None = None
    max_ops_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {self.max_bytes}")
        if self.max_objects is not None and self.max_objects < 0:
            raise ValueError(f"max_objects must be >= 0, got {self.max_objects}")
        if self.max_ops_per_s is not None and self.max_ops_per_s <= 0:
            raise ValueError(
                f"max_ops_per_s must be > 0, got {self.max_ops_per_s}"
            )


@dataclass
class Reservation:
    """Quota units held for one in-flight (queued or executing) write.

    Created by :meth:`Tenant.reserve_write`; exactly one of
    :meth:`Tenant.commit` / :meth:`Tenant.release` must consume it.
    """

    path: str
    bytes_delta: int
    objects_delta: int
    new_size: int
    settled: bool = False


class Tenant:
    """One tenant: namespace prefix, auth token, quota state."""

    def __init__(
        self,
        tenant_id: str,
        token: str,
        quota: TenantQuota | None = None,
        weight: float = 1.0,
    ) -> None:
        if not tenant_id or "/" in tenant_id:
            raise ValueError(f"tenant id must be non-empty, '/'-free: {tenant_id!r}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.tenant_id = tenant_id
        self.token = token
        self.quota = quota if quota is not None else TenantQuota()
        #: DRR weight: this tenant's share of admission relative to others
        self.weight = float(weight)
        self.prefix = f"/t/{tenant_id}"
        #: logical objects under the prefix: tenant-relative path -> size
        self.objects: dict[str, int] = {}
        self.bytes_used = 0
        #: quota units held by reservations not yet committed/released
        self.reserved_bytes = 0
        self.reserved_objects = 0
        # ops/s token bucket (sim clock); burst of one second of rate, at
        # least one whole token so a rate under 1 op/s can ever fire.
        self._tokens: float | None = None
        self._tokens_at = 0.0

    # ------------------------------------------------------------ namespacing
    def scope(self, path: str) -> str:
        """Map a tenant-relative path into the tenant's namespace prefix."""
        if not path.startswith("/"):
            path = "/" + path
        return self.prefix + path

    def owns(self, scoped_path: str) -> bool:
        """True when ``scoped_path`` lies under this tenant's prefix."""
        return scoped_path.startswith(self.prefix + "/")

    # ---------------------------------------------------------------- quotas
    def set_quota(self, quota: TenantQuota) -> None:
        """Replace the quota; shrinking below current usage is allowed.

        Existing data is untouched — the tenant merely cannot grow until
        usage drops back under the new limits.
        """
        self.quota = quota

    @property
    def objects_used(self) -> int:
        return len(self.objects)

    def reserve_write(self, path: str, size: int) -> Reservation:
        """Hold quota for a put of ``size`` bytes at tenant-relative ``path``.

        Raises :class:`QuotaExceeded` (reason ``bytes_quota`` /
        ``objects_quota``) when the write would push usage past a limit,
        counting every outstanding reservation — two queued writes racing
        one remaining quota unit cannot both pass.  A write exactly at the
        limit is admitted.
        """
        old_size = self.objects.get(path)
        bytes_delta = size - (old_size or 0)
        objects_delta = 0 if old_size is not None else 1
        q = self.quota
        if (
            q.max_bytes is not None
            and bytes_delta > 0
            and self.bytes_used + self.reserved_bytes + bytes_delta > q.max_bytes
        ):
            raise QuotaExceeded(
                "bytes_quota",
                f"tenant {self.tenant_id!r}: {size} B write would exceed "
                f"max_bytes={q.max_bytes} "
                f"(used={self.bytes_used}, reserved={self.reserved_bytes})",
            )
        if (
            q.max_objects is not None
            and objects_delta > 0
            and self.objects_used + self.reserved_objects + objects_delta
            > q.max_objects
        ):
            raise QuotaExceeded(
                "objects_quota",
                f"tenant {self.tenant_id!r}: new object would exceed "
                f"max_objects={q.max_objects} "
                f"(used={self.objects_used}, reserved={self.reserved_objects})",
            )
        self.reserved_bytes += bytes_delta
        self.reserved_objects += objects_delta
        return Reservation(
            path=path,
            bytes_delta=bytes_delta,
            objects_delta=objects_delta,
            new_size=size,
        )

    def commit(self, reservation: Reservation) -> None:
        """The reserved write landed: fold it into usage."""
        self._settle(reservation)
        self.bytes_used += reservation.bytes_delta
        self.objects[reservation.path] = reservation.new_size

    def release(self, reservation: Reservation) -> None:
        """The reserved write was shed or failed: refund the held units."""
        self._settle(reservation)

    def _settle(self, reservation: Reservation) -> None:
        if reservation.settled:
            raise RuntimeError(f"reservation for {reservation.path!r} settled twice")
        reservation.settled = True
        self.reserved_bytes -= reservation.bytes_delta
        self.reserved_objects -= reservation.objects_delta

    def note_removed(self, path: str) -> None:
        """A remove landed: drop the object from usage accounting."""
        size = self.objects.pop(path, None)
        if size is not None:
            self.bytes_used -= size

    # ------------------------------------------------------- ops/s rate limit
    def take_op_token(self, now: float) -> bool:
        """Drain one ops/s token at sim time ``now`` (True when available).

        Unlimited tenants always pass.  The bucket holds at most one second
        of rate (minimum one token), so sustained admitted throughput can
        never exceed ``max_ops_per_s`` by more than that initial burst.
        """
        rate = self.quota.max_ops_per_s
        if rate is None:
            return True
        burst = max(1.0, rate)
        if self._tokens is None:
            self._tokens, self._tokens_at = burst, now
        else:
            self._tokens = min(burst, self._tokens + (now - self._tokens_at) * rate)
            self._tokens_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def next_token_time(self, now: float) -> float:
        """Earliest sim time a token will be available (``now`` if already)."""
        rate = self.quota.max_ops_per_s
        if rate is None or self._tokens is None or self._tokens >= 1.0:
            return now
        return now + (1.0 - self._tokens) / rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tenant({self.tenant_id!r}, objects={self.objects_used}, "
            f"bytes={self.bytes_used})"
        )


class TenantRegistry:
    """Creates, stores, and authenticates tenants.

    Tokens are a deterministic stub — ``blake2b(seed:tenant_id)`` — so a
    seeded drill reproduces them exactly; the authentication *path* (bearer
    token presented per request, compared credential-style) is shaped like
    the real thing.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._tenants: dict[str, Tenant] = {}

    def mint_token(self, tenant_id: str) -> str:
        return hashlib.blake2b(
            f"{self.seed}:{tenant_id}".encode(), digest_size=16
        ).hexdigest()

    def create(
        self,
        tenant_id: str,
        quota: TenantQuota | None = None,
        weight: float = 1.0,
    ) -> Tenant:
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} already exists")
        tenant = Tenant(
            tenant_id, self.mint_token(tenant_id), quota=quota, weight=weight
        )
        self._tenants[tenant_id] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenant(f"no tenant {tenant_id!r}")
        return tenant

    def authenticate(self, tenant_id: str, token: str) -> Tenant:
        """Resolve and verify; raises :class:`UnknownTenant` / :class:`AuthError`."""
        tenant = self.get(tenant_id)
        if not hmac.compare_digest(tenant.token, token):
            raise AuthError(f"bad token for tenant {tenant_id!r}")
        return tenant

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants
