"""Confidentiality primitives for the DepSky-CA baseline.

The paper describes DepSky as "combining Byzantine quorum system protocols,
cryptographic secret sharing, erasure codes, replication and the diversity
of several cloud providers".  DepSky-CA is the confidentiality-adding
variant: data is encrypted, the key is secret-shared across the clouds, and
the ciphertext is erasure-coded — no single provider learns anything.

- :mod:`repro.security.cipher`         -- deterministic keystream cipher
- :mod:`repro.security.secret_sharing` -- Shamir's scheme over GF(2^8)
"""

from repro.security.cipher import keystream_cipher, random_key
from repro.security.secret_sharing import combine_secret, share_secret

__all__ = ["combine_secret", "keystream_cipher", "random_key", "share_secret"]
