"""Shamir's secret sharing over GF(2^8), vectorised across secret bytes.

Used by DepSky-CA to split the data-encryption key across providers: any
``k`` shares reconstruct the key; ``k - 1`` shares are information-
theoretically independent of it (every byte of each share is masked by
uniformly random polynomial coefficients).

Construction: per secret byte position, a random polynomial
``p(x) = secret + c_1 x + ... + c_{k-1} x^{k-1}`` over GF(256); share ``i``
is ``p(x_i)`` at the public evaluation point ``x_i = i + 1``.  All byte
positions are evaluated in one GF matrix product.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.erasure.galois import gf_inverse_matrix, gf_matmul, gf_pow

__all__ = ["share_secret", "combine_secret"]


def _eval_matrix(xs: list[int], k: int) -> np.ndarray:
    """Rows of [1, x, x^2, ..., x^{k-1}] for each evaluation point."""
    m = np.zeros((len(xs), k), dtype=np.uint8)
    for r, x in enumerate(xs):
        for j in range(k):
            m[r, j] = gf_pow(x, j)
    return m


def share_secret(
    secret: bytes, n: int, k: int, rng: np.random.Generator
) -> list[bytes]:
    """Split ``secret`` into ``n`` shares with threshold ``k``.

    Share ``i`` (0-based) corresponds to evaluation point ``i + 1``; callers
    must remember which index a share came from (DepSky-CA stores it with
    the provider's fragment).
    """
    if not (1 <= k <= n <= 255):
        raise ValueError(f"need 1 <= k <= n <= 255, got n={n}, k={k}")
    length = len(secret)
    coeffs = np.zeros((k, length), dtype=np.uint8)
    if length:
        coeffs[0] = np.frombuffer(secret, dtype=np.uint8)
        if k > 1:
            coeffs[1:] = rng.integers(0, 256, size=(k - 1, length), dtype=np.uint8)
    evaluation = _eval_matrix(list(range(1, n + 1)), k)
    shares = gf_matmul(evaluation, coeffs)  # (n, length)
    return [shares[i].tobytes() for i in range(n)]


def combine_secret(shares: Mapping[int, bytes], k: int) -> bytes:
    """Reconstruct the secret from any ``k`` shares (index -> share bytes).

    Solves the k x k Vandermonde system and reads off the constant term —
    equivalent to Lagrange interpolation at x = 0, but reusing the GF
    linear algebra the erasure codecs already exercise.
    """
    if len(shares) < k:
        raise ValueError(f"need >= {k} shares, got {len(shares)}")
    indices = sorted(shares)[:k]
    if any(i < 0 or i > 254 for i in indices):
        raise ValueError(f"share indices out of range [0, 255): {indices}")
    lengths = {len(shares[i]) for i in indices}
    if len(lengths) != 1:
        raise ValueError(f"shares have inconsistent lengths: {lengths}")
    (length,) = lengths
    if length == 0:
        return b""
    stacked = np.vstack(
        [np.frombuffer(shares[i], dtype=np.uint8) for i in indices]
    )
    evaluation = _eval_matrix([i + 1 for i in indices], k)
    coeffs = gf_matmul(gf_inverse_matrix(evaluation), stacked)
    return coeffs[0].tobytes()
