"""A keystream cipher for the simulation.

Stand-in for AES-CTR (the repo is dependency-free and the paper's
comparison does not hinge on cipher strength): the 128-bit key keys a
Philox counter-based generator — the same construction family as real
counter-mode ciphers — and the payload is XORed with its keystream.
Identical (key, length) always produces the identical keystream, so
encryption is deterministic and self-inverse, which is what the storage
path needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KEY_BYTES", "random_key", "keystream_cipher"]

KEY_BYTES = 16


def random_key(rng: np.random.Generator) -> bytes:
    """Draw a fresh 128-bit data-encryption key."""
    return rng.integers(0, 256, KEY_BYTES, dtype=np.uint8).tobytes()


def keystream_cipher(key: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` under ``key`` (XOR keystream, self-inverse)."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"key must be {KEY_BYTES} bytes, got {len(key)}")
    if not data:
        return b""
    # Philox takes a 128-bit key: exactly our key material.
    generator = np.random.Generator(
        np.random.Philox(key=int.from_bytes(key, "little"))
    )
    stream = generator.integers(0, 256, size=len(data), dtype=np.uint8)
    return (np.frombuffer(data, dtype=np.uint8) ^ stream).tobytes()
