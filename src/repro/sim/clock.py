"""Simulated wall clock.

Every latency-bearing component in the repo (providers, schemes, the cost
simulator) reads and advances a shared :class:`SimClock` instead of real time.
This keeps experiments deterministic and lets a one-year trace run in
milliseconds of real time.
"""

from __future__ import annotations

SECONDS_PER_MONTH: float = 30 * 24 * 3600.0
"""Accounting month used by the cost simulator (30 days, as in typical
cloud billing simplifications)."""


class SimClock:
    """A monotone simulated clock measured in seconds.

    The clock only moves forward: :meth:`advance` with a negative delta and
    :meth:`advance_to` with a past instant both raise ``ValueError``.  This
    catches latency-accounting bugs early (a scheme that "finishes before it
    started" is always a bug).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before t=0 (got {start})")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch of the run."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move the clock forward to an absolute ``instant`` (>= now)."""
        if instant < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={instant}"
            )
        self._now = float(instant)
        return self._now

    def month_index(self) -> int:
        """0-based accounting month the clock currently sits in."""
        return int(self._now // SECONDS_PER_MONTH)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
