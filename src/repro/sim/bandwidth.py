"""Fair-share bandwidth model for concurrent WAN transfers.

The paper's client is a single desktop PC with one 1 Gb/s access link talking
to four cloud providers.  When a scheme pushes the same 100 MB file to two
providers (DuraCloud) or four RAID5 fragments to four providers (RACS/HyRD),
those transfers *share the client's access link* while each is additionally
capped by the per-provider WAN bandwidth.  That contention is exactly what
makes replication of large files slow and striping fast, so we model it
explicitly rather than assuming perfect parallelism.

The model is *progressive filling* (max-min fairness, the standard TCP
idealisation): at every instant each active transfer receives
``min(remote_cap, fair share of the access link)``, where link capacity left
unused by capped transfers is redistributed to the others (water-filling).
Rates are piecewise constant between events (a transfer activating after its
RTT, or a transfer draining), so the simulation advances event-to-event in
closed form — no time stepping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TransferSpec", "TransferResult", "simulate_transfers", "total_elapsed"]

_EPS_BYTES = 1e-6  # transfers with fewer remaining bytes are considered drained


@dataclass(frozen=True)
class TransferSpec:
    """One data transfer.

    Parameters
    ----------
    start_delay:
        Seconds before the first byte flows (request RTT + provider
        processing).  The transfer occupies no bandwidth during this window.
    size_bytes:
        Payload size.  Zero-byte transfers finish exactly at ``start_delay``.
    remote_cap:
        Sustained bytes/second the remote endpoint can serve; ``math.inf``
        means the access link is the only bottleneck.
    """

    start_delay: float
    size_bytes: float
    remote_cap: float = math.inf

    def __post_init__(self) -> None:
        if self.start_delay < 0:
            raise ValueError(f"start_delay must be >= 0, got {self.start_delay}")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if self.remote_cap <= 0:
            raise ValueError(f"remote_cap must be > 0, got {self.remote_cap}")


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one :class:`TransferSpec` (same list position)."""

    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


def _waterfill_rates(caps: list[float], link_capacity: float) -> list[float]:
    """Max-min fair rates for transfers with per-transfer caps on one link.

    Classic water-filling: process transfers in ascending cap order; each is
    granted ``min(cap, remaining/m)`` where ``m`` counts transfers not yet
    granted.  Capped transfers return their unused share to the pool.
    """
    n = len(caps)
    rates = [0.0] * n
    remaining = link_capacity
    m = n
    for idx in sorted(range(n), key=lambda i: caps[i]):
        share = remaining / m
        rate = min(caps[idx], share)
        rates[idx] = rate
        remaining -= rate
        m -= 1
    return rates


def simulate_transfers(
    specs: list[TransferSpec], link_capacity: float
) -> list[TransferResult]:
    """Simulate concurrent transfers over one shared access link.

    Returns one :class:`TransferResult` per spec, in input order.  Times are
    relative to the instant the batch is issued (t=0).
    """
    if link_capacity <= 0:
        raise ValueError(f"link_capacity must be > 0, got {link_capacity}")
    n = len(specs)
    if n == 0:
        return []

    remaining = [float(s.size_bytes) for s in specs]
    start = [float(s.start_delay) for s in specs]
    finish: list[float] = [math.nan] * n

    # Zero-byte transfers never occupy bandwidth.
    pending: list[int] = []
    for i, s in enumerate(specs):
        if remaining[i] <= _EPS_BYTES:
            finish[i] = start[i]
        else:
            pending.append(i)
    pending.sort(key=lambda i: start[i])

    active: list[int] = []
    now = 0.0
    p = 0  # cursor into pending activations
    while active or p < len(pending):
        if not active:
            # Idle until the next activation.
            now = max(now, start[pending[p]])
        # Activate everything whose RTT window has elapsed.
        while p < len(pending) and start[pending[p]] <= now + 1e-12:
            active.append(pending[p])
            p += 1

        caps = [specs[i].remote_cap for i in active]
        rates = _waterfill_rates(caps, link_capacity)

        # Next event: either a transfer drains or a new one activates.
        dt_drain = math.inf
        for k, i in enumerate(active):
            if rates[k] > 0:
                dt_drain = min(dt_drain, remaining[i] / rates[k])
        dt_activate = math.inf
        if p < len(pending):
            dt_activate = start[pending[p]] - now
        dt = min(dt_drain, dt_activate)
        if not math.isfinite(dt):  # pragma: no cover - defensive
            raise RuntimeError("bandwidth simulation stalled (no progress possible)")

        now += dt
        still_active: list[int] = []
        for k, i in enumerate(active):
            remaining[i] -= rates[k] * dt
            if remaining[i] <= _EPS_BYTES:
                finish[i] = now
            else:
                still_active.append(i)
        active = still_active

    return [TransferResult(start_time=start[i], finish_time=finish[i]) for i in range(n)]


def total_elapsed(specs: list[TransferSpec], link_capacity: float) -> float:
    """Wall-clock time until the last transfer in the batch completes."""
    results = simulate_transfers(specs, link_capacity)
    if not results:
        return 0.0
    return max(r.finish_time for r in results)
