"""Deterministic random-stream management.

All stochastic components (latency jitter, workload generators, outage
schedules) draw from :class:`numpy.random.Generator` streams derived from a
single root seed plus a tuple of string labels.  Two components that derive
their streams with different labels are statistically independent, and the
whole experiment is reproducible from one integer.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_u64(*parts: object) -> int:
    """Hash arbitrary labels to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so it cannot be used for
    reproducible seeding; we use blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "little")


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return an independent Generator for ``(seed, *labels)``.

    Example::

        rng = make_rng(42, "latency", "aliyun")
    """
    ss = np.random.SeedSequence([seed & 0xFFFFFFFF, stable_u64(*labels) & 0xFFFFFFFF,
                                 (stable_u64(*labels) >> 32) & 0xFFFFFFFF])
    return np.random.default_rng(ss)


def spawn_rngs(seed: int, count: int, *labels: object) -> list[np.random.Generator]:
    """Return ``count`` mutually independent generators under one label set."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [make_rng(seed, *labels, i) for i in range(count)]
