"""A small discrete-event loop.

Used by the outage scheduler and the recovery drill example; the bandwidth
model has its own specialised event loop in :mod:`repro.sim.bandwidth` for
speed.  Events scheduled for the same instant fire in scheduling order
(stable), which keeps traces deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.clock import SimClock


class EventLoop:
    """Priority-queue event loop driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def schedule(self, at: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``at``; returns a handle."""
        if at < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, at={at}"
            )
        handle = next(self._counter)
        heapq.heappush(self._heap, (float(at), handle, callback))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        self._cancelled.add(handle)

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Fire the next pending event; returns False when the queue is empty."""
        while self._heap:
            at, handle, callback = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.clock.advance_to(at)
            callback()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire every event at or before ``deadline`` and leave the clock there."""
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)

    def run(self) -> None:
        """Fire all pending events."""
        while self.step():
            pass
