"""A small discrete-event loop.

Used by the outage scheduler, the recovery drill example, the maintenance
plane and the multi-tenant service plane; the bandwidth model has its own
specialised event loop in :mod:`repro.sim.bandwidth` for speed.  Events
scheduled for the same instant fire in scheduling order (stable), which
keeps traces deterministic.

Events may carry a ``label``; when a handler raises, the loop attaches the
label and the scheduled/fired sim times to the exception as a note (PEP 678)
before re-raising, so a frontend-handler failure deep inside a campaign
names the event that fired it instead of surfacing as a bare traceback.
The exception object itself is re-raised unchanged — ``except SomeError``
handlers around :meth:`EventLoop.run` keep working.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


from repro.sim.clock import SimClock


def _annotate(exc: BaseException, label: str | None, at: float, now: float) -> None:
    """Attach the scheduled-event context to ``exc`` as a PEP 678 note."""
    add_note = getattr(exc, "add_note", None)
    if add_note is None:  # pragma: no cover - Python < 3.11
        return
    what = f"event {label!r}" if label else "unlabeled event"
    when = f"scheduled for t={at:g}"
    if now != at:
        when += f", fired at t={now:g}"
    add_note(f"while firing {what} ({when}) on the sim event loop")


class RecurringEvent:
    """Cancellable handle for a :meth:`EventLoop.schedule_every` registration.

    Reschedules itself ``interval`` seconds after each firing; ``cancel()``
    stops the cycle (including a pending occurrence).
    """

    def __init__(
        self,
        loop: "EventLoop",
        interval: float,
        callback: Callable[[], None],
        label: str | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._loop = loop
        self.interval = float(interval)
        self._callback = callback
        self.label = label
        self._handle: int | None = None
        self.active = True
        self.fired = 0

    def _arm(self, at: float) -> None:
        self._handle = self._loop.schedule(at, self._fire, label=self.label)

    def _fire(self) -> None:
        self._handle = None
        if not self.active:
            return
        self._callback()
        self.fired += 1
        if self.active:  # the callback itself may have cancelled us
            self._arm(self._loop.clock.now + self.interval)

    def cancel(self) -> None:
        """Stop recurring; safe to call more than once."""
        self.active = False
        if self._handle is not None:
            self._loop.cancel(self._handle)
            self._handle = None


class EventLoop:
    """Priority-queue event loop driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()
        #: handle -> label, kept only for labelled events still pending
        self._labels: dict[int, str] = {}

    def schedule(
        self, at: float, callback: Callable[[], None], *, label: str | None = None
    ) -> int:
        """Schedule ``callback`` at absolute time ``at``; returns a handle.

        ``label`` names the event in exception notes (and costs nothing when
        omitted) — give recurring subsystem ticks and service-plane pumps a
        label so their failures are attributable.
        """
        if at < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, at={at}"
            )
        handle = next(self._counter)
        heapq.heappush(self._heap, (float(at), handle, callback))
        self._pending.add(handle)
        if label is not None:
            self._labels[handle] = label
        return handle

    def schedule_in(
        self, delay: float, callback: Callable[[], None], *, label: str | None = None
    ) -> int:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, callback, label=label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        first: float | None = None,
        label: str | None = None,
    ) -> RecurringEvent:
        """Schedule ``callback`` every ``interval`` seconds.

        The first occurrence fires at ``first`` (absolute time) when given,
        otherwise ``interval`` seconds from now.  Returns a
        :class:`RecurringEvent` whose ``cancel()`` stops the cycle.
        """
        event = RecurringEvent(self, interval, callback, label=label)
        event._arm(self.clock.now + interval if first is None else first)
        return event

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        # Only remember handles that are actually still pending: cancelling a
        # fired handle must not grow ``_cancelled`` forever.
        if handle in self._pending:
            self._cancelled.add(handle)
            self._labels.pop(handle, None)

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Fire the next pending event; returns False when the queue is empty."""
        while self._heap:
            at, handle, callback = heapq.heappop(self._heap)
            self._pending.discard(handle)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            label = self._labels.pop(handle, None)
            # The clock may already sit past ``at`` when it is shared with
            # foreground traffic (the maintenance plane pumps due events after
            # each foreground op); fire late events at the current instant
            # rather than trying to move time backwards.
            if at > self.clock.now:
                self.clock.advance_to(at)
            try:
                callback()
            except BaseException as exc:
                _annotate(exc, label, at, self.clock.now)
                raise
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire every event at or before ``deadline`` and leave the clock there."""
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)

    def run(self) -> None:
        """Fire all pending events."""
        while self.step():
            pass
