"""A small discrete-event loop.

Used by the outage scheduler, the recovery drill example and the maintenance
plane; the bandwidth model has its own specialised event loop in
:mod:`repro.sim.bandwidth` for speed.  Events scheduled for the same instant
fire in scheduling order (stable), which keeps traces deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.clock import SimClock


class RecurringEvent:
    """Cancellable handle for a :meth:`EventLoop.schedule_every` registration.

    Reschedules itself ``interval`` seconds after each firing; ``cancel()``
    stops the cycle (including a pending occurrence).
    """

    def __init__(
        self, loop: "EventLoop", interval: float, callback: Callable[[], None]
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._loop = loop
        self.interval = float(interval)
        self._callback = callback
        self._handle: int | None = None
        self.active = True
        self.fired = 0

    def _arm(self, at: float) -> None:
        self._handle = self._loop.schedule(at, self._fire)

    def _fire(self) -> None:
        self._handle = None
        if not self.active:
            return
        self._callback()
        self.fired += 1
        if self.active:  # the callback itself may have cancelled us
            self._arm(self._loop.clock.now + self.interval)

    def cancel(self) -> None:
        """Stop recurring; safe to call more than once."""
        self.active = False
        if self._handle is not None:
            self._loop.cancel(self._handle)
            self._handle = None


class EventLoop:
    """Priority-queue event loop driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()

    def schedule(self, at: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``at``; returns a handle."""
        if at < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, at={at}"
            )
        handle = next(self._counter)
        heapq.heappush(self._heap, (float(at), handle, callback))
        self._pending.add(handle)
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        first: float | None = None,
    ) -> RecurringEvent:
        """Schedule ``callback`` every ``interval`` seconds.

        The first occurrence fires at ``first`` (absolute time) when given,
        otherwise ``interval`` seconds from now.  Returns a
        :class:`RecurringEvent` whose ``cancel()`` stops the cycle.
        """
        event = RecurringEvent(self, interval, callback)
        event._arm(self.clock.now + interval if first is None else first)
        return event

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        # Only remember handles that are actually still pending: cancelling a
        # fired handle must not grow ``_cancelled`` forever.
        if handle in self._pending:
            self._cancelled.add(handle)

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Fire the next pending event; returns False when the queue is empty."""
        while self._heap:
            at, handle, callback = heapq.heappop(self._heap)
            self._pending.discard(handle)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            # The clock may already sit past ``at`` when it is shared with
            # foreground traffic (the maintenance plane pumps due events after
            # each foreground op); fire late events at the current instant
            # rather than trying to move time backwards.
            if at > self.clock.now:
                self.clock.advance_to(at)
            callback()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Fire every event at or before ``deadline`` and leave the clock there."""
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)

    def run(self) -> None:
        """Fire all pending events."""
        while self.step():
            pass
