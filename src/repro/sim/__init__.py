"""Simulation kernel: simulated clock, discrete events, RNG streams, and the
fair-share bandwidth model used to turn byte counts into transfer latency."""

from repro.sim.bandwidth import TransferResult, TransferSpec, simulate_transfers
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.rng import make_rng, spawn_rngs, stable_u64

__all__ = [
    "EventLoop",
    "SimClock",
    "TransferResult",
    "TransferSpec",
    "make_rng",
    "simulate_transfers",
    "spawn_rngs",
    "stable_u64",
]
