"""Scripted fault injection: composable per-provider fault profiles."""

from repro.faults.crash import ClientCrash, CrashPoint, CrashSchedule
from repro.faults.profile import (
    FaultEffect,
    FaultProfile,
    FlappingOutage,
    LatencyBrownout,
    NetworkPartition,
    SilentCorruption,
    Throttling,
    TransientErrorBurst,
)
from repro.faults.ledger import (
    CorruptionLedger,
    DamageEvent,
    inject_bit_rot,
    inject_loss,
)
from repro.faults.scenario import FaultScenario, make_fault_storm, partition_scenario

__all__ = [
    "ClientCrash",
    "CorruptionLedger",
    "CrashPoint",
    "CrashSchedule",
    "DamageEvent",
    "FaultEffect",
    "FaultProfile",
    "FaultScenario",
    "FlappingOutage",
    "LatencyBrownout",
    "NetworkPartition",
    "SilentCorruption",
    "Throttling",
    "TransientErrorBurst",
    "inject_bit_rot",
    "inject_loss",
    "make_fault_storm",
    "partition_scenario",
]
