"""Scripted fault injection: composable per-provider fault profiles."""

from repro.faults.profile import (
    FaultEffect,
    FaultProfile,
    FlappingOutage,
    LatencyBrownout,
    SilentCorruption,
    Throttling,
    TransientErrorBurst,
)
from repro.faults.ledger import (
    CorruptionLedger,
    DamageEvent,
    inject_bit_rot,
    inject_loss,
)
from repro.faults.scenario import FaultScenario, make_fault_storm

__all__ = [
    "CorruptionLedger",
    "DamageEvent",
    "FaultEffect",
    "FaultProfile",
    "FaultScenario",
    "FlappingOutage",
    "LatencyBrownout",
    "SilentCorruption",
    "Throttling",
    "TransientErrorBurst",
    "inject_bit_rot",
    "inject_loss",
    "make_fault_storm",
]
