"""Scripted fault injection: composable per-provider fault profiles."""

from repro.faults.profile import (
    FaultEffect,
    FaultProfile,
    FlappingOutage,
    LatencyBrownout,
    SilentCorruption,
    Throttling,
    TransientErrorBurst,
)
from repro.faults.scenario import FaultScenario, make_fault_storm

__all__ = [
    "FaultEffect",
    "FaultProfile",
    "FaultScenario",
    "FlappingOutage",
    "LatencyBrownout",
    "SilentCorruption",
    "Throttling",
    "TransientErrorBurst",
    "make_fault_storm",
]
