"""Scripted fault scenarios: named storms applied to a provider fleet.

A :class:`FaultScenario` maps provider names to :class:`FaultProfile`s and
installs them with one call, so an experiment reads as a script::

    scenario = make_fault_storm(t0=10.0, duration=600.0, seed=7)
    scenario.apply(providers)

:func:`make_fault_storm` builds the canonical mixed-mode storm used by the
resilience bench and acceptance tests: a latency brownout on the fastest
performance provider, a transient-error burst plus throttling on a second,
and a flapping outage on a third — all at once, which is exactly the regime
where fixed-count immediate retries fall over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.profile import (
    FaultProfile,
    FlappingOutage,
    LatencyBrownout,
    NetworkPartition,
    SilentCorruption,
    Throttling,
    TransientErrorBurst,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (provider imports us)
    from repro.cloud.provider import SimulatedProvider

__all__ = ["FaultScenario", "make_fault_storm", "partition_scenario"]


class FaultScenario:
    """A named set of per-provider fault profiles."""

    def __init__(self, name: str, profiles: dict[str, FaultProfile]) -> None:
        self.name = name
        self.profiles = dict(profiles)

    def apply(self, providers: dict[str, SimulatedProvider]) -> None:
        """Install every profile onto its provider (unknown names raise)."""
        for pname, profile in self.profiles.items():
            if pname not in providers:
                raise KeyError(f"scenario {self.name!r}: no provider {pname!r}")
            providers[pname].faults = profile.bind(pname)

    def clear(self, providers: dict[str, SimulatedProvider]) -> None:
        """Remove the scenario's profiles (providers return to clean)."""
        for pname in self.profiles:
            if pname in providers:
                providers[pname].faults = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultScenario({self.name!r}, providers={sorted(self.profiles)})"


def make_fault_storm(
    t0: float = 0.0,
    duration: float = 3600.0,
    seed: int = 0,
    brownout_provider: str = "aliyun",
    burst_provider: str = "azure",
    flapping_provider: str = "rackspace",
    corruption_provider: str | None = None,
) -> FaultScenario:
    """The canonical three-front storm over the Table II fleet.

    - ``brownout_provider`` answers 6x slower (RTT) at a third of its
      bandwidth — up, but degraded enough that a health tracker should
      demote it from the performance class;
    - ``burst_provider`` bounces 35% of requests (500s) and throttles
      another 15% — retries with backoff ride it out;
    - ``flapping_provider`` cycles 40 s down / 80 s up — the circuit-breaker
      stress case;
    - optionally ``corruption_provider`` silently corrupts 20% of Gets —
      digest verification must route around it.
    """
    end = t0 + duration
    profiles = {
        brownout_provider: FaultProfile(
            [LatencyBrownout(t0, end, rtt_factor=6.0, bw_factor=0.33)], seed=seed
        ),
        burst_provider: FaultProfile(
            [
                TransientErrorBurst(t0, end, rate=0.35),
                Throttling(t0, end, rate=0.15),
            ],
            seed=seed,
        ),
        flapping_provider: FaultProfile(
            [FlappingOutage(t0, end, period=120.0, downtime=40.0)], seed=seed
        ),
    }
    if corruption_provider is not None:
        profiles[corruption_provider] = FaultProfile(
            [SilentCorruption(t0, end, rate=0.2)], seed=seed
        )
    return FaultScenario("fault-storm", profiles)


def partition_scenario(
    windows: list[tuple[float, float, list[str]]],
    seed: int = 0,
    name: str = "partition",
) -> FaultScenario:
    """Per-provider reachability sets over sim-time windows.

    ``windows`` is a plan of ``(t0, t1, unreachable_providers)`` triples —
    during ``[t0, t1)`` the client cannot reach any provider in the set.
    Each named provider gets one :class:`NetworkPartition` effect per window
    it appears in, all folded into a single profile (a provider may only
    carry one profile at a time).
    """
    per: dict[str, list[NetworkPartition]] = {}
    for t0, t1, unreachable in windows:
        for pname in unreachable:
            per.setdefault(pname, []).append(NetworkPartition(t0, t1))
    return FaultScenario(
        name,
        {pname: FaultProfile(list(effects), seed=seed) for pname, effects in per.items()},
    )
