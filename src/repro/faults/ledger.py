"""Ground-truth damage ledger: what the fault layer *actually* injected.

The scrubber's claim is "I detect silent damage before a client read does".
That claim is only testable against ground truth, so every injection helper
here records a :class:`DamageEvent` into a :class:`CorruptionLedger`, and the
maintenance benchmarks score detection as ``found ∩ injected`` — the
acceptance bar is 100% of persistent damage detected, zero false positives
on clean providers.

Two families of damage:

- **Persistent** (this module's injectors): :func:`inject_bit_rot` flips a
  byte of the *stored* object via :meth:`ObjectStore.tamper
  <repro.cloud.objectstore.ObjectStore.tamper>` (optionally truncating
  instead), :func:`inject_loss` makes the stored object vanish.  Neither
  bumps versions nor leaves a metering trail — only end-to-end digest
  verification can see them.
- **Transient** (:class:`~repro.faults.profile.SilentCorruption`): per-Get
  corruption of the returned copy.  When a profile carries a ledger
  (:meth:`FaultProfile.attach_ledger
  <repro.faults.profile.FaultProfile.attach_ledger>`), each corrupted Get is
  recorded as a ``served-corrupt`` event with the key it hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import SimulatedProvider

__all__ = [
    "DamageEvent",
    "CorruptionLedger",
    "inject_bit_rot",
    "inject_loss",
]

#: Damage kinds that persist in the store (vs corrupting one served copy).
PERSISTENT_KINDS = frozenset({"corrupt", "truncated", "lost"})


@dataclass(frozen=True)
class DamageEvent:
    """One injected damage: where, what kind, when."""

    provider: str
    container: str
    key: str
    kind: str  # "corrupt" | "truncated" | "lost" | "served-corrupt"
    injected_at: float

    @property
    def site(self) -> tuple[str, str, str]:
        """(provider, container, key) — the unit detection is scored at."""
        return (self.provider, self.container, self.key)


class CorruptionLedger:
    """Append-only record of injected damage, queryable by kind and site."""

    def __init__(self) -> None:
        self._events: list[DamageEvent] = []

    def record(self, event: DamageEvent) -> None:
        self._events.append(event)

    def events(self, kind: str | None = None) -> list[DamageEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def sites(self, *, persistent_only: bool = True) -> set[tuple[str, str, str]]:
        """Distinct damaged (provider, container, key) triples.

        ``persistent_only`` (the default) excludes ``served-corrupt`` events:
        a corrupted served copy leaves the stored object intact, so a scrub
        pass has nothing persistent to find there.
        """
        return {
            e.site
            for e in self._events
            if not persistent_only or e.kind in PERSISTENT_KINDS
        }

    def score_detection(
        self, found: Iterable[tuple[str, str, str]]
    ) -> dict[str, object]:
        """Score a scrub pass against the injected ground truth.

        ``found`` is the set of (provider, container, key) sites the scrubber
        flagged.  Returns ``injected`` / ``detected`` / ``missed`` counts,
        the missed sites themselves, and ``rate`` (1.0 when nothing was
        injected — an empty claim is vacuously complete).
        """
        truth = self.sites()
        found_set = set(found)
        detected = truth & found_set
        missed = truth - found_set
        rate = 1.0 if not truth else len(detected) / len(truth)
        return {
            "injected": len(truth),
            "detected": len(detected),
            "missed": sorted(missed),
            "rate": rate,
        }

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)


def _flip_byte(data: bytes, rng) -> bytes:
    corrupted = bytearray(data)
    pos = int(rng.integers(0, len(corrupted)))
    corrupted[pos] ^= 1 + int(rng.integers(0, 255))
    return bytes(corrupted)


def inject_bit_rot(
    provider: "SimulatedProvider",
    container: str,
    keys: Iterable[str],
    *,
    seed: int = 0,
    ledger: CorruptionLedger | None = None,
    now: float = 0.0,
    truncate: bool = False,
) -> list[DamageEvent]:
    """Persistently corrupt stored objects (one flipped byte each).

    With ``truncate=True`` the object is cut to half its length instead —
    the other persistent-corruption shape a digest audit must catch.  The
    RNG stream derives from ``(seed, "bit-rot", provider)`` so the same seed
    damages the same byte positions.  Empty objects are skipped (there is
    nothing to flip).  Returns the events (also recorded into ``ledger``).
    """
    rng = make_rng(seed, "bit-rot", provider.name)
    events: list[DamageEvent] = []
    for key in keys:
        data = bytes(provider.store.get(container, key).data)
        if not data:
            continue
        if truncate:
            damaged = data[: max(1, len(data) // 2)]
            if damaged == data:  # 1-byte objects cannot shrink; flip instead
                damaged, kind = _flip_byte(data, rng), "corrupt"
            else:
                kind = "truncated"
        else:
            damaged, kind = _flip_byte(data, rng), "corrupt"
        provider.store.tamper(container, key, damaged)
        event = DamageEvent(provider.name, container, key, kind, now)
        events.append(event)
        if ledger is not None:
            ledger.record(event)
    return events


def inject_loss(
    provider: "SimulatedProvider",
    container: str,
    keys: Iterable[str],
    *,
    ledger: CorruptionLedger | None = None,
    now: float = 0.0,
) -> list[DamageEvent]:
    """Silently delete stored objects (lost-fragment injection)."""
    events: list[DamageEvent] = []
    for key in keys:
        provider.store.vanish(container, key)
        event = DamageEvent(provider.name, container, key, "lost", now)
        events.append(event)
        if ledger is not None:
            ledger.record(event)
    return events
