"""Composable, seeded, sim-clock-driven fault profiles.

The seed models provider misbehaviour as a binary outage window
(:class:`~repro.cloud.outage.OutageSchedule`) plus one uniform
``fault_rate``.  Real multi-cloud failures are richer: throttling bursts,
latency *brownouts* (the provider answers, slowly), flapping outages and
silent corruption.  A :class:`FaultProfile` layers any mix of those effects
on top of the existing outage/fault machinery; the provider consults one
unified pipeline (:meth:`FaultProfile.is_out`,
:meth:`FaultProfile.extra_fault_rate`, :meth:`FaultProfile.latency_factors`,
:meth:`FaultProfile.maybe_corrupt`) so schemes never need to know which
effect fired.

Every effect is a frozen dataclass over *sim-time* windows, and every random
decision draws from a stream derived from the root seed — the same seed and
the same operation sequence reproduce the same faults, which is what makes
the resilience tests and benches assertable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng

__all__ = [
    "FaultEffect",
    "TransientErrorBurst",
    "Throttling",
    "LatencyBrownout",
    "FlappingOutage",
    "NetworkPartition",
    "SilentCorruption",
    "FaultProfile",
]


@dataclass(frozen=True)
class FaultEffect:
    """Base class: one provider misbehaviour over a half-open time window."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"end must be > start, got [{self.start}, {self.end})")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    # Effect hooks; subclasses override the ones they implement. ------------
    def extra_fault_rate(self, t: float) -> float:
        """Additional per-request transient-failure probability at ``t``."""
        return 0.0

    def is_out(self, t: float) -> bool:
        """True when the effect makes the provider unreachable at ``t``."""
        return False

    def latency_factors(self, t: float) -> tuple[float, float]:
        """(rtt multiplier, bandwidth multiplier) contributed at ``t``."""
        return (1.0, 1.0)

    def corruption_rate(self, t: float) -> float:
        """Probability that a Get at ``t`` returns silently corrupted bytes."""
        return 0.0

    def downtime_windows(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Half-open ``[start, end)`` intervals in ``[t0, t1)`` where
        :meth:`is_out` is true — the ground truth the SLO tracker's observed
        MTBF/MTTR is checked against.

        The default derives the answer from :meth:`is_out` itself: an effect
        that overrides ``is_out`` is down for its whole active window (so new
        down-taking effects contribute truth without extra code), while
        effects that never take the provider down contribute nothing.  An
        effect whose ``is_out`` has a *duty cycle* inside the window must
        override this with the precise sub-intervals (FlappingOutage does).
        """
        if type(self).is_out is FaultEffect.is_out:
            return []
        lo, hi = max(t0, self.start), min(t1, self.end)
        return [(lo, hi)] if hi > lo else []


@dataclass(frozen=True)
class TransientErrorBurst(FaultEffect):
    """A window where individual requests fail (HTTP 500s) at ``rate``."""

    rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")

    def extra_fault_rate(self, t: float) -> float:
        return self.rate if self.active(t) else 0.0


@dataclass(frozen=True)
class Throttling(TransientErrorBurst):
    """Admission-control rejections (HTTP 429/503-with-retry-after).

    Mechanically identical to a transient-error burst — a fraction of
    requests bounce and the client must retry — but kept as its own type so
    scenarios read like the incident reports they model.
    """


@dataclass(frozen=True)
class LatencyBrownout(FaultEffect):
    """The provider stays up but slows down: RTT and bandwidth degrade.

    ``rtt_factor`` multiplies the request round trip; ``bw_factor``
    multiplies sustained throughput (use < 1.0 to shrink it).  This is the
    degradation mode the binary outage model cannot express, and the one the
    health tracker exists to catch.
    """

    rtt_factor: float = 1.0
    bw_factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rtt_factor < 1.0:
            raise ValueError(f"rtt_factor must be >= 1, got {self.rtt_factor}")
        if not (0.0 < self.bw_factor <= 1.0):
            raise ValueError(f"bw_factor must be in (0, 1], got {self.bw_factor}")

    def latency_factors(self, t: float) -> tuple[float, float]:
        if not self.active(t):
            return (1.0, 1.0)
        return (self.rtt_factor, self.bw_factor)


@dataclass(frozen=True)
class FlappingOutage(FaultEffect):
    """The provider goes up and down on a deterministic duty cycle.

    Within ``[start, end)`` the provider is *down* for the first
    ``downtime`` seconds of every ``period``-second cycle.  Flapping is what
    stresses a circuit breaker's half-open logic: a plain outage window trips
    it once, a flapper trips it repeatedly.
    """

    period: float = 60.0
    downtime: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if not (0.0 < self.downtime < self.period):
            raise ValueError(
                f"downtime must be in (0, period), got {self.downtime}"
            )

    def is_out(self, t: float) -> bool:
        if not self.active(t):
            return False
        return (t - self.start) % self.period < self.downtime

    def next_up(self, t: float) -> float:
        """First instant >= ``t`` at which the flapper is up (for tests)."""
        while self.is_out(t):
            phase = (t - self.start) % self.period
            t += self.downtime - phase
        return t

    def downtime_windows(self, t0: float, t1: float) -> list[tuple[float, float]]:
        lo, hi = max(t0, self.start), min(t1, self.end)
        if hi <= lo:
            return []
        windows: list[tuple[float, float]] = []
        # First cycle whose down phase could intersect [lo, hi).
        k = int((lo - self.start) // self.period)
        while True:
            down_start = self.start + k * self.period
            if down_start >= hi:
                break
            down_end = min(down_start + self.downtime, self.end)
            a, b = max(down_start, lo), min(down_end, hi)
            if b > a:
                windows.append((a, b))
            k += 1
        return windows


@dataclass(frozen=True)
class NetworkPartition(FaultEffect):
    """The client cannot reach the provider for the whole window.

    From the client's seat a partition is indistinguishable from a provider
    outage — every request times out — but it is a *network* fact: the
    provider is up, serving other clients, and its stored state is intact
    and ageing.  Partition windows therefore contribute to
    ``downtime_windows`` ground truth (via the base-class default) exactly
    like real outages, which is what keeps SLO downtime ledgers honest when
    the chaos engine scripts reachability, not provider health.
    """

    def is_out(self, t: float) -> bool:
        return self.active(t)


@dataclass(frozen=True)
class SilentCorruption(FaultEffect):
    """A window where Gets return bit-flipped payloads at ``rate``.

    The provider reports success; only end-to-end verification (the
    per-fragment digests, HAIL-style) can catch it.
    """

    rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def corruption_rate(self, t: float) -> float:
        return self.rate if self.active(t) else 0.0


class FaultProfile:
    """A provider's scripted misbehaviour: an ordered list of effects.

    One profile belongs to one provider; :meth:`bind` derives its RNG stream
    from ``(seed, "fault-profile", provider_name)`` so two providers given
    structurally identical profiles still fail independently.
    """

    def __init__(self, effects: list[FaultEffect] | None = None, seed: int = 0) -> None:
        self.effects: list[FaultEffect] = list(effects or [])
        self.seed = seed
        self._rng: np.random.Generator = make_rng(seed, "fault-profile", "unbound")
        self.provider_name = "unbound"
        #: optional ground-truth sink (:class:`repro.faults.ledger.CorruptionLedger`);
        #: when set, every corrupted Get is recorded as a ``served-corrupt`` event.
        self.ledger = None

    def bind(self, provider_name: str) -> "FaultProfile":
        """Attach the profile to a provider (re-keys the RNG stream)."""
        self._rng = make_rng(self.seed, "fault-profile", provider_name)
        self.provider_name = provider_name
        return self

    def attach_ledger(self, ledger) -> "FaultProfile":
        """Record every corruption this profile inflicts into ``ledger``."""
        self.ledger = ledger
        return self

    def add(self, effect: FaultEffect) -> "FaultProfile":
        self.effects.append(effect)
        return self

    # ------------------------------------------------------ unified pipeline
    def is_out(self, t: float) -> bool:
        return any(e.is_out(t) for e in self.effects)

    def extra_fault_rate(self, t: float) -> float:
        """Combined transient-failure probability from every active effect.

        Independent failure sources compose as ``1 - prod(1 - r_i)``.
        """
        ok = 1.0
        for e in self.effects:
            ok *= 1.0 - e.extra_fault_rate(t)
        return 1.0 - ok

    def latency_factors(self, t: float) -> tuple[float, float]:
        """(rtt multiplier, bandwidth multiplier), compounded across effects."""
        rtt_f, bw_f = 1.0, 1.0
        for e in self.effects:
            r, b = e.latency_factors(t)
            rtt_f *= r
            bw_f *= b
        return rtt_f, bw_f

    def corruption_rate(self, t: float) -> float:
        ok = 1.0
        for e in self.effects:
            ok *= 1.0 - e.corruption_rate(t)
        return 1.0 - ok

    def downtime_windows(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Merged ``[start, end)`` intervals in ``[t0, t1)`` where any effect
        takes the provider down (union across effects, overlaps coalesced)."""
        raw = sorted(
            w for e in self.effects for w in e.downtime_windows(t0, t1)
        )
        merged: list[tuple[float, float]] = []
        for a, b in raw:
            if merged and a <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        return merged

    def maybe_corrupt(
        self, data: bytes, t: float, where: tuple[str, str] | None = None
    ) -> bytes:
        """Possibly bit-flip ``data`` for a Get at ``t`` (never in place).

        ``where`` is the (container, key) being served; when a ledger is
        attached (:meth:`attach_ledger`) and the draw corrupts, the event is
        recorded so detection can be scored against ground truth.
        """
        rate = self.corruption_rate(t)
        if rate <= 0.0 or not data:
            return data
        if self._rng.random() >= rate:
            return data
        corrupted = bytearray(data)
        pos = int(self._rng.integers(0, len(corrupted)))
        corrupted[pos] ^= 1 + int(self._rng.integers(0, 255))
        if self.ledger is not None and where is not None:
            from repro.faults.ledger import DamageEvent

            self.ledger.record(
                DamageEvent(self.provider_name, where[0], where[1], "served-corrupt", t)
            )
        return bytes(corrupted)

    def __bool__(self) -> bool:
        return bool(self.effects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = [type(e).__name__ for e in self.effects]
        return f"FaultProfile({kinds})"
