"""Scripted client-crash injection.

The schemes are client-side middleware, so the client itself is a single
point of failure the paper's provider-outage model never covers: a process
that dies between two cloud requests of one scheme operation leaves torn
stripes, orphaned fragments and a namespace that was never published.  This
module gives that failure mode a deterministic vocabulary:

- a *step* is one :class:`~repro.schemes.base.CloudOp` processed by the
  scheme engine's phase executor (``Scheme._run_phase``) — the finest grain
  at which a real client can die between externally visible effects;
- a :class:`CrashPoint` names one step by its 1-based ordinal in the
  client's lifetime stream of cloud requests;
- a :class:`CrashSchedule` holds a sorted set of crash points and a
  monotone op counter.  Installed on a scheme
  (``scheme.install_crash_schedule``), the engine ticks the counter once
  per step and raises :class:`ClientCrash` *before* applying the scheduled
  step — everything before it happened, the step itself and everything
  after it did not.

Determinism: the schedule is pure counting — no RNG, no clock access — so
the same seed-derived ordinals kill the client at the same instruction
every run, which is what lets the chaos engine replay an episode
byte-for-byte and lets the property tests enumerate *every* crash point of
a write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["ClientCrash", "CrashPoint", "CrashSchedule"]


class ClientCrash(Exception):
    """The simulated client process died between two cloud requests.

    Raised by the scheme engine when an installed :class:`CrashSchedule`
    fires.  It is *not* a :class:`~repro.cloud.errors.CloudError`: no retry
    loop or degraded path may swallow it — the exception unwinds the whole
    operation, exactly like a SIGKILL unwinds a process.  Whoever drives the
    scheme (the chaos engine, a test) catches it, discards the dead client
    and builds a fresh one over the same providers.
    """

    def __init__(self, at_op: int, provider: str = "", kind: str = "") -> None:
        self.at_op = at_op
        self.provider = provider
        self.kind = kind
        where = f" (next step: {kind} @ {provider})" if provider else ""
        super().__init__(f"client crashed at cloud-op #{at_op}{where}")


@dataclass(frozen=True)
class CrashPoint:
    """Kill the client immediately before its ``at_op``-th cloud request."""

    at_op: int

    def __post_init__(self) -> None:
        if self.at_op < 1:
            raise ValueError(f"at_op must be >= 1, got {self.at_op}")


class CrashSchedule:
    """A deterministic kill list over the client's cloud-request stream.

    The counter is *owned by the schedule*, not the scheme: carrying the
    same schedule object across a client rebuild continues the count where
    the dead client left off, so one schedule can script several crashes
    into one episode.  Recovery code runs with the schedule disarmed
    (``scheme.install_crash_schedule(None)``) — a recovering client that
    kept dying at the same ordinal could never make progress.
    """

    def __init__(self, points: Iterable[int | CrashPoint] = ()) -> None:
        ordinals = sorted(
            {p.at_op if isinstance(p, CrashPoint) else int(p) for p in points}
        )
        for o in ordinals:
            if o < 1:
                raise ValueError(f"crash ordinals must be >= 1, got {o}")
        self._pending: list[int] = ordinals
        self._next = 0  # index into _pending
        #: cloud-op steps ticked so far (across client rebuilds)
        self.ops_seen = 0
        #: ordinals at which a crash actually fired
        self.fired: list[int] = []

    @property
    def pending(self) -> tuple[int, ...]:
        """Crash ordinals not yet reached."""
        return tuple(self._pending[self._next:])

    def tick(self) -> bool:
        """Count one engine step; True when this step is a scheduled kill."""
        self.ops_seen += 1
        hit = False
        while (
            self._next < len(self._pending)
            and self._pending[self._next] <= self.ops_seen
        ):
            self._next += 1
            hit = True
        if hit:
            self.fired.append(self.ops_seen)
        return hit

    def exhausted(self) -> bool:
        return self._next >= len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashSchedule(ops_seen={self.ops_seen}, fired={self.fired}, "
            f"pending={list(self.pending)})"
        )
