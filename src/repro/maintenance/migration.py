"""Evaluator-driven live migration: re-stripe data the policy moved on.

HyRD's placement is a function of the cost/performance ranking (§III-B):
when :class:`~repro.core.evaluator.CostPerformanceEvaluator` re-ranks the
fleet — or the operator retires a provider — existing objects are suddenly
*misplaced*: their hot fragments sit on what is now a cold provider, or
worse, on one scheduled for decommission.  The original reproduction
migrated eagerly and synchronously, stalling the caller for the whole
namespace.  This engine makes migration a background workload instead:
a FIFO of misplaced paths drained a few keys per maintenance cycle under
the shared bandwidth budget, each key re-placed atomically through
:meth:`Scheme.migrate_object <repro.schemes.base.Scheme.migrate_object>`
(the namespace flips only after the new placement is fully written), so the
process is incremental, resumable, and safe to interrupt at any point.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable

from repro.cloud.errors import CloudError
from repro.schemes.base import DataUnavailable

from repro.maintenance.budget import TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import Scheme

__all__ = ["LiveMigrationEngine"]


class LiveMigrationEngine:
    """Incremental re-placement queue drained under the bandwidth budget."""

    def __init__(
        self,
        scheme: "Scheme",
        budget: TokenBucket,
        *,
        keys_per_cycle: int = 4,
    ) -> None:
        if keys_per_cycle < 1:
            raise ValueError(f"keys_per_cycle must be >= 1, got {keys_per_cycle}")
        self.scheme = scheme
        self.budget = budget
        self.keys_per_cycle = keys_per_cycle
        self._queue: deque[str] = deque()
        self._queued: set[str] = set()
        self.migrated: list[str] = []

    # ---------------------------------------------------------------- planning
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending_paths(self) -> list[str]:
        return list(self._queue)

    def plan(self, paths: Iterable[str]) -> int:
        """Queue paths for re-placement (deduplicated); returns count added."""
        registry = self.scheme.registry
        added = 0
        for path in paths:
            if path in self._queued:
                continue
            self._queued.add(path)
            self._queue.append(path)
            registry.counter("migration_enqueued_total").inc()
            added += 1
        if added:
            self._publish_pending()
        return added

    def sync_policy(self) -> int:
        """Re-plan after an evaluator re-rank; returns paths newly queued.

        Schemes that know their own placement policy expose
        ``misplaced_paths()`` (HyRD does); schemes without a policy notion
        have nothing to migrate on a re-rank.
        """
        misplaced = getattr(self.scheme, "misplaced_paths", None)
        if misplaced is None:
            return 0
        return self.plan(misplaced())

    def plan_decommission(self, provider: str) -> int:
        """Queue everything with a placement on ``provider``."""
        on = getattr(self.scheme, "placements_on", None)
        if on is not None:
            paths = on(provider)
        else:
            paths = [
                entry.path
                for entry in (
                    self.scheme.namespace.get(p)
                    for p in self.scheme.namespace.paths()
                )
                if any(prov == provider for prov, _ in entry.placements)
            ]
        return self.plan(paths)

    def _publish_pending(self) -> None:
        self.scheme.registry.gauge("migration_pending").set(len(self._queue))

    # --------------------------------------------------------------- execution
    def run_cycle(self) -> int:
        """Migrate up to ``keys_per_cycle`` queued paths; returns completions.

        A path whose migration fails transiently (provider outage mid-write)
        goes back to the tail of the queue — progress already made is safe
        because the namespace only flips per completed key.
        """
        registry = self.scheme.registry
        done = 0
        attempts = 0
        while self._queue and attempts < self.keys_per_cycle:
            path = self._queue[0]
            entry = self.scheme.namespace.lookup(path)
            if entry is None:  # removed while queued
                self._queue.popleft()
                self._queued.discard(path)
                continue
            # Read + rewrite: ~2x the object's logical size, trued up below.
            estimate = 2 * entry.size
            if not self.budget.try_take(estimate):
                registry.counter("repair_budget_throttled_total").inc()
                break
            attempts += 1
            self._queue.popleft()
            try:
                report = self.scheme.migrate_object(path)
            except FileNotFoundError:
                self.budget.settle(estimate, 0)
                self._queued.discard(path)
                continue
            except (DataUnavailable, CloudError):
                self.budget.settle(estimate, 0)
                registry.counter("migration_failed_total").inc()
                self._queue.append(path)  # retry next cycle, keep dedupe mark
                continue
            self.budget.settle(estimate, report.bytes_up)
            self._queued.discard(path)
            registry.counter("migration_completed_total").inc()
            registry.counter("migration_bytes_total").inc(report.bytes_up)
            self.migrated.append(path)
            done += 1
        self._publish_pending()
        return done

    def drain(self, *, max_cycles: int = 10_000) -> int:
        """Run cycles until the queue empties or stops making progress."""
        total = 0
        for _ in range(max_cycles):
            if not self._queue:
                break
            done = self.run_cycle()
            total += done
            if done == 0:
                break  # throttled or everything failing; caller decides
        return total
