"""Budgeted proactive repair: most-at-risk stripes first.

Scrub findings (and post-outage suspicions from breaker edges) become
tickets in a priority queue ordered by *remaining fault margin* — intact
placements beyond the reconstruction minimum, so an erasure stripe one
fragment from unreadable drains before a replica set that still has a spare
copy.  Execution is metered by the maintenance
:class:`~repro.maintenance.budget.TokenBucket`: each object's estimated
rewrite traffic is reserved up front and settled against the bytes actually
moved, so repair never starves foreground ops of uplink time.

Repairs that cannot finish (provider still down, key owned by a pending
write-log entry) are re-queued rather than dropped; repairs that *cannot
succeed* (too few intact placements to reconstruct) count as failed and wait
for the next scrub pass to re-discover the object once a provider returns.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.errors import CloudError
from repro.schemes.base import DataUnavailable, ObjectAudit, RepairResult

from repro.maintenance.budget import TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import Scheme

__all__ = ["ProactiveRepairScheduler", "RepairTicket", "REPAIR_TIME_BOUNDS"]

#: MTTR-friendly histogram bounds: detection-to-repair spans minutes, not
#: the sub-second latencies the default op buckets resolve
REPAIR_TIME_BOUNDS = (
    1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 4 * 3600.0, 24 * 3600.0,
)


@dataclass(order=True)
class RepairTicket:
    """One queued object; sorts by (margin, detection time, sequence)."""

    margin: int
    detected_at: float
    seq: int
    path: str = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class ProactiveRepairScheduler:
    """Priority repair queue executed under the bandwidth budget."""

    def __init__(self, scheme: "Scheme", budget: TokenBucket) -> None:
        self.scheme = scheme
        self.budget = budget
        self._heap: list[RepairTicket] = []
        self._queued: dict[str, RepairTicket] = {}
        self._seq = itertools.count()
        self.completed: list[RepairResult] = []

    # ----------------------------------------------------------------- queue
    def __len__(self) -> int:
        return len(self._queued)

    @property
    def pending_paths(self) -> list[str]:
        return sorted(self._queued)

    def enqueue_audit(self, audit: ObjectAudit) -> bool:
        """Queue an object whose audit shows damage; True when queued."""
        if audit.ok:
            return False
        self.enqueue(audit.path, margin=audit.margin)
        return True

    def enqueue(self, path: str, *, margin: int = 0) -> None:
        """Admit ``path`` (deduplicated; a riskier re-sighting re-sorts it)."""
        existing = self._queued.get(path)
        if existing is not None:
            if margin >= existing.margin:
                return  # already queued at equal or higher urgency
            existing.cancelled = True  # lazy deletion; re-push sharper ticket
            detected_at = existing.detected_at
        else:
            detected_at = self.scheme.clock.now
            self.scheme.registry.counter("repair_enqueued_total").inc()
        ticket = RepairTicket(
            margin=margin,
            detected_at=detected_at,
            seq=next(self._seq),
            path=path,
        )
        self._queued[path] = ticket
        heapq.heappush(self._heap, ticket)
        self._publish_depth()

    def _publish_depth(self) -> None:
        self.scheme.registry.gauge("repair_queue_depth").set(len(self._queued))

    def _pop(self) -> RepairTicket | None:
        while self._heap:
            ticket = heapq.heappop(self._heap)
            if ticket.cancelled:
                continue
            if self._queued.get(ticket.path) is ticket:
                del self._queued[ticket.path]
                return ticket
        return None

    def _estimate_bytes(self, path: str) -> int:
        """Upper-bound estimate of one object's repair traffic.

        The degraded read moves about the object's size down and the rewrite
        at most the object's size up — 2x size is a safe reservation that
        :meth:`TokenBucket.settle` trues up against the actual bytes.
        """
        entry = self.scheme.namespace.lookup(path)
        if entry is None:
            return 0
        return 2 * entry.size

    # ------------------------------------------------------------- execution
    def run_cycle(self, max_objects: int | None = None) -> list[RepairResult]:
        """Drain the queue while the budget admits work; returns results."""
        registry = self.scheme.registry
        results: list[RepairResult] = []
        deferred: list[RepairTicket] = []
        done = 0
        while max_objects is None or done < max_objects:
            if not self._queued:
                break
            head = self._heap[0]
            estimate = self._estimate_bytes(
                head.path if not head.cancelled else next(iter(self._queued))
            )
            if not self.budget.try_take(estimate):
                registry.counter("repair_budget_throttled_total").inc()
                break
            ticket = self._pop()
            if ticket is None:
                self.budget.settle(estimate, 0)
                break
            done += 1
            try:
                result = self.scheme.repair_object(ticket.path)
            except FileNotFoundError:
                self.budget.settle(estimate, 0)
                continue  # object removed since detection: nothing owed
            except (DataUnavailable, CloudError):
                self.budget.settle(estimate, 0)
                registry.counter("repair_failed_total").inc()
                continue  # next scrub pass re-discovers it when repairable
            self.budget.settle(estimate, result.bytes_written)
            registry.counter("repair_bytes_total").inc(result.bytes_written)
            if result.skipped_pending:
                registry.counter("repair_skipped_pending_total").inc(
                    len(result.skipped_pending)
                )
            if result.complete:
                registry.counter("repair_completed_total").inc()
                registry.histogram(
                    "repair_time_seconds", bounds=REPAIR_TIME_BOUNDS
                ).observe(self.scheme.clock.now - ticket.detected_at)
                self.completed.append(result)
            else:
                # Something remained unrepairable right now (provider down,
                # write-log ownership): keep the original detection time so
                # MTTR reflects the full exposure, and retry next cycle.
                deferred.append(ticket)
            results.append(result)
        for ticket in deferred:
            retry = RepairTicket(
                margin=ticket.margin,
                detected_at=ticket.detected_at,
                seq=next(self._seq),
                path=ticket.path,
            )
            self._queued[ticket.path] = retry
            heapq.heappush(self._heap, retry)
        self._publish_depth()
        return results
