"""Token-bucket bandwidth budget for background maintenance traffic.

Repair and migration rewrites are real uploads competing with foreground
writes for the client uplink; the repair-bandwidth trade-off literature
(Prakash et al.) treats scheduled repair traffic as a first-class workload
precisely because an unthrottled repair storm is its own availability
incident.  The bucket refills at ``rate`` bytes per *simulated* second up to
``capacity``; a maintenance cycle reserves an object's estimated traffic
before touching it and settles the difference afterwards, so background
bytes can never exceed the budget line for long — at most one object's
estimation error, carried as debt against future refill.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Byte budget refilling on the sim clock; ``rate=None`` is unlimited."""

    def __init__(self, rate: float | None, capacity: float, clock) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 or None, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.rate = rate
        self.capacity = float(capacity)
        self._clock = clock
        #: may go negative: an under-estimated reservation is settled as debt
        #: that future refill pays down before new work is admitted
        self._level = float(capacity)
        self._last_refill = clock.now

    @property
    def unlimited(self) -> bool:
        return self.rate is None

    def _refill(self) -> None:
        if self.rate is None:
            return
        now = self._clock.now
        if now > self._last_refill:
            self._level = min(
                self.capacity, self._level + (now - self._last_refill) * self.rate
            )
        self._last_refill = now

    def available(self) -> float:
        """Bytes currently spendable (refilled to the present instant)."""
        if self.rate is None:
            return float("inf")
        self._refill()
        return self._level

    def try_take(self, n: float) -> bool:
        """Reserve ``n`` bytes if the bucket covers them; False otherwise.

        Oversized single objects (``n > capacity``) are admitted when the
        bucket is full — otherwise they could never be repaired at all — and
        leave the bucket in debt, which throttles everything after them.
        """
        if self.rate is None:
            return True
        self._refill()
        if self._level >= n or (n > self.capacity and self._level >= self.capacity):
            self._level -= n
            return True
        return False

    def settle(self, reserved: float, actual: float) -> None:
        """Replace a reservation with the traffic actually moved."""
        if self.rate is None:
            return
        self._level = min(self.capacity, self._level + (reserved - actual))

    def time_until(self, n: float) -> float:
        """Sim seconds until ``n`` bytes are spendable (0 when they are)."""
        if self.rate is None:
            return 0.0
        self._refill()
        need = min(n, self.capacity) - self._level
        return max(0.0, need / self.rate)
