"""Budgeted orphan garbage collection.

Crash recovery (:meth:`Scheme.recover <repro.schemes.base.Scheme.recover>`)
discovers storage keys no namespace entry accounts for — fragments a dead
client scattered before its intent could commit, stale versions whose
cleanup never ran, forgotten hot copies.  Deleting them is pure background
hygiene: it competes with repair and migration traffic for the shared
:class:`~repro.maintenance.budget.TokenBucket`, never with foreground
reads.  The sweeper is a FIFO of ``(provider, container, key)`` deletions
drained one bounded slice per maintenance tick.

Deletes are control-plane requests (no payload), so the budget charge per
key is a nominal constant rather than object bytes — the bucket throttles
*request* pressure here, not bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.maintenance.budget import TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import Scheme

__all__ = ["OrphanSweeper"]

#: nominal budget charge per orphan delete (control-plane request)
_DELETE_COST_BYTES = 4096


class OrphanSweeper:
    """FIFO orphan-deletion queue drained under the shared budget."""

    def __init__(self, scheme: "Scheme", budget: TokenBucket) -> None:
        self.scheme = scheme
        self.budget = budget
        self._queue: deque[tuple[str, str, str]] = deque()
        self._queued: set[tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, provider: str, container: str, key: str) -> bool:
        """Queue one orphan key for deletion; False if already queued."""
        item = (provider, container, key)
        if item in self._queued:
            return False
        self._queued.add(item)
        self._queue.append(item)
        self._publish_depth()
        return True

    def pending(self) -> list[tuple[str, str, str]]:
        return list(self._queue)

    def _publish_depth(self) -> None:
        self.scheme.registry.gauge("orphan_gc_pending").set(len(self._queue))

    def run_cycle(self, max_keys: int | None = None) -> int:
        """Delete queued orphans while the budget admits work.

        Returns the number of keys removed this cycle.  Keys whose provider
        is unreachable are re-queued at the back — the next cycle retries
        them once the outage passes.  Keys that vanished on their own (a
        concurrent remove, a provider-side loss) are simply dropped.
        """
        registry = self.scheme.registry
        removed = 0
        attempts = len(self._queue) if max_keys is None else max_keys
        for _ in range(attempts):
            if not self._queue:
                break
            if not self.budget.try_take(_DELETE_COST_BYTES):
                registry.counter("repair_budget_throttled_total").inc()
                break
            provider, container, key = self._queue.popleft()
            self._queued.discard((provider, container, key))
            p = self.scheme.provider(provider)
            if not p.is_available():
                # Outage: nothing deletable now; retry next cycle.
                self.budget.settle(_DELETE_COST_BYTES, 0)
                self.enqueue(provider, container, key)
                continue
            if not p.store.has(container, key):
                self.budget.settle(_DELETE_COST_BYTES, 0)
                continue  # already gone: nothing owed
            from repro.schemes.base import CloudOp

            self.scheme._begin_op()
            phase = self.scheme._run_phase(
                [CloudOp(provider, "remove", container, key)]
            )
            report = self.scheme._end_op("gc", key)
            self.scheme.collector.add(report)
            ok = phase.outcomes[0].ok
            self.budget.settle(_DELETE_COST_BYTES, _DELETE_COST_BYTES if ok else 0)
            if ok:
                removed += 1
                registry.counter(
                    "orphan_gc_removed_total", provider=provider
                ).inc()
            else:
                self.enqueue(provider, container, key)
        self._publish_depth()
        return removed
