"""Anti-entropy scrubbing: find silent damage before a client read does.

The paper's recovery story (§III-C) is reactive — degraded reads during an
outage, a consistency update afterwards.  Nothing in it notices a silently
corrupted or lost fragment until a foreground read trips over the digest
mismatch.  The scrubber closes that gap: it walks the namespace on a
recurring schedule, audits every placement of each object through
:meth:`Scheme.verify_object <repro.schemes.base.Scheme.verify_object>`
(deep scrubs fetch and digest-verify; shallow scrubs only probe existence),
and hands damaged objects to the repair scheduler.

The walk is *resumable*: a cycle audits at most ``paths_per_cycle`` objects
and the cursor survives between cycles, so a huge namespace is scrubbed in
bounded slices rather than one unbounded burst of background reads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.schemes.base import DataUnavailable, ObjectAudit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import Scheme

__all__ = ["AntiEntropyScrubber"]


class AntiEntropyScrubber:
    """Recurring namespace walker auditing placements per provider."""

    def __init__(
        self,
        scheme: "Scheme",
        *,
        paths_per_cycle: int = 0,
        deep: bool = True,
    ) -> None:
        if paths_per_cycle < 0:
            raise ValueError(f"paths_per_cycle must be >= 0, got {paths_per_cycle}")
        self.scheme = scheme
        #: 0 means "the whole namespace every cycle"
        self.paths_per_cycle = paths_per_cycle
        self.deep = deep
        self._cursor: str | None = None  # last path audited (resumable walk)
        #: cumulative damaged sites seen, scored against the fault ledger:
        #: (provider, container, key) for every corrupt/missing finding
        self.found_sites: set[tuple[str, str, str]] = set()
        self.cycles = 0

    # ------------------------------------------------------------------ walk
    def _next_batch(self) -> list[str]:
        paths = self.scheme.namespace.paths()  # sorted
        if not paths:
            return []
        limit = self.paths_per_cycle or len(paths)
        if self._cursor is None:
            batch = paths[:limit]
        else:
            after = [p for p in paths if p > self._cursor]
            batch = after[:limit]
            if len(batch) < limit:  # wrap around
                batch += paths[: limit - len(batch)]
        return batch

    def audit_paths(self, paths: Iterable[str]) -> list[ObjectAudit]:
        """Audit specific paths now (targeted scrub after an outage edge)."""
        audits: list[ObjectAudit] = []
        registry = self.scheme.registry
        for path in paths:
            try:
                audit = self.scheme.verify_object(path, deep=self.deep)
            except FileNotFoundError:
                continue  # removed between listing and audit
            except DataUnavailable:
                continue  # nothing reachable to audit; next cycle retries
            audits.append(audit)
            registry.counter("scrub_objects_checked_total").inc()
            registry.counter("scrub_bytes_verified_total").inc(audit.bytes_verified)
            for f in audit.findings:
                registry.counter("scrub_findings_total", kind=f.kind).inc()
                if f.repairable:
                    self.found_sites.add(
                        (f.provider, self.scheme.container, f.key)
                    )
        return audits

    def run_cycle(self) -> list[ObjectAudit]:
        """Audit the next slice of the namespace; returns the audits."""
        batch = self._next_batch()
        audits = self.audit_paths(batch)
        if batch:
            self._cursor = batch[-1]
        self.cycles += 1
        self.scheme.registry.counter("scrub_cycles_total").inc()
        return audits

    def full_pass(self) -> list[ObjectAudit]:
        """Audit the entire namespace once, regardless of the cycle limit."""
        return self.audit_paths(self.scheme.namespace.paths())
