"""The maintenance plane: one background control loop, three engines.

:class:`MaintenancePlane` ties the anti-entropy scrubber, the budgeted
repair scheduler and the live migration engine to a recurring tick on a
:class:`~repro.sim.events.EventLoop` sharing the scheme's clock.  Each tick:

1. *Targeted* scrub of providers whose circuit breaker just closed after an
   open spell — the paths placed there are the ones an outage may have left
   damaged or write-logged, so they are audited first, without waiting for
   the full namespace walk to come around.
2. One resumable slice of the namespace-wide scrub.
3. Damaged audits feed the repair priority queue (most-at-risk first);
   the queue drains under the token-bucket bandwidth budget.
4. One bounded slice of the live migration queue, same budget.
5. Durability-risk gauges are republished: how many objects currently sit
   below full redundancy, and their accumulated exposure seconds.

Attachment is strictly opt-in (``scheme.attach_maintenance()``) and the
detached default is zero-cost: no foreground code path consults the plane,
draws RNG for it, or moves the clock on its behalf.  ``pause()`` keeps the
schedule but makes ticks no-ops — handy for change freezes; ``stop()``
unhooks everything, including the chained breaker listeners.

Ordering caveat: the plane *chains* each breaker's single ``listener`` slot
(preserving whatever was installed, e.g. the SLO tracker's transition hook).
Attach the SLO tracker **before** the maintenance plane — ``attach_slo``
overwrites the slot and would silently disconnect the plane's outage-edge
feed if called afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.events import EventLoop, RecurringEvent

from repro.maintenance.budget import TokenBucket
from repro.maintenance.gc import OrphanSweeper
from repro.maintenance.migration import LiveMigrationEngine
from repro.maintenance.repair import ProactiveRepairScheduler
from repro.maintenance.scrubber import AntiEntropyScrubber

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.ledger import CorruptionLedger
    from repro.schemes.base import ObjectAudit, Scheme

__all__ = ["MaintenanceConfig", "MaintenancePlane"]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs for the background plane; defaults suit the benchmark fleets."""

    #: sim seconds between maintenance ticks
    scrub_interval: float = 600.0
    #: namespace paths audited per tick (0 = the whole namespace each tick)
    scrub_paths_per_cycle: int = 0
    #: deep scrubs fetch + digest-verify; shallow only probe existence
    deep_scrub: bool = True
    #: feed damaged audits straight into the repair queue
    auto_repair: bool = True
    #: repair/migration byte budget per sim second (None = unthrottled)
    repair_rate_bytes_per_s: float | None = None
    #: token-bucket burst capacity in bytes
    repair_burst_bytes: float = 64 * 1024 * 1024
    #: live-migration keys re-placed per tick
    migration_keys_per_cycle: int = 4
    #: orphaned keys garbage-collected per tick (crash-recovery hygiene)
    gc_keys_per_cycle: int = 16

    def __post_init__(self) -> None:
        if self.scrub_interval <= 0:
            raise ValueError(
                f"scrub_interval must be > 0, got {self.scrub_interval}"
            )


class MaintenancePlane:
    """Background scrub/repair/migration loop attached to one scheme."""

    def __init__(
        self,
        scheme: "Scheme",
        config: MaintenanceConfig | None = None,
        *,
        loop: EventLoop | None = None,
        ledger: "CorruptionLedger | None" = None,
    ) -> None:
        self.scheme = scheme
        self.config = config if config is not None else MaintenanceConfig()
        self.loop = loop if loop is not None else EventLoop(scheme.clock)
        if self.loop.clock is not scheme.clock:
            raise ValueError("maintenance loop must share the scheme's clock")
        self.ledger = ledger
        self.budget = TokenBucket(
            self.config.repair_rate_bytes_per_s,
            self.config.repair_burst_bytes,
            scheme.clock,
        )
        self.scrubber = AntiEntropyScrubber(
            scheme,
            paths_per_cycle=self.config.scrub_paths_per_cycle,
            deep=self.config.deep_scrub,
        )
        self.repair = ProactiveRepairScheduler(scheme, self.budget)
        self.orphans = OrphanSweeper(scheme, self.budget)
        self.migration = LiveMigrationEngine(
            scheme,
            self.budget,
            keys_per_cycle=self.config.migration_keys_per_cycle,
        )
        if ledger is not None:
            for provider in scheme.api.providers():
                if provider.faults is not None:
                    provider.faults.attach_ledger(ledger)
        self._timer: RecurringEvent | None = None
        self.paused = False
        self.ticks = 0
        #: providers currently in an open-breaker spell
        self._opened: set[str] = set()
        #: providers whose breaker closed since the last tick (outage edges)
        self._suspects: set[str] = set()
        #: path -> sim time it was first seen below full redundancy
        self._risk_since: dict[str, float] = {}
        self._saved_listeners: dict[str, object] = {}

    # ------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._timer is not None and self._timer.active

    def start(self) -> None:
        """Hook breaker edges and begin the recurring tick schedule."""
        if self.running:
            return
        self._chain_breaker_listeners()
        self._timer = self.loop.schedule_every(
            self.config.scrub_interval, self._on_tick
        )

    def stop(self) -> None:
        """Cancel the schedule and restore the original breaker listeners."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._restore_breaker_listeners()

    def pause(self) -> None:
        """Keep the schedule but make ticks no-ops (change freeze)."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def _chain_breaker_listeners(self) -> None:
        for name, breaker in self.scheme._breakers.items():
            previous = breaker.listener
            self._saved_listeners[name] = previous

            def chained(provider, state, now, _prev=previous):
                if _prev is not None:
                    _prev(provider, state, now)
                self._on_breaker_transition(provider, state, now)

            breaker.listener = chained

    def _restore_breaker_listeners(self) -> None:
        for name, previous in self._saved_listeners.items():
            breaker = self.scheme._breakers.get(name)
            if breaker is not None:
                breaker.listener = previous
        self._saved_listeners.clear()

    def _on_breaker_transition(self, provider: str, state: str, now: float) -> None:
        if state == "open":
            self._opened.add(provider)
        elif state == "closed" and provider in self._opened:
            self._opened.discard(provider)
            self._suspects.add(provider)

    # ------------------------------------------------------------------ ticks
    def _on_tick(self) -> None:
        if self.paused:
            return
        # A tick can only fire mid-op if someone calls pump() from inside a
        # scheme operation; verify/repair are public ops themselves, so defer.
        if self.scheme._acc is not None:
            return
        self.run_cycle()

    def run_cycle(self) -> list["ObjectAudit"]:
        """One full maintenance pass; returns the audits it took."""
        self.ticks += 1
        audits = []
        suspects = sorted(self._suspects)
        self._suspects.clear()
        if suspects:
            targeted: list[str] = []
            seen: set[str] = set()
            for provider in suspects:
                for path in self._paths_on(provider):
                    if path not in seen:
                        seen.add(path)
                        targeted.append(path)
            audits.extend(self.scrubber.audit_paths(targeted))
        audits.extend(self.scrubber.run_cycle())
        now = self.scheme.clock.now
        for audit in audits:
            if audit.ok:
                self._risk_since.pop(audit.path, None)
            else:
                self._risk_since.setdefault(audit.path, now)
                if self.config.auto_repair:
                    self.repair.enqueue_audit(audit)
        for result in self.repair.run_cycle():
            if result.complete:
                self._risk_since.pop(result.path, None)
        self.migration.run_cycle()
        # Orphan hygiene last: repairs outrank deletions for the shared
        # budget (redundancy first, housekeeping second).
        self.orphans.run_cycle(max_keys=self.config.gc_keys_per_cycle)
        self._publish_risk()
        return audits

    def _paths_on(self, provider: str) -> list[str]:
        on = getattr(self.scheme, "placements_on", None)
        if on is not None:
            return list(on(provider))
        namespace = self.scheme.namespace
        return [
            path
            for path in namespace.paths()
            if any(prov == provider for prov, _ in namespace.get(path).placements)
        ]

    def _publish_risk(self) -> None:
        now = self.scheme.clock.now
        registry = self.scheme.registry
        registry.gauge("slo_stripes_at_risk").set(len(self._risk_since))
        registry.gauge("slo_durability_risk_seconds").set(
            sum(now - t0 for t0 in self._risk_since.values())
        )

    # ------------------------------------------------------------ scheduling
    def pump(self) -> None:
        """Fire maintenance ticks that came due; never advances the clock.

        Call between foreground operations: foreground traffic moves the
        shared clock, and any tick whose deadline it passed fires now.
        """
        self.loop.run_until(self.scheme.clock.now)

    def run_idle(self, until: float) -> None:
        """Advance the world to ``until`` with only maintenance running."""
        self.loop.run_until(until)

    # --------------------------------------------------------------- queries
    def detection_score(self) -> dict[str, float]:
        """Scrub findings scored against the fault ledger's ground truth."""
        if self.ledger is None:
            raise RuntimeError("no fault ledger attached to this plane")
        return self.ledger.score_detection(self.scrubber.found_sites)

    def at_risk_paths(self) -> list[str]:
        return sorted(self._risk_since)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "paused" if self.paused else ("running" if self.running else "stopped")
        return (
            f"MaintenancePlane({state}, ticks={self.ticks}, "
            f"repair_queue={len(self.repair)}, migration_queue={len(self.migration)})"
        )
