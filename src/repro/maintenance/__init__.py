"""Maintenance plane: anti-entropy scrubbing, budgeted repair, live migration.

The paper's availability machinery is *reactive*: degraded reads during an
outage, a consistency update after it.  This package adds the proactive
counterpart every production cloud-of-clouds deployment runs — a background
control plane that finds silent damage before a client read does, restores
full redundancy under a bandwidth budget, and re-stripes data when the
cost/performance evaluator changes its mind about a provider.

Entry point: :meth:`Scheme.attach_maintenance
<repro.schemes.base.Scheme.attach_maintenance>`; see ``docs/maintenance.md``.
"""

from repro.maintenance.budget import TokenBucket
from repro.maintenance.gc import OrphanSweeper
from repro.maintenance.migration import LiveMigrationEngine
from repro.maintenance.plane import MaintenanceConfig, MaintenancePlane
from repro.maintenance.repair import ProactiveRepairScheduler, RepairTicket
from repro.maintenance.scrubber import AntiEntropyScrubber

__all__ = [
    "AntiEntropyScrubber",
    "LiveMigrationEngine",
    "MaintenanceConfig",
    "MaintenancePlane",
    "OrphanSweeper",
    "ProactiveRepairScheduler",
    "RepairTicket",
    "TokenBucket",
]
