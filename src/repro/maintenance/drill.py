"""End-to-end maintenance drill: inject, scrub, repair, migrate, verify.

One deterministic scenario shared by the ``repro maintain`` CLI verb, the
maintenance benchmarks and the bench-telemetry ``maintenance`` facet:

1. A HyRD client over the Table II cloud-of-clouds writes a mixed namespace
   (replicated small files, RAID5-striped large files).
2. Persistent damage — flipped bytes, truncations, lost objects — is
   injected at one placement per victim path, recorded in a ground-truth
   :class:`~repro.faults.ledger.CorruptionLedger`.  One placement per path
   keeps every object reconstructible, so this is exactly the damage the
   scrubber must catch *before* redundancy erodes further.
3. Foreground reads run with the maintenance plane ticking in the gaps;
   the plane scrubs, queues repairs by remaining fault margin, and drains
   them under the byte budget.
4. One provider is decommissioned; the live migration engine evacuates it
   incrementally.
5. A final full scrub pass verifies the namespace is damage-free and every
   byte reads back intact.

``maintenance=False`` runs the identical foreground schedule with no plane
attached — the baseline for the "background work must not hurt foreground
p95" acceptance check.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.hyrd import HyRDClient
from repro.faults.ledger import CorruptionLedger, inject_bit_rot, inject_loss
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

from repro.maintenance.plane import MaintenanceConfig, MaintenancePlane
from repro.maintenance.repair import REPAIR_TIME_BOUNDS

__all__ = ["run_maintenance_drill"]

KB = 1024
MB = 1024 * 1024

#: damage shape cycle: digest-detectable rot, truncation, silent loss
_DAMAGE_KINDS = ("corrupt", "truncate", "lose")


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_maintenance_drill(
    seed: int = 0,
    *,
    maintenance: bool = True,
    files: int = 18,
    damage_every: int = 2,
    read_rounds: int = 3,
    scrub_interval: float = 300.0,
    repair_rate_bytes_per_s: float | None = 4 * MB,
    repair_burst_bytes: float = 8 * MB,
    decommission_provider: str = "rackspace",
    max_idle_cycles: int = 60,
) -> dict:
    """Run the drill; returns a summary dict plus the live objects.

    The summary's numeric fields are pure functions of ``seed`` and the
    parameters (simulated time only — no wall clock), so they can gate
    drift in bench telemetry.
    """
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    scheme = HyRDClient(list(providers.values()), clock)
    rng = make_rng(seed, "maintenance-drill")

    contents: dict[str, bytes] = {}
    for i in range(files):
        path = f"/drill/f{i:02d}"
        if i % 3 == 0:  # above the 1 MB threshold: RAID5-striped
            size = int(rng.integers(2 * MB, 4 * MB))
        else:  # replicated small file
            size = int(rng.integers(4 * KB, 64 * KB))
        data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        contents[path] = data
        scheme.put(path, data)

    # ---- inject persistent damage: one placement per victim path ----------
    ledger = CorruptionLedger()
    victims = scheme.namespace.paths()[::damage_every]
    for i, path in enumerate(victims):
        entry = scheme.namespace.get(path)
        replicated = entry.codec == "replication"
        pick = int(rng.integers(0, len(entry.placements)))
        prov_name, idx = entry.placements[pick]
        key = scheme._placement_storage_key(entry, idx, replicated)
        provider = providers[prov_name]
        kind = _DAMAGE_KINDS[i % len(_DAMAGE_KINDS)]
        if kind == "lose":
            inject_loss(provider, scheme.container, [key], ledger=ledger, now=clock.now)
        else:
            inject_bit_rot(
                provider,
                scheme.container,
                [key],
                seed=seed + i,
                ledger=ledger,
                now=clock.now,
                truncate=(kind == "truncate"),
            )

    plane: MaintenancePlane | None = None
    if maintenance:
        config = MaintenanceConfig(
            scrub_interval=scrub_interval,
            repair_rate_bytes_per_s=repair_rate_bytes_per_s,
            repair_burst_bytes=repair_burst_bytes,
            migration_keys_per_cycle=6,
        )
        plane = scheme.attach_maintenance(config, ledger=ledger)

    # ---- foreground reads with maintenance ticking in the idle gaps -------
    latencies: list[float] = []
    for _round in range(read_rounds):
        for path, expected in contents.items():
            t0 = clock.now
            got, _report = scheme.get(path)
            latencies.append(clock.now - t0)
            # Redundancy + digest verification must mask injected damage.
            if got != expected:
                raise AssertionError(f"foreground read of {path} returned wrong bytes")
            if plane is not None:
                plane.pump()
        if plane is not None:
            plane.run_idle(clock.now + scrub_interval)
        else:
            clock.advance_to(clock.now + scrub_interval)

    # ---- drain repairs under the budget -----------------------------------
    if plane is not None:
        for _ in range(max_idle_cycles):
            if len(plane.repair) == 0:
                break
            plane.run_idle(clock.now + scrub_interval)

        # ---- live decommission: evacuate one provider incrementally -------
        scheme.decommission(decommission_provider)
        for _ in range(max_idle_cycles):
            if len(plane.migration) == 0:
                break
            plane.run_idle(clock.now + scrub_interval)

    # ---- verify ------------------------------------------------------------
    residual_findings = 0
    detection = {"injected": len(ledger.sites()), "detected": 0, "rate": 0.0, "missed": []}
    evacuated = True
    if plane is not None:
        detection = plane.detection_score()
        final_audits = plane.scrubber.full_pass()
        residual_findings = sum(len(a.findings) for a in final_audits)
        evacuated = scheme.placements_on(decommission_provider) == []
    read_back_ok = all(scheme.get(path)[0] == data for path, data in contents.items())

    registry = scheme.registry
    mttr_mean = 0.0
    if maintenance and registry.counter_value("repair_completed_total"):
        mttr_mean = registry.histogram(
            "repair_time_seconds", bounds=REPAIR_TIME_BOUNDS
        ).mean

    summary = {
        "seed": seed,
        "files": files,
        "bytes_stored": sum(len(d) for d in contents.values()),
        "maintenance": maintenance,
        "injected": detection["injected"] if maintenance else len(ledger.sites()),
        "detected": detection["detected"],
        "detection_rate": detection["rate"],
        "scrub_cycles": registry.counter_value("scrub_cycles_total"),
        "scrub_bytes_verified": registry.counter_value("scrub_bytes_verified_total"),
        "repairs_completed": registry.counter_value("repair_completed_total"),
        "repair_bytes": registry.counter_value("repair_bytes_total"),
        "repair_throttled": registry.counter_value("repair_budget_throttled_total"),
        "mttr_mean_s": round(mttr_mean, 6),
        "migrations_completed": registry.counter_value("migration_completed_total"),
        "migration_bytes": registry.counter_value("migration_bytes_total"),
        "residual_findings": residual_findings,
        "decommission_evacuated": evacuated,
        "read_back_ok": read_back_ok,
        "foreground_p95_s": round(_percentile(latencies, 0.95), 6),
        "foreground_mean_s": round(sum(latencies) / len(latencies), 6),
        "sim_time_s": round(clock.now, 3),
    }
    return {"summary": summary, "scheme": scheme, "plane": plane, "ledger": ledger}
