"""The metric catalog: every metric the runtime may emit, in one place.

Each :class:`MetricSpec` names one instrument: its type (counter / gauge /
histogram), the label keys it carries, its unit, and when it fires.  The
catalog is load-bearing twice over:

- a strict :class:`~repro.metrics.registry.MetricsRegistry` (the default
  everywhere in the scheme engine) refuses to instantiate any metric that is
  not declared here, so the list below is *exhaustive by construction*;
- the reference table in ``docs/metrics-reference.md`` is generated from
  this module (:func:`catalog_markdown_table`) and a test diffs the doc
  against the generator's output, so the documentation cannot silently rot.

To add a metric: declare the spec here, emit it through a registry, then
regenerate the doc table::

    PYTHONPATH=src python -m repro.metrics.catalog > /tmp/table.md
    # paste between the BEGIN/END markers in docs/metrics-reference.md
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MetricSpec", "METRIC_CATALOG", "catalog_markdown_table"]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: name, type, labels, unit, meaning."""

    name: str
    type: str  # "counter" | "gauge" | "histogram"
    description: str
    labels: tuple[str, ...] = field(default=())
    unit: str = "1"

    def __post_init__(self) -> None:
        if self.type not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric type {self.type!r}")
        if tuple(sorted(self.labels)) != self.labels:
            raise ValueError(f"labels for {self.name!r} must be sorted: {self.labels}")


_SPECS: tuple[MetricSpec, ...] = (
    # ---------------------------------------------------- operation metrics
    MetricSpec(
        "ops_total",
        "counter",
        "Completed scheme operations, split by op kind and whether the "
        "operation took a degraded (reconstruction / fallback) path.",
        labels=("degraded", "op"),
    ),
    MetricSpec(
        "op_latency_seconds",
        "histogram",
        "End-to-end simulated latency of each completed scheme operation, "
        "observed once per OpReport as it enters the collector.",
        labels=("op",),
        unit="s",
    ),
    # ------------------------------------------------------- codec data plane
    MetricSpec(
        "codec_encode_bytes_total",
        "counter",
        "Payload bytes erasure-encoded on striped write paths, by codec "
        "class and the GF kernel strategy active at encode time (see "
        "docs/codecs.md for the strategy decision tree).",
        labels=("codec", "kernel"),
        unit="B",
    ),
    MetricSpec(
        "codec_decode_bytes_total",
        "counter",
        "Payload bytes reconstructed by codec decode on striped reads that "
        "missed the retained-payload cache (systematic joins included).",
        labels=("codec",),
        unit="B",
    ),
    # --------------------------------------------------- resilience counters
    MetricSpec(
        "retries",
        "counter",
        "Transient-failure retries burned by the scheme engine (one per "
        "backoff wait actually taken inside a request's retry chain).",
    ),
    MetricSpec(
        "breaker_open",
        "counter",
        "Circuit-breaker transitions into the open state observed by the "
        "scheme engine during phase execution.",
    ),
    MetricSpec(
        "breaker_half_open",
        "counter",
        "Circuit-breaker transitions into the half-open state (cooldown "
        "expired; a probe phase is admitted).",
    ),
    MetricSpec(
        "breaker_closed",
        "counter",
        "Circuit-breaker transitions back to closed (provider confirmed "
        "healthy by probe successes or a consistency-update replay).",
    ),
    MetricSpec(
        "breaker_fast_fail",
        "counter",
        "Requests skipped client-side because the target provider's "
        "breaker was open (zero wire cost; mutations go to the write log).",
    ),
    MetricSpec(
        "hedged_reads",
        "counter",
        "Hedged replicated reads that fired a backup request (primary slow, "
        "failed, or corrupt past the trigger delay).",
    ),
    MetricSpec(
        "hedge_wins",
        "counter",
        "Hedged reads where the backup's response was used (it answered "
        "first or the primary failed).",
    ),
    MetricSpec(
        "breaker_transitions_total",
        "counter",
        "Every circuit-breaker state change, recorded by the breaker itself "
        "with the provider and the state entered.",
        labels=("provider", "state"),
    ),
    MetricSpec(
        "provider_health_error_rate",
        "gauge",
        "EWMA per-attempt failure rate tracked by ProviderHealth (transient "
        "failures count even when a later retry succeeds).",
        labels=("provider",),
    ),
    MetricSpec(
        "provider_health_slowdown",
        "gauge",
        "EWMA of observed/expected latency ratio per provider; a brownout "
        "shows up here as a value well above 1 without a single error.",
        labels=("provider",),
        unit="ratio",
    ),
    # ------------------------------------------------------ write-log / heal
    MetricSpec(
        "write_log_entries_total",
        "counter",
        "Mutations logged client-side because the target provider was "
        "unavailable, breaker-tripped, or out of retries (the fallback that "
        "feeds the consistency update).",
        labels=("provider",),
    ),
    MetricSpec(
        "write_log_pending",
        "gauge",
        "Write-log entries currently pending replay for the provider "
        "(last-wins per key; 0 means the provider is fully healed).",
        labels=("provider",),
    ),
    MetricSpec(
        "heal_replayed_total",
        "counter",
        "Write-log entries replayed into the provider by consistency "
        "updates (the paper's §III-C recovery step).",
        labels=("provider",),
    ),
    MetricSpec(
        "writelog_pending_bytes",
        "gauge",
        "Payload bytes retained by the provider's write log awaiting "
        "replay, across memory and spill tiers (the consistency-update "
        "upload debt).",
        labels=("provider",),
        unit="B",
    ),
    MetricSpec(
        "writelog_spilled_bytes",
        "gauge",
        "Write-log payload bytes parked on client-local disk by the "
        "memory-limit spill policy (0 with no limit configured).",
        labels=("provider",),
        unit="B",
    ),
    # --------------------------------------------------- write-ahead journal
    MetricSpec(
        "journal_intents_total",
        "counter",
        "Write intents recorded by the crash-consistency journal before a "
        "mutating op's first fragment put, by op kind.",
        labels=("op",),
    ),
    MetricSpec(
        "journal_commits_total",
        "counter",
        "Journaled intents committed after their namespace publish (a "
        "commit closes the crash window the intent guarded).",
    ),
    MetricSpec(
        "journal_pending",
        "gauge",
        "Intents currently open in the journal; anything above 0 after "
        "recovery means an unresolved crash window.",
    ),
    MetricSpec(
        "journal_payload_bytes",
        "gauge",
        "Redo-payload bytes currently held by open journal intents.",
        unit="B",
    ),
    MetricSpec(
        "journal_rollforward_total",
        "counter",
        "Crash recoveries that redid the interrupted op from its journaled "
        "payload (enough planned placements had landed).",
    ),
    MetricSpec(
        "journal_rollback_total",
        "counter",
        "Crash recoveries that restored the pre-op namespace entry and "
        "garbage-collected the torn placements.",
    ),
    # -------------------------------------------------------- provider layer
    MetricSpec(
        "provider_requests_total",
        "counter",
        "Requests issued to the simulated provider, by the paper's five ops "
        "plus head; counted at entry, so failed requests are included.",
        labels=("op", "provider"),
    ),
    MetricSpec(
        "provider_errors_total",
        "counter",
        "Provider requests that raised, split into outage rejections "
        "(kind=unavailable) and transient 500/throttle faults "
        "(kind=transient).",
        labels=("kind", "provider"),
    ),
    MetricSpec(
        "provider_bytes_up_total",
        "counter",
        "Payload bytes accepted by the provider via Put.",
        labels=("provider",),
        unit="B",
    ),
    MetricSpec(
        "provider_bytes_down_total",
        "counter",
        "Payload bytes served by the provider via Get.",
        labels=("provider",),
        unit="B",
    ),
    # ------------------------------------------------------- workload monitor
    MetricSpec(
        "workload_writes_total",
        "counter",
        "Writes classified by the Workload Monitor, split by the HyRD data "
        "class the dispatcher will place (metadata / small / large).",
        labels=("class",),
    ),
    MetricSpec(
        "workload_bytes_total",
        "counter",
        "Payload bytes classified by the Workload Monitor, by data class.",
        labels=("class",),
        unit="B",
    ),
    MetricSpec(
        "workload_size_bucket_total",
        "counter",
        "Write-size histogram kept by the Workload Monitor (coarse buckets "
        "from <4K to >=16M) — the small/large mix the dashboard charts.",
        labels=("bucket",),
    ),
    # ----------------------------------------------------------- SLO tracker
    MetricSpec(
        "slo_read_availability",
        "gauge",
        "Sliding-window fraction of user-facing reads (get/stat/listdir) "
        "that completed without raising.",
        unit="ratio",
    ),
    MetricSpec(
        "slo_write_availability",
        "gauge",
        "Sliding-window fraction of user-facing writes (put/update/remove) "
        "that completed without raising.",
        unit="ratio",
    ),
    MetricSpec(
        "slo_degraded_read_fraction",
        "gauge",
        "Fraction of windowed successful reads that took a degraded "
        "(reconstruction / fallback) path.",
        unit="ratio",
    ),
    MetricSpec(
        "slo_error_budget_burn",
        "gauge",
        "Observed unavailability over allowed unavailability for the op "
        "class's SLO target; 1.0 burns the error budget exactly on schedule.",
        labels=("op_class",),
        unit="ratio",
    ),
    MetricSpec(
        "slo_window_ops",
        "gauge",
        "User-facing operations currently inside the SLO sliding window, "
        "per op class — the sample size behind the availability gauges.",
        labels=("op_class",),
    ),
    MetricSpec(
        "slo_provider_downtime_seconds",
        "gauge",
        "Cumulative provider downtime: feed=observed is rebuilt from "
        "circuit-breaker open/closed edges, feed=scheduled is the injected "
        "outage/fault ground truth.",
        labels=("feed", "provider"),
        unit="s",
    ),
    MetricSpec(
        "slo_provider_mtbf_seconds",
        "gauge",
        "Empirical mean time between failures per provider (mean up-gap "
        "between consecutive downtime intervals), by feed; undefined until "
        "a second failure is seen.",
        labels=("feed", "provider"),
        unit="s",
    ),
    MetricSpec(
        "slo_provider_mttr_seconds",
        "gauge",
        "Empirical mean time to repair per provider (mean closed downtime "
        "interval), by feed.",
        labels=("feed", "provider"),
        unit="s",
    ),
    # -------------------------------------------------------- control plane
    MetricSpec(
        "dispatch_decisions_total",
        "counter",
        "Placement decisions made by the Request Dispatcher, split by the "
        "redundancy family chosen (replication vs erasure).",
        labels=("redundancy",),
    ),
    MetricSpec(
        "evaluator_probes_total",
        "counter",
        "Latency probe rounds (create+put+get) issued per provider by the "
        "Cost & Performance Evaluator.",
        labels=("provider",),
    ),
    MetricSpec(
        "evaluator_probe_failures_total",
        "counter",
        "Probe rounds abandoned because the provider was unavailable or "
        "exhausted the probe retry policy (the provider scores inf).",
        labels=("provider",),
    ),
    # ----------------------------------------------------- maintenance plane
    MetricSpec(
        "scrub_cycles_total",
        "counter",
        "Anti-entropy scrub cycles completed (one cycle audits up to the "
        "configured number of namespace objects).",
    ),
    MetricSpec(
        "scrub_objects_checked_total",
        "counter",
        "Objects audited by the scrubber (every placement probed or "
        "digest-verified once per audit).",
    ),
    MetricSpec(
        "scrub_bytes_verified_total",
        "counter",
        "Fragment/replica bytes fetched and digest-verified by deep scrub "
        "passes (the scrub read amplification).",
        unit="B",
    ),
    MetricSpec(
        "scrub_findings_total",
        "counter",
        "Damaged or suspect placements discovered by scrub audits, by "
        "finding kind (corrupt / missing / stale / unreachable).",
        labels=("kind",),
    ),
    MetricSpec(
        "repair_enqueued_total",
        "counter",
        "Objects admitted to the proactive repair queue (deduplicated: a "
        "path already queued is re-prioritised, not double-counted).",
    ),
    MetricSpec(
        "repair_completed_total",
        "counter",
        "Repair executions that restored every repairable placement of "
        "their object.",
    ),
    MetricSpec(
        "repair_failed_total",
        "counter",
        "Repair executions abandoned because too few intact placements "
        "remained to reconstruct the payload (data loss until a provider "
        "returns).",
    ),
    MetricSpec(
        "repair_skipped_pending_total",
        "counter",
        "Placements a repair pass refused to rewrite because a write-log "
        "entry for the same key awaits replay (consistency update owns it).",
    ),
    MetricSpec(
        "repair_bytes_total",
        "counter",
        "Payload bytes uploaded by repair rewrites (budget-metered traffic).",
        unit="B",
    ),
    MetricSpec(
        "repair_queue_depth",
        "gauge",
        "Objects currently waiting in the priority repair queue "
        "(most-at-risk stripes drain first).",
    ),
    MetricSpec(
        "repair_time_seconds",
        "histogram",
        "Simulated time from damage detection to restored full redundancy, "
        "observed once per completed repair (MTTR-to-full-redundancy).",
        unit="s",
    ),
    MetricSpec(
        "repair_budget_throttled_total",
        "counter",
        "Repair cycles cut short because the token-bucket bandwidth budget "
        "could not cover the next object's estimated rewrite.",
    ),
    MetricSpec(
        "migration_enqueued_total",
        "counter",
        "Objects queued for live migration (policy reclassification or "
        "provider decommission).",
    ),
    MetricSpec(
        "migration_completed_total",
        "counter",
        "Objects re-striped/re-replicated to their new placement by the "
        "live migration engine.",
    ),
    MetricSpec(
        "migration_failed_total",
        "counter",
        "Migration attempts that raised (object stays on its old, intact "
        "placement and is re-queued).",
    ),
    MetricSpec(
        "migration_bytes_total",
        "counter",
        "Payload bytes uploaded by live migrations (budget-metered traffic).",
        unit="B",
    ),
    MetricSpec(
        "migration_pending",
        "gauge",
        "Objects still waiting in the live-migration queue.",
    ),
    MetricSpec(
        "slo_stripes_at_risk",
        "gauge",
        "Objects currently known to sit below full redundancy (at least one "
        "placement damaged or unreachable), per the latest scrub knowledge.",
    ),
    MetricSpec(
        "slo_durability_risk_seconds",
        "gauge",
        "Durability risk integral: sum over under-redundant objects of "
        "(now - first seen below full redundancy) — stripes below full "
        "redundancy weighted by exposure time.",
        unit="s",
    ),
    MetricSpec(
        "orphan_gc_pending",
        "gauge",
        "Orphaned cloud objects (torn-write fragments, stray hot copies) "
        "queued for budgeted deletion by the maintenance plane's sweeper.",
    ),
    MetricSpec(
        "orphan_gc_removed_total",
        "counter",
        "Orphaned cloud objects deleted by the maintenance plane's orphan "
        "sweeper, per provider.",
        labels=("provider",),
    ),
    # ------------------------------------------------------ chaos campaigns
    MetricSpec(
        "chaos_crashes_total",
        "counter",
        "Client crashes injected by the chaos engine's crash schedule "
        "(each one kills the client between two cloud requests).",
    ),
    MetricSpec(
        "chaos_invariant_violations_total",
        "counter",
        "Invariant checks failed at chaos-episode settlement, by invariant "
        "name; any non-zero value fails the campaign.",
        labels=("invariant",),
    ),
    MetricSpec(
        "partition_windows_total",
        "counter",
        "Network-partition windows scripted against the provider by the "
        "chaos engine's partition plan.",
        labels=("provider",),
    ),
    # --------------------------------------- attribution / load observatory
    MetricSpec(
        "hedge_wasted_seconds",
        "histogram",
        "Cancelled hedge-leg wire time: for each hedged read whose leg lost "
        "the race, the seconds that leg was on the wire before the winner's "
        "completion cancelled it.  Off the critical path by definition — "
        "kept out of latency histograms and provider health EWMAs.",
        labels=("provider",),
        unit="s",
    ),
    MetricSpec(
        "provider_load_inflight",
        "gauge",
        "Concurrent requests the provider served in the most recent "
        "executed phase (the simulator runs whole phases, so this is the "
        "instantaneous parallelism the provider actually saw).",
        labels=("provider",),
    ),
    MetricSpec(
        "provider_load_queue_depth",
        "gauge",
        "Little's-law queue-depth estimate for the provider: EWMA arrival "
        "rate times EWMA per-request service time.",
        labels=("provider",),
    ),
    MetricSpec(
        "provider_load_service_rate",
        "gauge",
        "Reciprocal of the provider's EWMA per-request service time — the "
        "request rate the provider sustains at its observed latency.",
        labels=("provider",),
        unit="1/s",
    ),
    MetricSpec(
        "provider_load_busy_seconds",
        "gauge",
        "Cumulative wire seconds of completed requests observed against the "
        "provider by the load observatory (hedge legs included).",
        labels=("provider",),
        unit="s",
    ),
    MetricSpec(
        "attribution_exemplars_total",
        "counter",
        "Operations retained as latency-histogram exemplars (first N trace "
        "IDs per op kind and latency bucket), by op kind.",
        labels=("op",),
    ),
    # ------------------------------------------- load-aware read scheduling
    MetricSpec(
        "sched_decisions_total",
        "counter",
        "Striped reads routed by the attached FragmentScheduler (one per "
        "load-aware subset decision; zero with the scheduler detached).",
    ),
    MetricSpec(
        "sched_parity_fragments_total",
        "counter",
        "Parity fragments the scheduler selected in place of systematic "
        "ones because a data fragment's provider was queued or unhealthy "
        "(each one costs a real decode that a systematic join would skip).",
    ),
    MetricSpec(
        "sched_rotations_total",
        "counter",
        "Scheduler decisions where the fractional split policy rotated the "
        "subset away from the pure score ranking to spread a hot path "
        "across the capacity region.",
    ),
    MetricSpec(
        "sched_hedges_total",
        "counter",
        "Capacity-aware hedges fired on striped reads: a backup fragment "
        "request issued because the gating provider's estimated queue wait "
        "exceeded the backup's wire-plus-decode cost.",
    ),
    MetricSpec(
        "sched_hedge_wins_total",
        "counter",
        "Scheduler hedges where the backup subset completed first (or the "
        "gating fragment failed) and the read decoded around the gating "
        "provider.",
    ),
    MetricSpec(
        "sched_queue_wait_seconds",
        "histogram",
        "Estimated queue wait behind the gating provider at scheduler "
        "hedge-decision time (the 'waiting is worse than hedging' side of "
        "the comparison), by gating provider.",
        labels=("provider",),
        unit="s",
    ),
    # --------------------------------------------- multi-tenant service plane
    MetricSpec(
        "tenant_requests_total",
        "counter",
        "Requests submitted to the service plane's frontend handlers per "
        "tenant, counted at arrival (before authentication, quota checks "
        "or admission).",
        labels=("tenant",),
    ),
    MetricSpec(
        "tenant_admitted_total",
        "counter",
        "Requests dispatched to the shared scheme backends for the tenant "
        "by the deficit-round-robin admission controller.",
        labels=("tenant",),
    ),
    MetricSpec(
        "tenant_shed_total",
        "counter",
        "Requests rejected by the service plane per tenant, by typed "
        "reason: auth, unknown_tenant, queue_full, ops_quota, bytes_quota "
        "or objects_quota.",
        labels=("reason", "tenant"),
    ),
    MetricSpec(
        "tenant_bytes_used",
        "gauge",
        "Logical bytes the tenant currently stores under its namespace "
        "prefix, as accounted by the quota engine at admission time.",
        labels=("tenant",),
        unit="B",
    ),
    MetricSpec(
        "tenant_objects_used",
        "gauge",
        "Objects the tenant currently stores under its namespace prefix, "
        "as accounted by the quota engine at admission time.",
        labels=("tenant",),
    ),
    MetricSpec(
        "tenant_queue_depth",
        "gauge",
        "Requests currently waiting in the tenant's bounded admission "
        "queue (updated on every enqueue/dispatch).",
        labels=("tenant",),
    ),
    MetricSpec(
        "tenant_slo_availability",
        "gauge",
        "Sliding-window success fraction of the tenant's user-facing ops, "
        "per op class — the per-tenant rollup of the aggregate slo_* "
        "availability gauges.",
        labels=("op_class", "tenant"),
        unit="ratio",
    ),
    MetricSpec(
        "tenant_slo_p95_seconds",
        "gauge",
        "Sliding-window p95 simulated latency of the tenant's successful "
        "user-facing ops.",
        labels=("tenant",),
        unit="s",
    ),
    MetricSpec(
        "admission_rounds_total",
        "counter",
        "Deficit-round-robin scheduling rounds completed by the admission "
        "controller (one round visits every backlogged tenant once).",
    ),
    MetricSpec(
        "admission_dispatched_total",
        "counter",
        "Requests the admission controller handed to a frontend for "
        "execution, per frontend handler.",
        labels=("frontend",),
    ),
    MetricSpec(
        "admission_queued",
        "gauge",
        "Total requests currently waiting across every tenant's admission "
        "queue.",
    ),
    MetricSpec(
        "admission_quota_deferrals_total",
        "counter",
        "Head-of-queue dispatches the admission controller deferred "
        "because the tenant's ops-per-second token bucket was empty (the "
        "request stays queued; deferral is not load shedding).",
    ),
    MetricSpec(
        "admission_fairness_index",
        "gauge",
        "Jain's fairness index over per-tenant admitted throughput since "
        "the last reset; 1.0 is perfectly fair, 1/n is maximally unfair.",
        unit="ratio",
    ),
)

#: name -> spec for every metric the runtime may emit.
METRIC_CATALOG: dict[str, MetricSpec] = {s.name: s for s in _SPECS}
if len(METRIC_CATALOG) != len(_SPECS):  # pragma: no cover - authoring guard
    raise RuntimeError("duplicate metric names in the catalog")


def catalog_markdown_table() -> str:
    """The reference table embedded in ``docs/metrics-reference.md``."""
    lines = [
        "| Name | Type | Labels | Unit | Meaning |",
        "|---|---|---|---|---|",
    ]
    for spec in sorted(_SPECS, key=lambda s: s.name):
        labels = ", ".join(f"`{label}`" for label in spec.labels) or "—"
        lines.append(
            f"| `{spec.name}` | {spec.type} | {labels} | {spec.unit} "
            f"| {spec.description} |"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - doc regeneration helper
    print(catalog_markdown_table())
