"""Operation reports and the latency collector.

Every public scheme operation returns an :class:`OpReport`; experiments feed
reports into a :class:`LatencyCollector` and read back the summary series the
paper's figures plot (average response time, normal vs degraded split, ...).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.metrics.stats import LatencySummary, summarize

__all__ = ["OpReport", "LatencyCollector"]


@dataclass(frozen=True)
class OpReport:
    """What one scheme operation cost.

    ``degraded`` marks operations that had to take a reconstruction /
    fallback path because a provider was inside an outage window.
    """

    op: str  # "put" | "get" | "update" | "remove" | "stat" | "list"
    path: str
    elapsed: float  # seconds of simulated wall-clock
    bytes_up: int = 0
    bytes_down: int = 0
    providers: tuple[str, ...] = ()
    degraded: bool = False
    cloud_ops: int = 0  # number of provider requests issued
    rtt_wait: float = 0.0  # critical-path time spent on request round trips
    transfer_time: float = 0.0  # critical-path time spent moving bytes
    retries: int = 0  # transient-failure retries burned by this operation
    hedged: bool = False  # a hedged backup request fired during this operation

    def __post_init__(self) -> None:
        if self.elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {self.elapsed}")


@dataclass
class LatencyCollector:
    """Aggregates :class:`OpReport` streams for one scheme run.

    Besides per-operation reports it keeps resilience *counters* bumped by
    the scheme engine as events happen: ``retries`` (transient-failure
    retries), ``breaker_open`` / ``breaker_half_open`` / ``breaker_closed``
    (circuit state transitions), ``breaker_fast_fail`` (requests skipped
    client-side because a breaker was open), ``hedged_reads`` (backup
    requests fired) and ``hedge_wins`` (backup answered first).
    """

    reports: list[OpReport] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def add(self, report: OpReport) -> None:
        self.reports.append(report)

    def extend(self, reports: list[OpReport]) -> None:
        self.reports.extend(reports)

    def bump(self, counter: str, n: int = 1) -> None:
        """Increment a named resilience counter."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def __len__(self) -> int:
        return len(self.reports)

    # --------------------------------------------------------------- queries
    def latencies(self, op: str | None = None, degraded: bool | None = None) -> list[float]:
        return [
            r.elapsed
            for r in self.reports
            if (op is None or r.op == op)
            and (degraded is None or r.degraded == degraded)
        ]

    def summary(self, op: str | None = None) -> LatencySummary:
        return summarize(self.latencies(op))

    def by_op(self) -> dict[str, LatencySummary]:
        groups: dict[str, list[float]] = defaultdict(list)
        for r in self.reports:
            groups[r.op].append(r.elapsed)
        return {op: summarize(v) for op, v in sorted(groups.items())}

    def mean_latency(self) -> float:
        """Average response time over every recorded operation."""
        return self.summary().mean

    def degraded_fraction(self) -> float:
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.degraded) / len(self.reports)

    def total_bytes(self) -> tuple[int, int]:
        """(bytes uploaded, bytes downloaded) across all operations."""
        return (
            sum(r.bytes_up for r in self.reports),
            sum(r.bytes_down for r in self.reports),
        )

    def total_cloud_ops(self) -> int:
        return sum(r.cloud_ops for r in self.reports)

    def time_breakdown(self) -> dict[str, float]:
        """Where simulated wall-clock went, summed over the critical paths.

        ``rtt_wait`` is time blocked on request round trips (what dominates
        small objects), ``transfer`` is time moving bytes (what dominates
        large objects) — the split behind Figure 5's threshold argument.
        """
        return {
            "rtt_wait": sum(r.rtt_wait for r in self.reports),
            "transfer": sum(r.transfer_time for r in self.reports),
            "total": sum(r.elapsed for r in self.reports),
        }
