"""Operation reports and the latency collector.

Every public scheme operation returns an :class:`OpReport`; experiments feed
reports into a :class:`LatencyCollector` and read back the summary series the
paper's figures plot (average response time, normal vs degraded split, ...).

Since the observability PR the collector is backed by a typed
:class:`~repro.metrics.registry.MetricsRegistry`: ``bump``/``counter`` and
the ``counters`` mapping delegate to registry counters, ``add`` additionally
feeds the ``ops_total`` counter and the ``op_latency_seconds`` histogram.
The public query API is unchanged; existing callers keep working verbatim.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.metrics.registry import MetricsRegistry
from repro.metrics.stats import LatencySummary, summarize

__all__ = ["OpReport", "LatencyCollector"]


@dataclass(frozen=True)
class OpReport:
    """What one scheme operation cost.

    ``degraded`` marks operations that had to take a reconstruction /
    fallback path because a provider was inside an outage window.
    """

    op: str  # "put" | "get" | "update" | "remove" | "stat" | "list"
    path: str
    elapsed: float  # seconds of simulated wall-clock
    bytes_up: int = 0
    bytes_down: int = 0
    providers: tuple[str, ...] = ()
    degraded: bool = False
    cloud_ops: int = 0  # number of provider requests issued
    rtt_wait: float = 0.0  # critical-path time spent on request round trips
    transfer_time: float = 0.0  # critical-path time spent moving bytes
    retries: int = 0  # transient-failure retries burned by this operation
    hedged: bool = False  # a hedged backup request fired during this operation
    tenant: str | None = None  # service-plane tenant this op ran for, if any

    def __post_init__(self) -> None:
        if self.elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {self.elapsed}")
        for name in ("bytes_up", "bytes_down", "cloud_ops"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")


class _CountersView(dict):
    """Read-compatible snapshot view of the registry's unlabeled counters.

    Kept as a real ``dict`` subclass so legacy callers that printed or
    compared ``collector.counters`` keep working; mutation should go through
    :meth:`LatencyCollector.bump`.
    """


@dataclass
class LatencyCollector:
    """Aggregates :class:`OpReport` streams for one scheme run.

    Besides per-operation reports it keeps resilience *counters* bumped by
    the scheme engine as events happen: ``retries`` (transient-failure
    retries), ``breaker_open`` / ``breaker_half_open`` / ``breaker_closed``
    (circuit state transitions), ``breaker_fast_fail`` (requests skipped
    client-side because a breaker was open), ``hedged_reads`` (backup
    requests fired) and ``hedge_wins`` (backup answered first).

    Counters live in the attached :class:`MetricsRegistry` (``registry``),
    which also receives ``ops_total{op,degraded}`` and the
    ``op_latency_seconds{op}`` histogram for every report added.  A fresh
    registry is created when none is passed, so ``LatencyCollector()``
    stays a valid standalone construction.
    """

    reports: list[OpReport] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def counters(self) -> dict[str, int]:
        """Unlabeled counter values, as the pre-registry dict looked.

        A snapshot: reflects registry state at access time.  (Labeled
        metrics — per-provider request/error counters and the like — are
        queried through :attr:`registry` instead.)
        """
        return _CountersView(self.registry.counters())

    def add(self, report: OpReport) -> None:
        self.reports.append(report)
        self.registry.counter(
            "ops_total", op=report.op, degraded=str(report.degraded).lower()
        ).inc()
        self.registry.histogram("op_latency_seconds", op=report.op).observe(
            report.elapsed
        )

    def extend(self, reports: Iterable[OpReport]) -> None:
        for report in reports:
            self.add(report)

    def bump(self, counter: str, n: int = 1) -> None:
        """Increment a named resilience counter."""
        self.registry.counter(counter).inc(n)

    def counter(self, name: str) -> int:
        return int(self.registry.counter_value(name))

    def __len__(self) -> int:
        return len(self.reports)

    # --------------------------------------------------------------- queries
    def latencies(self, op: str | None = None, degraded: bool | None = None) -> list[float]:
        return [
            r.elapsed
            for r in self.reports
            if (op is None or r.op == op)
            and (degraded is None or r.degraded == degraded)
        ]

    def summary(self, op: str | None = None) -> LatencySummary:
        return summarize(self.latencies(op))

    def by_op(self) -> dict[str, LatencySummary]:
        groups: dict[str, list[float]] = defaultdict(list)
        for r in self.reports:
            groups[r.op].append(r.elapsed)
        return {op: summarize(v) for op, v in sorted(groups.items())}

    def mean_latency(self) -> float:
        """Average response time over every recorded operation."""
        return self.summary().mean

    def degraded_fraction(self) -> float:
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.degraded) / len(self.reports)

    def total_bytes(self) -> tuple[int, int]:
        """(bytes uploaded, bytes downloaded) across all operations."""
        return (
            sum(r.bytes_up for r in self.reports),
            sum(r.bytes_down for r in self.reports),
        )

    def total_cloud_ops(self) -> int:
        return sum(r.cloud_ops for r in self.reports)

    def time_breakdown(self) -> dict[str, float]:
        """Where simulated wall-clock went, summed over the critical paths.

        ``rtt_wait`` is time blocked on request round trips (what dominates
        small objects), ``transfer`` is time moving bytes (what dominates
        large objects) — the split behind Figure 5's threshold argument.
        """
        return {
            "rtt_wait": sum(r.rtt_wait for r in self.reports),
            "transfer": sum(r.transfer_time for r in self.reports),
            "total": sum(r.elapsed for r in self.reports),
        }
