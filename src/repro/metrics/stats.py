"""Latency summary statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary for a set of latency samples (seconds)."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, total=0.0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)


def summarize(samples: list[float] | np.ndarray) -> LatencySummary:
    """Summarise latency samples; empty input yields the zero summary."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return LatencySummary.empty()
    if np.any(arr < 0):
        raise ValueError("latency samples must be >= 0")
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return LatencySummary(
        count=int(arr.size),
        total=float(arr.sum()),
        mean=float(arr.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        max=float(arr.max()),
    )
