"""Latency metrics: per-operation reports, collectors, summaries."""

from repro.metrics.collector import LatencyCollector, OpReport
from repro.metrics.stats import LatencySummary, summarize

__all__ = ["LatencyCollector", "LatencySummary", "OpReport", "summarize"]
