"""Metrics: per-operation reports, typed registry, catalog, summaries.

Three layers, lowest first:

- :mod:`repro.metrics.stats` — exact percentile summaries over raw samples;
- :mod:`repro.metrics.registry` — typed counters/gauges/histograms with
  label support, fixed-bucket percentile estimation, and trace mirroring;
  every runtime metric name is validated against
  :data:`repro.metrics.catalog.METRIC_CATALOG` (see
  ``docs/metrics-reference.md``);
- :mod:`repro.metrics.collector` — the per-scheme :class:`LatencyCollector`
  that turns :class:`OpReport` streams into the registry's instruments.
"""

from repro.metrics.catalog import METRIC_CATALOG, MetricSpec, catalog_markdown_table
from repro.metrics.collector import LatencyCollector, OpReport
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    UnknownMetricError,
)
from repro.metrics.stats import LatencySummary, summarize

__all__ = [
    "METRIC_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyCollector",
    "LatencySummary",
    "MetricSpec",
    "MetricsRegistry",
    "OpReport",
    "UnknownMetricError",
    "catalog_markdown_table",
    "summarize",
]
