"""Typed metrics registry: counters, gauges and percentile histograms.

This replaces the untyped ``LatencyCollector.counters`` dict with three
first-class instrument types, all keyed by *(name, labels)*:

- :class:`Counter` — a monotonically increasing integer (``inc``);
- :class:`Gauge` — a point-in-time float (``set``);
- :class:`Histogram` — fixed-bucket sample distribution with percentile
  estimation (``observe``; ``percentile`` for p50/p95/p99, plus exact
  ``min``/``max``/``sum``/``count``).

A :class:`MetricsRegistry` is *strict by default*: every metric name must be
declared in :data:`repro.metrics.catalog.METRIC_CATALOG` with the right type
and label keys, so the runtime cannot emit a metric the reference
documentation (``docs/metrics-reference.md``) does not describe — the doc
table is generated from the same catalog and diff-checked by a test.

When the registry is given an *enabled* tracer (see
:mod:`repro.obs.trace`), every mutation is mirrored into the trace as a
``metric`` event.  This is what makes a JSON-lines trace self-contained: a
fresh registry replayed from the trace (:meth:`MetricsRegistry.apply_event`)
reaches the exact same state as the live one, so a run report rendered from
the trace is byte-identical to the report rendered live.  With the default
no-op tracer the mirror is a single attribute check — metric updates stay
plain dict/float operations and never touch the simulation clock or any RNG
stream, which is how tier-1 timings are guaranteed not to move.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.metrics.catalog import METRIC_CATALOG, MetricSpec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "UnknownMetricError",
    "DEFAULT_LATENCY_BUCKETS",
]


#: Default histogram bucket upper bounds (seconds of simulated latency):
#: roughly geometric from 1 ms to 10 min, matching the dynamic range between
#: a control-plane RTT and a degraded multi-megabyte stripe rebuild.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 600.0,
)


class UnknownMetricError(KeyError):
    """A metric name (or label set) not declared in the catalog was used.

    Raised by a strict :class:`MetricsRegistry`.  The fix is never to relax
    the registry — it is to add a :class:`~repro.metrics.catalog.MetricSpec`
    to the catalog and regenerate ``docs/metrics-reference.md``.
    """


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "labels", "value", "_registry")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], registry) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._registry = registry

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n
        self._registry._mirror("counter", self.name, self.labels, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {dict(self.labels)}, value={self.value})"


class Gauge:
    """A point-in-time float metric (last write wins)."""

    __slots__ = ("name", "labels", "value", "_registry")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], registry) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)
        self._registry._mirror("gauge", self.name, self.labels, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {dict(self.labels)}, value={self.value})"


class Histogram:
    """Fixed-bucket sample distribution with percentile estimation.

    Samples land in the first bucket whose upper bound is >= the value;
    values above the last bound land in an implicit overflow bucket.  The
    exact ``min``, ``max``, ``sum`` and ``count`` are tracked alongside, so
    percentile estimates are *clamped to the observed range*: an empty
    histogram reports 0, a single sample reports itself exactly, and an
    all-ties distribution reports the tied value at every percentile.

    ``percentile(q)`` interpolates linearly inside the bucket where the
    rank falls — the standard fixed-bucket estimator (same family as
    Prometheus's ``histogram_quantile``), accurate to the bucket width.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "min", "max", "_registry")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        registry,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._registry = registry

    def observe(self, value: float) -> None:
        """Record one sample (must be >= 0 — these are latencies/sizes)."""
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram {self.name!r} sample must be >= 0, got {value}")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._registry._mirror("histogram", self.name, self.labels, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0 <= q <= 100) of the samples."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            if cum + n >= target:
                frac = (target - cum) / n
                est = lo + (hi - lo) * max(frac, 0.0)
                # Clamp to the observed range: exact for empty/single/ties.
                return min(max(est, self.min), self.max)
            cum += n
        return self.max  # pragma: no cover - unreachable (cum == count)

    def summary(self) -> dict[str, float]:
        """Estimated p50/p95/p99 plus exact count/mean/max, for reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, {dict(self.labels)}, count={self.count})"


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    if len(labels) == 1:
        k, v = next(iter(labels.items()))
        return ((str(k), str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """All of one run's metric instruments, keyed by *(name, labels)*.

    Parameters
    ----------
    tracer:
        Optional tracer (duck-typed: needs ``enabled`` and
        ``metric(kind, name, labels, value)``).  When enabled, every
        mutation is mirrored into the trace so the run can be replayed.
    strict:
        When True (the default) every metric must be declared in the
        catalog with matching type and label keys; unknown names raise
        :class:`UnknownMetricError`.  Pass False for ad-hoc/library use.
    """

    def __init__(self, tracer=None, strict: bool = True) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram] = {}
        self.tracer = tracer
        self.strict = strict

    # ------------------------------------------------------------ internals
    def _mirror(self, kind: str, name: str, labels: tuple[tuple[str, str], ...], value) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.metric(kind, name, labels, value)

    def _check(self, name: str, kind: str, labels: dict[str, str]) -> None:
        if not self.strict:
            return
        spec = METRIC_CATALOG.get(name)
        if spec is None:
            raise UnknownMetricError(
                f"metric {name!r} is not in the catalog; add a MetricSpec to "
                f"repro.metrics.catalog and regenerate docs/metrics-reference.md"
            )
        if spec.type != kind:
            raise UnknownMetricError(
                f"metric {name!r} is declared as a {spec.type}, used as a {kind}"
            )
        if tuple(sorted(labels)) != spec.labels:
            raise UnknownMetricError(
                f"metric {name!r} declares labels {spec.labels}, got "
                f"{tuple(sorted(labels))}"
            )

    # ---------------------------------------------------------- instruments
    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter for *(name, labels)*."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            self._check(name, "counter", labels)
            metric = Counter(name, key[1], self)
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge for *(name, labels)*."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            self._check(name, "gauge", labels)
            metric = Gauge(name, key[1], self)
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS, **labels: str
    ) -> Histogram:
        """Get or create the histogram for *(name, labels)*."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            self._check(name, "histogram", labels)
            metric = Histogram(name, key[1], self, bounds)
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    # -------------------------------------------------------------- queries
    def counter_value(self, name: str, **labels: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        metric = self._metrics.get((name, _label_key(labels)))
        return metric.value if isinstance(metric, Counter) else 0

    def counters(self, name: str | None = None) -> dict:
        """Counter values: ``{name: value}`` for unlabeled counters when
        ``name`` is None, else ``{labels: value}`` for that name."""
        if name is None:
            return {
                n: m.value
                for (n, lk), m in sorted(self._metrics.items())
                if isinstance(m, Counter) and not lk
            }
        return {
            lk: m.value
            for (n, lk), m in self._metrics.items()
            if n == name and isinstance(m, Counter)
        }

    def sum_by_label(self, name: str, label: str) -> dict[str, int]:
        """Sum a labeled counter grouped by one label's value."""
        out: dict[str, int] = {}
        for (n, lk), m in self._metrics.items():
            if n != name or not isinstance(m, Counter):
                continue
            value = dict(lk).get(label)
            if value is not None:
                out[value] = out.get(value, 0) + m.value
        return out

    def breakdown(self, name: str, *by: str) -> dict[tuple[str, ...], int]:
        """Counter values grouped by an ordered tuple of label values."""
        out: dict[tuple[str, ...], int] = {}
        for (n, lk), m in self._metrics.items():
            if n != name or not isinstance(m, Counter):
                continue
            labels = dict(lk)
            key = tuple(labels.get(b, "") for b in by)
            out[key] = out.get(key, 0) + m.value
        return out

    def emitted_names(self) -> set[str]:
        """Every metric name instantiated so far (for doc-coverage tests)."""
        return {name for name, _ in self._metrics}

    def all_metrics(self) -> list:
        """Every instrument, sorted by (name, labels)."""
        return [m for _, m in sorted(self._metrics.items())]

    # --------------------------------------------------------------- replay
    def apply_event(self, kind: str, name: str, labels: dict[str, str], value) -> None:
        """Apply one mirrored metric event (trace replay)."""
        if kind == "counter":
            self.counter(name, **labels).inc(int(value))
        elif kind == "gauge":
            self.gauge(name, **labels).set(float(value))
        elif kind == "histogram":
            self.histogram(name, **labels).observe(float(value))
        else:
            raise ValueError(f"unknown metric event kind {kind!r}")

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} instruments, strict={self.strict})"
