"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures: it runs the
experiment once under pytest-benchmark (wall-clock of the whole experiment),
prints the same rows/series the paper reports, saves them under
``benchmarks/results/``, and asserts the expected *shape* (orderings and
rough factors — absolute numbers are simulator-dependent by design).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, request):
    """emit(text) — print a result block and persist it per-benchmark."""

    def _emit(text: str) -> None:
        print()
        print(text)
        out = results_dir / f"{request.node.name}.txt"
        out.write_text(text + "\n")

    return _emit
