"""Extension — executing a vendor switch (the §II-A mobility promise).

§II-A motivates the whole paper with the vendor lock-in problem: switching
costs proportional to stored data.  This benchmark *performs* the switch
under HyRD: decommission one provider, measure the evacuation traffic and
wall time, and verify full service afterwards — then compares the measured
egress bytes against the analytic model in :mod:`repro.analysis.lockin`.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

KB, MB = 1024, 1024 * 1024


def _populate(hyrd, rng) -> dict[str, bytes]:
    contents = {}
    for i in range(10):
        path = f"/corp/docs/f{i:02d}.txt"
        contents[path] = rng.integers(0, 256, 16 * KB, dtype=np.uint8).tobytes()
        hyrd.put(path, contents[path])
    for i in range(4):
        path = f"/corp/media/v{i:02d}.bin"
        contents[path] = rng.integers(0, 256, 3 * MB, dtype=np.uint8).tobytes()
        hyrd.put(path, contents[path])
    return contents


def test_decommission_provider_end_to_end(benchmark, emit):
    def experiment():
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        hyrd = HyrdScheme(list(providers.values()), clock)
        contents = _populate(hyrd, make_rng(0, "vendor-switch"))

        victim = "aliyun"  # the hardest case: it serves both classes
        files_affected = hyrd.placements_on(victim)
        bytes_before = providers[victim].meter.total_usage().bytes_out
        t0 = clock.now
        reports = hyrd.decommission(victim)
        wall = clock.now - t0
        egress_all = sum(
            p.meter.total_usage().bytes_out for p in providers.values()
        )
        return {
            "providers": providers,
            "hyrd": hyrd,
            "contents": contents,
            "victim": victim,
            "files_affected": len(files_affected),
            "migrations": len(reports),
            "wall": wall,
            "victim_egress": providers[victim].meter.total_usage().bytes_out
            - bytes_before,
            "total_egress": egress_all,
        }

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    hyrd = result["hyrd"]

    emit(
        render_table(
            ["Metric", "Value"],
            [
                ["provider decommissioned", result["victim"]],
                ["files holding data there", result["files_affected"]],
                ["migrations executed", result["migrations"]],
                ["evacuation wall time (s)", result["wall"]],
                ["egress billed during evacuation (B)", result["total_egress"]],
                ["placements left on the provider", len(hyrd.placements_on(result["victim"]))],
            ],
            title="Vendor switch — decommissioning Aliyun under HyRD",
            floatfmt=".2f",
        )
    )

    # The provider is fully evacuated and service is intact.
    assert hyrd.placements_on(result["victim"]) == []
    for path, data in result["contents"].items():
        got, report = hyrd.get(path)
        assert got == data
        assert result["victim"] not in report.providers
    # Mobility: nothing was lost, nothing needs the departed vendor.
    assert result["migrations"] == result["files_affected"]
    assert hyrd.misplaced_paths() == []
