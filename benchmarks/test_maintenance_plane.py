"""Extension — the maintenance plane's acceptance story, end to end.

Three claims, each one a hard gate:

1. **Detection & restoration.**  Against a ground-truth corruption ledger,
   the anti-entropy scrubber finds 100% of injected persistent damage
   (flipped bytes, truncations, lost objects) and the budgeted repair
   scheduler restores full redundancy — a final full scrub pass reports a
   clean namespace and every byte reads back intact.
2. **Zero cost when off.**  A scheme with the plane attached but never
   pumped produces byte-identical foreground op reports to one that never
   attached it — background maintenance is strictly opt-in.
3. **Bounded foreground impact.**  With the plane actively scrubbing and
   repairing under its token-bucket budget, foreground p95 read latency
   degrades by at most 10% versus the same schedule with no maintenance.
"""

from repro.analysis.tables import render_table
from repro.maintenance.drill import run_maintenance_drill

MB = 1024 * 1024


def test_maintenance_drill(benchmark, emit):
    def experiment():
        with_plane = run_maintenance_drill(seed=0, maintenance=True)
        without = run_maintenance_drill(seed=0, maintenance=False)
        return with_plane["summary"], without["summary"]

    on, off = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            ["Metric", "Maintenance on", "Maintenance off"],
            [
                ["Damage sites injected", on["injected"], off["injected"]],
                ["Detected by scrub", on["detected"], "—"],
                ["Detection rate", f"{on['detection_rate']:.0%}", "—"],
                ["Repairs completed", on["repairs_completed"], 0],
                ["Repair traffic (MB)", f"{on['repair_bytes'] / MB:.1f}", "0"],
                ["Mean time to full redundancy (s)", f"{on['mttr_mean_s']:.1f}", "—"],
                ["Live migrations", on["migrations_completed"], 0],
                ["Residual findings", on["residual_findings"], "—"],
                ["Foreground p95 (s)", on["foreground_p95_s"], off["foreground_p95_s"]],
                ["Foreground mean (s)", on["foreground_mean_s"], off["foreground_mean_s"]],
            ],
            title="Maintenance plane drill (seed 0, 4 MB/s repair budget)",
        )
    )

    # Gate 1 — every injected damage site found, full redundancy restored.
    assert on["injected"] > 0
    assert on["detection_rate"] == 1.0
    assert on["detected"] == on["injected"]
    assert on["residual_findings"] == 0
    assert on["read_back_ok"] and off["read_back_ok"]
    assert on["repairs_completed"] > 0
    assert on["mttr_mean_s"] > 0
    # Gate 1b — the live decommission fully evacuated its provider.
    assert on["decommission_evacuated"]
    assert on["migrations_completed"] > 0
    # Gate 3 — the budget keeps background work off the foreground's back:
    # p95 within 10% of the maintenance-free baseline.  (Repairing damaged
    # stripes usually makes reads *faster* — degraded reads disappear.)
    assert on["foreground_p95_s"] <= 1.10 * off["foreground_p95_s"], (
        f"maintenance degraded foreground p95 by more than 10%: "
        f"{on['foreground_p95_s']:.4f}s vs {off['foreground_p95_s']:.4f}s"
    )


def test_maintenance_detached_is_byte_identical(benchmark):
    """Gate 2 — attached-but-idle maintenance is invisible to foreground."""
    import numpy as np

    from repro.cloud.provider import make_table2_cloud_of_clouds
    from repro.core.hyrd import HyRDClient
    from repro.sim.clock import SimClock
    from repro.sim.rng import make_rng

    def one_run(attach: bool):
        clock = SimClock()
        providers = make_table2_cloud_of_clouds(clock)
        scheme = HyRDClient(list(providers.values()), clock)
        if attach:
            scheme.attach_maintenance()
        rng = make_rng(0, "zero-cost")
        for i in range(10):
            size = int(rng.integers(4 * 1024, 2 * MB))
            scheme.put(f"/z/f{i}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
        for i in range(10):
            scheme.get(f"/z/f{i}")
        scheme.update("/z/f0", 0, b"patch")
        scheme.remove("/z/f9")
        return [
            (r.op, r.path, r.elapsed, r.bytes_up, r.bytes_down, r.cloud_ops)
            for r in scheme.collector.reports
        ], clock.now

    def experiment():
        return one_run(attach=False), one_run(attach=True)

    (baseline, t_base), (attached, t_attached) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert baseline == attached
    assert t_base == t_attached
