"""Table I — scheme comparison, with the qualitative cells measured.

Redundancy is by construction; recovery difficulty is the measured
degraded-read fan-out; performance and cost are the measured Fig. 6 / Fig. 4
numbers.  The orderings must match the paper's table: HyRD combines easy
recovery with high performance and low cost.
"""

from repro.analysis.experiments import run_fig4, run_fig6, run_table1
from repro.analysis.tables import render_table
from repro.workloads.postmark import PostMarkConfig

MB = 1024 * 1024


def test_table1_scheme_comparison(benchmark, emit):
    def experiment():
        fig6 = run_fig6(seed=0, config=PostMarkConfig(file_pool=25, transactions=100))
        fig4 = run_fig4(seed=0)
        return run_table1(fig4=fig4, fig6=fig6)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    emit(
        render_table(
            ["Scheme", "Redundancy", "Recovery (measured)", "Latency (s)", "Cost ($)"],
            rows,
            title="Table I — comparison of HyRD and the state-of-the-art (measured)",
            floatfmt=".4f",
        )
    )

    by_name = {r[0]: r for r in rows}
    # Redundancy column is the paper's.
    assert by_name["racs"][1] == "Erasure Codes"
    assert by_name["duracloud"][1] == "Replication"
    assert by_name["hyrd"][1] == "Replication + erasure code"
    # Recovery: RACS hard (k-provider reconstruction), others easy.
    assert "Hard" in by_name["racs"][2]
    assert "Easy" in by_name["duracloud"][2]
    assert "Easy" in by_name["hyrd"][2]
    # Performance: HyRD "High" = lowest measured latency.
    assert by_name["hyrd"][3] == min(r[3] for r in rows)
    # Cost: HyRD "Low" = cheapest of the three; DuraCloud "High" = priciest.
    assert by_name["hyrd"][4] == min(r[4] for r in rows)
    assert by_name["duracloud"][4] == max(r[4] for r in rows)
