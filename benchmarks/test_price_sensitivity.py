"""Extension — price-drift sensitivity (the diversity argument, stressed).

Table II is a dated snapshot ("as of September, 10th 2014"); prices move.
This sweep multiplies Aliyun's storage price — the provider anchoring both
of HyRD's classes — and re-runs the cost simulation for HyRD and RACS.
HyRD's Evaluator reclassifies at every point; RACS stripes obliviously.
The signature of adaptation: HyRD's advantage erodes while the pricier
Aliyun is still (barely) classified cost-oriented, then *recovers* the
moment the Evaluator expels it and the dispatcher re-homes the stripe.
"""

from repro.analysis.tables import render_table
from repro.analysis.whatif import run_price_sensitivity


def test_price_sensitivity_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: run_price_sensitivity(provider="aliyun", seed=0),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"x{p.multiplier:g}",
            p.storage_price,
            p.hyrd_cost,
            p.racs_cost,
            f"{p.hyrd_advantage:+.1%}",
            "yes" if p.provider_in_hyrd_cost_set else "NO (reclassified)",
        ]
        for p in points
    ]
    emit(
        render_table(
            [
                "Aliyun price",
                "$/GB-mo",
                "HyRD cost $",
                "RACS cost $",
                "HyRD vs RACS",
                "Aliyun cost-oriented?",
            ],
            rows,
            title="Price-drift sensitivity — Aliyun storage price sweep (6 months)",
            floatfmt=".4f",
        )
    )

    by_mult = {p.multiplier: p for p in points}
    # At the paper's prices HyRD wins comfortably.
    assert by_mult[1.0].hyrd_advantage > 0.05
    # Costs rise monotonically with the swept price for both schemes.
    hyrd_costs = [p.hyrd_cost for p in points]
    racs_costs = [p.racs_cost for p in points]
    assert hyrd_costs == sorted(hyrd_costs)
    assert racs_costs == sorted(racs_costs)
    # The Evaluator eventually expels the no-longer-cheap provider ...
    assert by_mult[1.0].provider_in_hyrd_cost_set
    assert not by_mult[8.0].provider_in_hyrd_cost_set
    # ... and the reclassification claws the advantage back.
    worst = min(p.hyrd_advantage for p in points)
    assert by_mult[8.0].hyrd_advantage > worst
