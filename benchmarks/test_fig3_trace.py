"""Figure 3 — the Internet Archive trace's monthly statistics.

(a) data written/read per month; (b) read/write request counts.  The paper's
pinned aggregates: read:write = 2.1:1 by bytes, 3.5:1 by requests, with
month-to-month fluctuation over one year.
"""

from repro.analysis.experiments import run_fig3
from repro.analysis.tables import render_table

MB = 1024 * 1024


def test_fig3_ia_trace_statistics(benchmark, emit):
    trace = benchmark.pedantic(lambda: run_fig3(seed=0), rounds=1, iterations=1)

    rows = [
        [
            f"m{s.month:02d}",
            s.bytes_written / MB,
            s.bytes_read / MB,
            s.write_requests,
            s.read_requests,
        ]
        for s in trace.stats
    ]
    rows.append(
        [
            "total",
            sum(s.bytes_written for s in trace.stats) / MB,
            sum(s.bytes_read for s in trace.stats) / MB,
            sum(s.write_requests for s in trace.stats),
            sum(s.read_requests for s in trace.stats),
        ]
    )
    emit(
        render_table(
            ["Month", "Written MB", "Read MB", "Write reqs", "Read reqs"],
            rows,
            title=(
                "Figure 3 — synthetic IA trace (scaled)\n"
                f"read:write bytes    = {trace.total_read_to_write_bytes:.3f} (paper: 2.1)\n"
                f"read:write requests = {trace.total_read_to_write_requests:.3f} (paper: 3.5)"
            ),
            floatfmt=".1f",
        )
    )

    assert abs(trace.total_read_to_write_bytes - 2.1) / 2.1 < 0.06
    assert abs(trace.total_read_to_write_requests - 3.5) / 3.5 < 0.06
    # Fig. 3 shows visible month-to-month variation (seasonality).
    written = [s.bytes_written for s in trace.stats]
    assert max(written) > 1.2 * min(written)
    # Reads dominate volume in every month, as in Fig. 3a.
    assert all(s.bytes_read > s.bytes_written for s in trace.stats)
