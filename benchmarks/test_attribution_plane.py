"""Attribution plane acceptance gates, end to end.

Three claims, each a hard gate:

1. **Zero cost when detached.**  A scheme with the load observatory
   attached produces byte-identical foreground op reports (and the same
   final sim-clock reading) to one without it — observation never moves
   the clock or draws randomness.  Same for tracing itself: the
   :class:`~repro.obs.trace.RecordingTracer` only *reads* ``clock.now``.
2. **Exact coverage at scale.**  Every op of the deterministic fig3-scale
   replay tiles exactly into the phase taxonomy (checked by
   ``tests/test_attribution.py``); here the storm-scale fault run must
   also attribute cleanly while the observatory is live.
3. **Determinism.**  Two identically-seeded traced runs attribute to
   byte-identical JSONL.
"""

import numpy as np

from repro.cloud.provider import make_table2_cloud_of_clouds
from repro.core.config import HyRDConfig
from repro.core.resilience import ResilienceConfig
from repro.obs import (
    COVERAGE_TOLERANCE,
    ProviderLoadObservatory,
    RecordingTracer,
    attribute_trace,
    attributions_to_jsonl,
    run_fault_storm_report,
)
from repro.schemes import HyrdScheme
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

MB = 1024 * 1024


def _one_run(attach_observatory: bool, trace: bool = False):
    clock = SimClock()
    providers = make_table2_cloud_of_clouds(clock)
    cfg = HyRDConfig(resilience=ResilienceConfig(hedge_reads=True))
    tracer = RecordingTracer(clock) if trace else None
    scheme = HyrdScheme(list(providers.values()), clock, config=cfg, tracer=tracer)
    if attach_observatory:
        scheme.attach_observatory(ProviderLoadObservatory())
    rng = make_rng(0, "attribution-zero-cost")
    for i in range(10):
        size = int(rng.integers(4 * 1024, 2 * MB))
        scheme.put(f"/z/f{i}", rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    for i in range(10):
        scheme.get(f"/z/f{i}")
    scheme.update("/z/f0", 0, b"patch")
    scheme.remove("/z/f9")
    reports = [
        (r.op, r.path, r.elapsed, r.bytes_up, r.bytes_down, r.cloud_ops)
        for r in scheme.collector.reports
    ]
    return scheme, reports, clock.now


def test_observatory_detached_is_byte_identical(benchmark):
    """Gate 1 — attaching the observatory is invisible to the simulation."""

    def experiment():
        _, base, t_base = _one_run(attach_observatory=False)
        _, obs, t_obs = _one_run(attach_observatory=True)
        _, traced, t_traced = _one_run(attach_observatory=True, trace=True)
        return (base, t_base), (obs, t_obs), (traced, t_traced)

    (base, t_base), (obs, t_obs), (traced, t_traced) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert base == obs == traced
    assert t_base == t_obs == t_traced


def test_storm_attributes_cleanly_with_live_observatory(benchmark):
    """Gate 2 — the canonical fault storm tiles exactly, observatory live."""

    def experiment():
        observatory = ProviderLoadObservatory()
        _, tracer = run_fault_storm_report(
            seed=0, trace=True, observatory=observatory
        )
        return tracer, observatory

    tracer, observatory = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report = attribute_trace(tracer.records)
    assert len(report.ops) > 50
    for o in report.ops:
        assert abs(o.coverage_error) <= COVERAGE_TOLERANCE * max(1.0, o.duration)
    # The observatory saw the same fleet the attribution did.
    assert set(observatory.providers()) <= set(report.provider_stats)


def test_attribution_is_deterministic(benchmark):
    """Gate 3 — same seed, byte-identical attribution JSONL."""

    def experiment():
        a, _, _ = _one_run(attach_observatory=True, trace=True)
        b, _, _ = _one_run(attach_observatory=True, trace=True)
        return (
            attributions_to_jsonl(attribute_trace(a.tracer.records).ops),
            attributions_to_jsonl(attribute_trace(b.tracer.records).ops),
        )

    text_a, text_b = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert text_a
    assert text_a.encode() == text_b.encode()
