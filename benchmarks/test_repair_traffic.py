"""Extension — permanent-failure repair traffic: NCCloud's FMSR vs RAID5.

The paper cites NCCloud [16] (and the Facebook-cluster studies [26], [27])
for erasure repair traffic being the hidden cost of coded storage.  This
benchmark measures it on our substrate: FMSR functional repair downloads
(n-1)/(k*(n-k)) = 75 % of what decode-based repair moves for n=4, k=2.
"""

import pytest

from repro.analysis.ablations import run_repair_comparison
from repro.analysis.tables import render_table

MB = 1024 * 1024


def test_repair_traffic_fmsr_vs_decode(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_repair_comparison(seed=0, objects=8, size=2 * MB),
        rounds=1,
        iterations=1,
    )

    emit(
        render_table(
            ["Metric", "Bytes"],
            [
                ["objects repaired", result["objects"]],
                ["FMSR functional repair download", result["fmsr_repair_bytes"]],
                ["decode-based repair download (same code)", result["fmsr_conventional_bytes"]],
                ["RACS (RAID5) repair download", result["racs_repair_bytes"]],
            ],
            title=(
                "Repair traffic after one permanent provider failure\n"
                f"FMSR / conventional = {result['fmsr_ratio']:.3f} "
                "(theory: (n-1)/(k*(n-k)) = 0.75)"
            ),
            floatfmt=".0f",
        )
    )

    assert result["fmsr_ratio"] == pytest.approx(0.75, abs=0.02)
    assert result["fmsr_repair_bytes"] < result["racs_repair_bytes"]
